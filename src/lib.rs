//! # f-diam
//!
//! Umbrella crate re-exporting the F-Diam workspace: the graph
//! substrate, BFS kernels, the F-Diam diameter algorithm, and the
//! baseline algorithms it is evaluated against.
//!
//! See the crate-level docs of each member for details:
//! [`graph`], [`bfs`], [`fdiam`], [`baselines`], [`obs`].

pub use fdiam_analytics as analytics;
pub use fdiam_baselines as baselines;
pub use fdiam_bfs as bfs;
pub use fdiam_core as fdiam;
pub use fdiam_graph as graph;
pub use fdiam_obs as obs;
