//! Graph I/O tour: write and read every supported format (SNAP edge
//! list, DIMACS-9 `.gr`, Matrix Market `.mtx`, binary CSR), verifying
//! that the diameter is preserved across round trips.
//!
//! This is how you would feed the *real* paper inputs (downloaded from
//! SNAP / SuiteSparse / DIMACS) into the library.
//!
//! ```text
//! cargo run --release --example graph_io
//! ```

use f_diam::fdiam::diameter;
use f_diam::graph::generators::{grid2d, kronecker_graph500};
use f_diam::graph::io::{binfmt, dimacs, edgelist, mtx};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("fdiam_io_example");
    std::fs::create_dir_all(&dir)?;

    let g = grid2d(50, 80);
    let d = diameter(&g);
    println!(
        "source graph: 50x80 grid, n = {}, diameter = {d}",
        g.num_vertices()
    );

    // SNAP-style edge list.
    let p = dir.join("grid.txt");
    edgelist::write_edge_list_file(&g, &p)?;
    let g2 = edgelist::read_edge_list_file(&p, 0)?;
    assert_eq!(g2, g);
    println!(
        "edge list  roundtrip ok: {} ({} bytes)",
        p.display(),
        std::fs::metadata(&p)?.len()
    );

    // DIMACS-9 (the USA-road-d format).
    let p = dir.join("grid.gr");
    let mut buf = Vec::new();
    dimacs::write_dimacs(&g, &mut buf)?;
    std::fs::write(&p, &buf)?;
    let g2 = dimacs::read_dimacs_file(&p)?;
    assert_eq!(g2, g);
    println!(
        "DIMACS     roundtrip ok: {} ({} bytes)",
        p.display(),
        buf.len()
    );

    // Matrix Market (the SuiteSparse format).
    let p = dir.join("grid.mtx");
    let mut buf = Vec::new();
    mtx::write_mtx(&g, &mut buf)?;
    std::fs::write(&p, &buf)?;
    let g2 = mtx::read_mtx_file(&p)?;
    assert_eq!(g2, g);
    println!(
        "MatrixMkt  roundtrip ok: {} ({} bytes)",
        p.display(),
        buf.len()
    );

    // Binary CSR — the fast path for large generated inputs.
    let big = kronecker_graph500(14, 16, 9);
    let p = dir.join("kron.fdia");
    binfmt::write_binary_file(&big, &p)?;
    let big2 = binfmt::read_binary_file(&p)?;
    assert_eq!(big2, big);
    println!(
        "binary CSR roundtrip ok: {} ({} bytes for n = {})",
        p.display(),
        std::fs::metadata(&p)?.len(),
        big.num_vertices()
    );

    // And the diameter survives every round trip.
    assert_eq!(diameter(&g2).diameter(), Some(128));
    println!("\ndiameter preserved across all formats ✓");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
