//! Quickstart: build a graph, compute its exact diameter, inspect the
//! run statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use f_diam::fdiam::{diameter, diameter_with, FdiamConfig};
use f_diam::graph::generators::{barabasi_albert, grid2d};
use f_diam::graph::EdgeList;

fn main() {
    // 1. A small hand-made graph (the paper's Figure 1: K4 minus one
    //    edge — diameter 2).
    let g =
        EdgeList::from_undirected(4, &[(0, 1), (0, 2), (0, 3), (3, 1), (3, 2)]).to_undirected_csr();
    let r = diameter(&g);
    println!("figure-1 graph: diameter = {r}");
    assert_eq!(r.diameter(), Some(2));

    // 2. A 200×300 grid — diameter (200-1) + (300-1) = 498.
    let g = grid2d(200, 300);
    let r = diameter(&g);
    println!(
        "200x300 grid  : n = {}, m = {}, diameter = {r}",
        g.num_vertices(),
        g.num_undirected_edges()
    );
    assert_eq!(r.diameter(), Some(498));

    // 3. A power-law graph with full statistics: how much work did each
    //    F-Diam stage save?
    let g = barabasi_albert(100_000, 6, 42);
    let out = diameter_with(&g, &FdiamConfig::parallel());
    println!(
        "BA(100k, m=6) : diameter = {}, BFS traversals = {} (vs n = {})",
        out.result,
        out.stats.bfs_traversals(),
        g.num_vertices()
    );
    let [w, e, c, d0] = out.stats.removed.percentages(g.num_vertices());
    println!(
        "               removed by Winnow {w:.2}% | Eliminate {e:.2}% | Chain {c:.2}% | degree-0 {d0:.2}%"
    );
    println!(
        "               total runtime {:.3}s",
        out.stats.timings.total.as_secs_f64()
    );
}
