//! Road-network scenario (the paper's DIMACS `USA-road-d.*` inputs):
//! high diameter, tiny degrees — the regime where Chain Processing and
//! Eliminate matter most and where direction-optimized BFS never leaves
//! top-down mode (§6.2).
//!
//! Compares F-Diam against iFUB and Graph-Diameter on the same input
//! and shows the per-stage breakdown.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use f_diam::baselines::{graph_diameter::graph_diameter, ifub::ifub};
use f_diam::fdiam::{diameter_with, FdiamConfig};
use f_diam::graph::generators::road_network;
use std::time::Instant;

fn main() {
    // polyline-chain road model (see fdiam-graph docs): intersections of
    // degree 3-4 joined by degree-2 road segments, like OSM/DIMACS data
    let g = road_network(60_000, 0.7, 3, 3);
    println!(
        "road network: {} junctions, {} road segments, avg degree {:.2}, max degree {}",
        g.num_vertices(),
        g.num_undirected_edges(),
        g.avg_degree(),
        g.max_degree()
    );

    // F-Diam with full statistics.
    let t = Instant::now();
    let out = diameter_with(&g, &FdiamConfig::parallel());
    let fdiam_time = t.elapsed();
    println!(
        "\nF-Diam        : diameter = {} in {:.3}s ({} BFS traversals)",
        out.result,
        fdiam_time.as_secs_f64(),
        out.stats.bfs_traversals()
    );
    let [w, e, c, d0] = out.stats.removed.percentages(g.num_vertices());
    println!(
        "                Winnow {w:.1}% | Eliminate {e:.1}% | Chain {c:.1}% | degree-0 {d0:.1}% | chains processed: {}",
        out.stats.chains_processed
    );

    // Baselines on the same graph.
    let t = Instant::now();
    let r_ifub = ifub(&g);
    println!(
        "iFUB          : diameter = {} in {:.3}s ({} BFS traversals)",
        r_ifub.largest_cc_diameter,
        t.elapsed().as_secs_f64(),
        r_ifub.bfs_calls
    );
    let t = Instant::now();
    let r_gd = graph_diameter(&g);
    println!(
        "Graph-Diameter: diameter = {} in {:.3}s ({} BFS traversals)",
        r_gd.largest_cc_diameter,
        t.elapsed().as_secs_f64(),
        r_gd.bfs_calls
    );

    assert_eq!(out.result.largest_cc_diameter, r_ifub.largest_cc_diameter);
    assert_eq!(out.result.largest_cc_diameter, r_gd.largest_cc_diameter);
    println!("\nall three algorithms agree ✓");
}
