//! Social-network analysis scenario (the paper's §1 motivation: "in
//! social networks, [the diameter] shows how closely connected the
//! individuals are").
//!
//! Builds a LiveJournal-like power-law community graph, computes its
//! diameter with F-Diam and the exact eccentricity distribution with
//! the naive oracle on a subsample, and reports the small-world
//! statistics an analyst would ask for.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use f_diam::baselines::naive::all_eccentricities;
use f_diam::bfs::{bfs_eccentricity_serial, VisitMarks};
use f_diam::fdiam::{diameter_with, FdiamConfig};
use f_diam::graph::components::ConnectedComponents;
use f_diam::graph::generators::{attach_whiskers, barabasi_albert};

fn main() {
    // ~50k members: a preferential-attachment core (heavy-tailed
    // follower counts) plus peripheral whiskers — the thin chains of
    // barely-connected members that give real social graphs their
    // diameter (and that F-Diam's Chain Processing targets).
    let core = barabasi_albert(50_000, 8, 7);
    let g = attach_whiskers(&core, 250, 8, 7);
    println!(
        "community graph: {} members, {} friendships, max degree {}",
        g.num_vertices(),
        g.num_undirected_edges(),
        g.max_degree()
    );

    let cc = ConnectedComponents::compute(&g);
    println!("connected: {}", cc.is_connected());

    // Exact diameter via F-Diam.
    let out = diameter_with(&g, &FdiamConfig::parallel());
    println!(
        "diameter = {} (found with {} BFS traversals instead of {})",
        out.result,
        out.stats.bfs_traversals(),
        g.num_vertices()
    );

    // Periphery: who realizes the diameter? Vertices whose eccentricity
    // equals the diameter are the farthest-apart members.
    let mut marks = VisitMarks::new(g.num_vertices());
    let sample: Vec<u32> = (0..g.num_vertices() as u32).step_by(500).collect();
    let peripheral = sample
        .iter()
        .filter(|&&v| {
            bfs_eccentricity_serial(&g, v, &mut marks).eccentricity
                == out.result.largest_cc_diameter
        })
        .count();
    println!(
        "of a {}-member sample, {} sit on the periphery (ecc = diameter)",
        sample.len(),
        peripheral
    );

    // Full eccentricity histogram on a smaller community — by Theorem 3
    // every eccentricity lies in [diam/2, diam].
    let small = barabasi_albert(2_000, 8, 7);
    let eccs = all_eccentricities(&small);
    let diam = *eccs.iter().max().unwrap();
    let radius = *eccs.iter().min().unwrap();
    println!("\n2k-member community: radius = {radius}, diameter = {diam}");
    assert!(radius * 2 >= diam, "Theorem 3: radius >= diameter/2");
    for d in radius..=diam {
        let count = eccs.iter().filter(|&&e| e == d).count();
        println!(
            "  ecc {d}: {count:6} members {}",
            "#".repeat(count * 60 / eccs.len())
        );
    }
}
