//! Full eccentricity analytics beyond the diameter: radius, center,
//! periphery, and the whole eccentricity distribution — plus
//! ExactSumSweep, which certifies radius and diameter together.
//!
//! This is the §1 use case "vertices with eccentricities close to the
//! diameter represent the graph's periphery" turned into a runnable
//! analysis.
//!
//! ```text
//! cargo run --release --example network_analytics
//! ```

use f_diam::analytics::bounding_ecc::bounding_eccentricities;
use f_diam::analytics::sum_sweep::exact_sum_sweep;
use f_diam::fdiam::diameter;
use f_diam::graph::generators::road_network;

fn main() {
    // A mid-size road network: the high-diameter regime where the
    // eccentricity distribution is wide and the center is meaningful.
    let g = road_network(20_000, 0.6, 3, 11);
    println!(
        "road network: {} junctions, {} segments",
        g.num_vertices(),
        g.num_undirected_edges()
    );

    // ExactSumSweep: radius + diameter in one certified run.
    let ss = exact_sum_sweep(&g).expect("non-empty");
    println!(
        "\nExactSumSweep: diameter = {} (vertex {}), radius = {} (vertex {}), {} BFS",
        ss.diameter, ss.diametral_vertex, ss.radius, ss.central_vertex, ss.bfs_calls
    );

    // Cross-check the diameter against F-Diam.
    let d = diameter(&g);
    assert_eq!(d.diameter(), Some(ss.diameter));
    println!("F-Diam agrees: diameter = {d}");

    // Full eccentricity distribution (Takes–Kosters bounding).
    let r = bounding_eccentricities(&g);
    let eccs = &r.eccentricities;
    println!(
        "\nall {} eccentricities computed with {} BFS ({:.1}% of n)",
        eccs.len(),
        r.bfs_calls,
        100.0 * r.bfs_calls as f64 / g.num_vertices() as f64
    );

    let center = eccs.iter().filter(|&&e| e == ss.radius).count();
    let periphery = eccs.iter().filter(|&&e| e == ss.diameter).count();
    println!("|center| = {center}, |periphery| = {periphery}");

    // Coarse histogram in ten buckets between radius and diameter.
    println!("\neccentricity distribution:");
    let span = (ss.diameter - ss.radius).max(1);
    let buckets = 10u32.min(span);
    let mut hist = vec![0usize; buckets as usize];
    for &e in eccs {
        let b = ((e - ss.radius) * (buckets - 1) / span).min(buckets - 1);
        hist[b as usize] += 1;
    }
    for (i, count) in hist.iter().enumerate() {
        let lo = ss.radius + span * i as u32 / buckets;
        let hi = ss.radius + span * (i as u32 + 1) / buckets;
        println!(
            "  [{lo:4}..{hi:4}) {count:7} {}",
            "#".repeat(count * 50 / eccs.len().max(1))
        );
    }

    // Theorem 3 sanity: radius ≥ diameter / 2.
    assert!(2 * ss.radius >= ss.diameter);
    println!(
        "\nTheorem 3 holds: radius {} ≥ diameter {} / 2 ✓",
        ss.radius, ss.diameter
    );
}
