//! Cross-code property: every diameter code that publishes
//! [`BoundsSnapshot`]s — F-Diam (serial and parallel), bounding
//! eccentricities, and ExactSumSweep — must emit a *certified, monotone*
//! convergence curve on arbitrary graphs:
//!
//! * `lb` never decreases, `ub` never increases, `lb ≤ ub` throughout;
//! * every snapshot brackets the true diameter (`lb ≤ diam ≤ ub`);
//! * the final snapshot collapses to a zero gap with no vertices
//!   remaining (termination certifies exactness, connected or not).

use fdiam_analytics::{bounding_eccentricities_observed, exact_sum_sweep_observed};
use fdiam_baselines::naive;
use fdiam_core::{run_with_observer, FdiamConfig};
use fdiam_obs::{BoundsSnapshot, Event, Observer, RunId};
use fdiam_testkit::strategies::arb_graph;
use proptest::prelude::*;
use std::sync::Mutex;

/// Collects every published snapshot in arrival order.
#[derive(Default)]
struct Tap(Mutex<Vec<BoundsSnapshot>>);

impl Observer for Tap {
    fn event(&self, e: &Event<'_>) {
        if let Event::BoundsUpdate { snapshot } = e {
            self.0.lock().unwrap().push(*snapshot);
        }
    }
    fn wants_bfs_detail(&self) -> bool {
        false
    }
}

// Plain panics: proptest treats them as failures and shrinks normally.
fn check_curve(snaps: &[BoundsSnapshot], diameter: u32, code: &str) {
    assert!(!snaps.is_empty(), "{code}: no snapshots published");
    let mut prev: Option<BoundsSnapshot> = None;
    for s in snaps {
        assert!(s.lb <= s.ub, "{code}: lb > ub in {s:?}");
        assert!(s.lb <= diameter, "{code}: lb exceeds diameter in {s:?}");
        assert!(s.ub >= diameter, "{code}: ub below diameter in {s:?}");
        if let Some(p) = prev {
            assert!(s.lb >= p.lb, "{code}: lb regressed {p:?} -> {s:?}");
            assert!(s.ub <= p.ub, "{code}: ub loosened {p:?} -> {s:?}");
            assert!(s.bfs_count >= p.bfs_count, "{code}: bfs_count regressed");
        }
        prev = Some(*s);
    }
    let last = snaps.last().unwrap();
    assert_eq!(last.gap(), 0, "{code}: final gap nonzero: {last:?}");
    assert_eq!(last.lb, diameter, "{code}: final bound wrong");
    assert_eq!(last.vertices_remaining, 0, "{code}: vertices left");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_codes_publish_certified_monotone_curves(g in arb_graph()) {
        let diameter = naive::all_eccentricities(&g)
            .iter()
            .copied()
            .max()
            .unwrap_or(0);

        let tap = Tap::default();
        run_with_observer(&g, &FdiamConfig::serial(), &tap);
        check_curve(&tap.0.lock().unwrap(), diameter, "fdiam-serial");

        let tap = Tap::default();
        run_with_observer(&g, &FdiamConfig::parallel(), &tap);
        check_curve(&tap.0.lock().unwrap(), diameter, "fdiam-parallel");

        let tap = Tap::default();
        bounding_eccentricities_observed(&g, RunId::fresh(), &tap, None)
            .expect("no cancel token");
        check_curve(&tap.0.lock().unwrap(), diameter, "bounding-ecc");

        let tap = Tap::default();
        if exact_sum_sweep_observed(&g, RunId::fresh(), &tap).is_some() {
            check_curve(&tap.0.lock().unwrap(), diameter, "sum-sweep");
        }
    }
}
