//! Certificate checks for the analytics codes, property-tested over
//! the testkit's structured graph strategies: it is not enough that
//! ExactSumSweep's numbers match the oracle — the *vertices* it names
//! must actually realize them, and bounding-eccentricities must
//! reproduce the entire oracle eccentricity vector.

use fdiam_analytics::bounding_ecc::bounding_eccentricities;
use fdiam_analytics::sum_sweep::exact_sum_sweep;
use fdiam_graph::generators::{cycle, grid2d, lollipop, star};
use fdiam_graph::transform::with_isolated_vertices;
use fdiam_testkit::strategies::{arb_degree_sequence_graph, arb_edge_soup};
use fdiam_testkit::Oracle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sum_sweep_certificates_hold_on_soups(g in arb_edge_soup()) {
        let oracle = Oracle::compute(&g);
        let r = exact_sum_sweep(&g).expect("soups have n >= 1");
        prop_assert_eq!(r.diameter, oracle.largest_cc_diameter);
        prop_assert_eq!(r.radius, oracle.radius);
        prop_assert_eq!(r.connected, oracle.connected);
        // The named vertices must realize the named values.
        prop_assert_eq!(
            oracle.eccentricities[r.diametral_vertex as usize],
            r.diameter
        );
        prop_assert_eq!(
            oracle.eccentricities[r.central_vertex as usize],
            r.radius
        );
    }

    #[test]
    fn bounding_ecc_matches_oracle_vector(g in arb_degree_sequence_graph()) {
        let oracle = Oracle::compute(&g);
        let r = bounding_eccentricities(&g);
        prop_assert_eq!(r.eccentricities, oracle.eccentricities);
    }
}

#[test]
fn certificates_on_adversarial_shapes() {
    // Deterministic versions of the property above on the shapes where
    // bound-based codes historically go wrong (lollipops: periphery
    // far from the high-degree core).
    for (name, g) in [
        ("lollipop", lollipop(8, 9)),
        ("star", star(12)),
        ("cycle", cycle(15)),
        ("grid+iso", with_isolated_vertices(&grid2d(4, 6), 2)),
    ] {
        let oracle = Oracle::compute(&g);
        let r = exact_sum_sweep(&g).expect("non-empty");
        assert_eq!(r.diameter, oracle.largest_cc_diameter, "{name}");
        assert_eq!(r.radius, oracle.radius, "{name}");
        assert_eq!(
            oracle.eccentricities[r.diametral_vertex as usize], r.diameter,
            "{name}: diametral certificate"
        );
        assert_eq!(
            oracle.eccentricities[r.central_vertex as usize], r.radius,
            "{name}: central certificate"
        );
        let b = bounding_eccentricities(&g);
        assert_eq!(b.eccentricities, oracle.eccentricities, "{name}");
    }
}

#[test]
fn radius_zero_iff_isolated_vertices_present() {
    let g = with_isolated_vertices(&cycle(5), 1);
    let r = exact_sum_sweep(&g).expect("non-empty");
    assert_eq!(r.radius, 0);
    assert_eq!(Oracle::compute(&g).radius, 0);
}
