//! Property tests for the analytics crate: both algorithms must agree
//! with the naive oracle on arbitrary graphs, and the classical
//! radius/diameter relations must hold.

use fdiam_analytics::bounding_ecc::bounding_eccentricities;
use fdiam_analytics::sum_sweep::exact_sum_sweep;
use fdiam_baselines::naive;
use fdiam_graph::EdgeList;
use proptest::prelude::*;

fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = fdiam_graph::CsrGraph> {
    (1..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| EdgeList::from_undirected(n, &edges).to_undirected_csr())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bounding_ecc_matches_oracle(g in arb_graph(50, 90)) {
        let oracle = naive::all_eccentricities(&g);
        let r = bounding_eccentricities(&g);
        prop_assert_eq!(r.eccentricities, oracle);
    }

    #[test]
    fn sum_sweep_matches_oracle(g in arb_graph(50, 90)) {
        let oracle = naive::all_eccentricities(&g);
        let r = exact_sum_sweep(&g).unwrap();
        prop_assert_eq!(r.diameter, oracle.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(r.radius, oracle.iter().copied().min().unwrap_or(0));
        prop_assert_eq!(oracle[r.diametral_vertex as usize], r.diameter);
        prop_assert_eq!(oracle[r.central_vertex as usize], r.radius);
    }

    /// SumSweep, bounding eccentricities, and F-Diam must agree on the
    /// diameter of any graph.
    #[test]
    fn three_way_diameter_agreement(g in arb_graph(50, 90)) {
        let ss = exact_sum_sweep(&g).unwrap();
        let be = bounding_eccentricities(&g);
        let fd = fdiam_core::diameter(&g);
        let be_diam = be.eccentricities.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(ss.diameter, be_diam);
        prop_assert_eq!(ss.diameter, fd.largest_cc_diameter);
    }

    /// SumSweep never does more BFS than the naive algorithm would.
    #[test]
    fn sum_sweep_bfs_bounded(g in arb_graph(50, 90)) {
        let r = exact_sum_sweep(&g).unwrap();
        prop_assert!(r.bfs_calls <= g.num_vertices());
    }
}
