//! Directed metamorphic suite run from the analytics crate — the
//! crate that owns Tarjan, the condensation, and the directed
//! ExactSumSweep — so a regression in any of them fails here, next to
//! the code, not only in the testkit's own test run.
//!
//! The transforms and their analytic predictions live in
//! `fdiam_testkit::metamorphic` (arc reversal swaps the eccentricity
//! families, a universal source pins the radius to 1, the symmetric
//! closure reduces to the undirected oracle, condensing a condensation
//! is the identity).

use fdiam_graph::transform::orient;
use fdiam_graph::{generators, DiGraph, EdgeList};
use fdiam_testkit::assert_metamorphic_directed;

fn dicycle(n: usize) -> DiGraph {
    let mut el = EdgeList::new(n);
    for v in 0..n as u32 {
        el.push(v, (v + 1) % n as u32);
    }
    DiGraph::from_edge_list(&el)
}

#[test]
fn directed_metamorphic_on_classic_shapes() {
    for (tag, g) in [
        ("dicycle12", dicycle(12)),
        (
            "sym-grid",
            DiGraph::from_undirected(&generators::grid2d(5, 6)),
        ),
        (
            "sym-lollipop",
            DiGraph::from_undirected(&generators::lollipop(5, 6)),
        ),
        ("oriented-grid", orient(&generators::grid2d(6, 6), 33, 11)),
        (
            "oriented-ba",
            orient(&generators::barabasi_albert(150, 3, 5), 50, 5),
        ),
        ("pure-orientation", orient(&generators::grid2d(5, 5), 0, 3)),
    ] {
        assert_metamorphic_directed(tag, &g, 0xF_D1A);
    }
}

#[test]
fn directed_metamorphic_on_degenerate_and_dag_bases() {
    assert_metamorphic_directed("empty", &DiGraph::empty(0), 3);
    assert_metamorphic_directed("singleton", &DiGraph::empty(1), 3);
    assert_metamorphic_directed("isolated5", &DiGraph::empty(5), 3);

    // A pure DAG: infinite diameter, radius from the unique source.
    let mut el = EdgeList::new(6);
    for &(u, v) in &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)] {
        el.push(u, v);
    }
    assert_metamorphic_directed("dag", &DiGraph::from_edge_list(&el), 3);

    // Two sources: both aggregates infinite on the base.
    let mut el = EdgeList::new(3);
    el.push(0, 2);
    el.push(1, 2);
    assert_metamorphic_directed("two-sources", &DiGraph::from_edge_list(&el), 3);
}

#[test]
fn directed_metamorphic_under_seed_variation() {
    for seed in 0..4u64 {
        let g = orient(&generators::erdos_renyi_gnm(120, 240, seed), 40, seed);
        assert_metamorphic_directed(&format!("gnm#{seed}"), &g, seed);
    }
}
