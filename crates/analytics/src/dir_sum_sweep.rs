//! Directed ExactSumSweep — the directed half of Borassi et al.'s
//! algorithm (TCS 2015), on top of [`crate::scc`].
//!
//! Directed eccentricities come in two flavours: the **forward**
//! eccentricity `eccF(v) = max_w d(v, w)` and the **backward**
//! `eccB(v) = max_w d(w, v)`. The diameter is the maximum of either
//! family and is finite iff the digraph is strongly connected; the
//! radius is `min eccF` over the vertices that reach everything — the
//! members of the condensation's unique source SCC
//! ([`crate::scc::radial_vertices`]).
//!
//! Every sweep from a source `s` runs **two** BFS traversals — forward
//! (distances `d(s, ·)`, over the forward CSR) and backward
//! (`d(·, s)`, over the transpose) — and yields `eccF(s)` and
//! `eccB(s)` exactly. With `dF[w] = d(s, w)`, `dB[w] = d(w, s)` the
//! triangle inequality gives, for every vertex `w`:
//!
//! ```text
//! eccF(w) ≥ max(dB[w], eccF(s) − dF[w])    eccF(w) ≤ dB[w] + eccF(s)
//! eccB(w) ≥ max(dF[w], eccB(s) − dB[w])    eccB(w) ≤ dF[w] + eccB(s)
//! ```
//!
//! The exact phase alternates diameter turns (sweep the loosest upper
//! bound, preferring the forward family and falling back to the
//! backward one) and radius turns (sweep the smallest forward lower
//! bound over the radial set). The diameter is certified as soon as
//! **either** family closes — `max eccF = max eccB = diameter`, so
//! whichever side's open upper bounds first sink to the best resolved
//! eccentricity finishes the job.
//!
//! Non-strongly-connected inputs short-circuit: Tarjan certifies the
//! diameter as infinite before any BFS runs, and only the radius
//! machinery proceeds, restricted to the radial set (where both `dF`
//! and `dB` stay finite — the radial set is one SCC whose members
//! reach every vertex). When the radial set is empty (two or more
//! source SCCs) the radius is infinite too and no sweep runs at all.

use crate::observe::{trivial_ub, SweepObs};
use crate::scc::{radial_vertices, StronglyConnectedComponents};
use fdiam_bfs::distances::UNREACHABLE;
use fdiam_bfs::{
    bfs_distances_directed, bp64_distances_cancellable, bp64_distances_directed, BfsScratch,
    SweepDirection, MAX_LANES,
};
use fdiam_core::Cancelled;
use fdiam_graph::{DiGraph, VertexId};
use fdiam_obs::{CancelToken, Observer, RunId};

/// Result of a directed ExactSumSweep run. `None` fields encode ∞:
/// the diameter is `None` unless the digraph is strongly connected,
/// the radius is `None` when no vertex reaches every other.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirSumSweepResult {
    /// `max d(u, v)` over all ordered pairs; `None` = infinite (the
    /// digraph is not strongly connected).
    pub diameter: Option<u32>,
    /// `min eccF` over the radial set; `None` = infinite (no vertex
    /// reaches every other).
    pub radius: Option<u32>,
    /// An endpoint of a diametral path: the source if its forward
    /// eccentricity equals the diameter, otherwise the target (its
    /// backward eccentricity does).
    pub diametral_vertex: Option<VertexId>,
    /// A vertex realizing the radius (always in the radial set).
    pub central_vertex: Option<VertexId>,
    /// BFS traversals performed (each sweep counts 2: one per side).
    pub bfs_calls: usize,
    /// Whether the digraph is strongly connected.
    pub strongly_connected: bool,
    /// Number of strongly connected components.
    pub num_sccs: usize,
}

/// Heuristic SumSweep iterations before the exact phase — same budget
/// as the undirected driver.
const SUM_SWEEP_ITERATIONS: usize = 4;

/// Computes the exact directed diameter and radius.
///
/// Returns `None` for the empty graph.
pub fn directed_sum_sweep(g: &DiGraph) -> Option<DirSumSweepResult> {
    driver(g, None, None, None).expect("no cancel token")
}

/// [`directed_sum_sweep`] polling `cancel` before every sweep. Each
/// sweep is two serial traversals, so a request stops within one
/// O(n + m) unit of work of its deadline.
pub fn directed_sum_sweep_cancellable(
    g: &DiGraph,
    cancel: &CancelToken,
) -> Result<Option<DirSumSweepResult>, Cancelled> {
    driver(g, None, Some(cancel), None)
}

/// [`directed_sum_sweep`] publishing the run lifecycle to `obs`.
///
/// Strongly connected runs converge like the undirected driver: `lb` =
/// best resolved eccentricity on either side, `ub` = the certification
/// criterion `min(max open forward upper, max open backward upper)`
/// capped at the trivial `n − 1`. A non-strongly-connected run
/// publishes an immediate `scc`-phase snapshot with the sentinel
/// bounds `(0, 0)` — the diameter is certified infinite the moment
/// Tarjan finishes — and keeps that sentinel through the radius-only
/// sweeps, so registries still see monotone convergence and a final
/// zero-gap snapshot. A cancelled run emits no `run_end`, mirroring
/// every other driver; the empty graph emits a balanced
/// `run_start`/`run_end` pair around the `None` return.
pub fn directed_sum_sweep_observed(
    g: &DiGraph,
    run: RunId,
    obs: &dyn Observer,
    cancel: Option<&CancelToken>,
) -> Result<Option<DirSumSweepResult>, Cancelled> {
    let watch = SweepObs::start_counts(run, obs, "sum-sweep-dir", g.num_vertices(), g.num_arcs());
    let r = driver(g, None, cancel, Some(&watch))?;
    end_observed(&watch, &r);
    Ok(r)
}

/// [`directed_sum_sweep`] with the bit-parallel batched engine: up to
/// `batch` (≤ 64) exact-phase candidates share one
/// [`bp64_distances_directed`] traversal **per side** per round (the
/// heuristic phase stays serial — it is sequentially adaptive). Lanes
/// are applied sequentially in selection order, so `batch == 1`
/// reproduces the serial driver sweep for sweep.
pub fn directed_sum_sweep_batched(g: &DiGraph, batch: usize) -> Option<DirSumSweepResult> {
    driver(g, Some(batch), None, None).expect("no cancel token")
}

/// [`directed_sum_sweep_batched`] with cancellation (polled at level
/// barriers inside the shared traversals) and run-lifecycle
/// observation — one bounds snapshot per lane, preserving the
/// per-sweep publication contract.
pub fn directed_sum_sweep_batched_observed(
    g: &DiGraph,
    batch: usize,
    run: RunId,
    obs: &dyn Observer,
    cancel: Option<&CancelToken>,
) -> Result<Option<DirSumSweepResult>, Cancelled> {
    let watch = SweepObs::start_counts(
        run,
        obs,
        "sum-sweep-dir-bp64",
        g.num_vertices(),
        g.num_arcs(),
    );
    let r = driver(g, Some(batch), cancel, Some(&watch))?;
    end_observed(&watch, &r);
    Ok(r)
}

fn end_observed(watch: &SweepObs<'_>, r: &Option<DirSumSweepResult>) {
    match r {
        Some(r) => watch.end(
            "done",
            r.bfs_calls as u64,
            r.diameter.unwrap_or(0),
            r.strongly_connected,
        ),
        None => watch.end("done", 0, 0, false),
    }
}

/// Per-vertex bound state for both eccentricity families. On
/// non-strongly-connected inputs only the forward family over the
/// radial set is tracked (`in_radial` masks the rest; the backward
/// family is unused).
struct DirBounds {
    low_f: Vec<u32>,
    upp_f: Vec<u32>,
    ecc_f: Vec<Option<u32>>,
    low_b: Vec<u32>,
    upp_b: Vec<u32>,
    ecc_b: Vec<Option<u32>>,
    /// `ΣdF + ΣdB` over finished sweeps, while forward-unresolved —
    /// the SumSweep periphery-diversity score.
    sum_dist: Vec<u64>,
    in_radial: Vec<bool>,
    sc: bool,
}

impl DirBounds {
    fn new(n: usize, sc: bool, in_radial: Vec<bool>) -> Self {
        DirBounds {
            low_f: vec![0; n],
            upp_f: vec![u32::MAX; n],
            ecc_f: vec![None; n],
            low_b: vec![0; n],
            upp_b: vec![u32::MAX; n],
            ecc_b: vec![None; n],
            sum_dist: vec![0; n],
            in_radial,
            sc,
        }
    }

    /// Folds one finished sweep (both sides) into the bound state.
    fn apply_sweep(
        &mut self,
        s: usize,
        ecc_fwd: u32,
        ecc_bwd: u32,
        dist_f: &[u32],
        dist_b: &[u32],
    ) {
        self.ecc_f[s] = Some(ecc_fwd);
        self.low_f[s] = ecc_fwd;
        self.upp_f[s] = ecc_fwd;
        if self.sc {
            self.ecc_b[s] = Some(ecc_bwd);
            self.low_b[s] = ecc_bwd;
            self.upp_b[s] = ecc_bwd;
        }
        for w in 0..dist_f.len() {
            if w == s || (!self.sc && !self.in_radial[w]) {
                continue;
            }
            // Strong connectivity (or shared membership in the radial
            // SCC plus the source reaching everything) keeps both
            // distances finite exactly where they are used.
            let df = dist_f[w];
            let db = dist_b[w];
            debug_assert!(df != UNREACHABLE && db != UNREACHABLE);
            if self.ecc_f[w].is_none() {
                self.sum_dist[w] += df as u64 + db as u64;
                self.low_f[w] = self.low_f[w].max(db).max(ecc_fwd.saturating_sub(df));
                self.upp_f[w] = self.upp_f[w].min(db + ecc_fwd);
                if self.low_f[w] == self.upp_f[w] {
                    self.ecc_f[w] = Some(self.low_f[w]);
                }
            }
            if self.sc && self.ecc_b[w].is_none() {
                self.low_b[w] = self.low_b[w].max(df).max(ecc_bwd.saturating_sub(db));
                self.upp_b[w] = self.upp_b[w].min(df + ecc_bwd);
                if self.low_b[w] == self.upp_b[w] {
                    self.ecc_b[w] = Some(self.low_b[w]);
                }
            }
        }
    }

    /// Best proven diameter lower bound: the largest resolved
    /// eccentricity of either family.
    fn diameter_lb(&self) -> u32 {
        let f = self.ecc_f.iter().flatten().copied().max().unwrap_or(0);
        let b = self.ecc_b.iter().flatten().copied().max().unwrap_or(0);
        f.max(b)
    }

    /// Best proven radius upper bound: the smallest resolved forward
    /// eccentricity over the radial set.
    fn radius_ub(&self) -> u32 {
        (0..self.ecc_f.len())
            .filter(|&v| self.in_radial[v])
            .filter_map(|v| self.ecc_f[v])
            .min()
            .unwrap_or(u32::MAX)
    }

    /// Is the forward (resp. backward) family still diameter-open —
    /// some unresolved vertex whose upper bound exceeds `d_lb`?
    fn family_open(&self, d_lb: u32, family: SweepDirection) -> bool {
        let (ecc, upp) = match family {
            SweepDirection::Forward => (&self.ecc_f, &self.upp_f),
            SweepDirection::Backward => (&self.ecc_b, &self.upp_b),
        };
        ecc.iter().zip(upp).any(|(e, &u)| e.is_none() && u > d_lb)
    }

    /// The diameter stays open only while **both** families do.
    fn diameter_open(&self, d_lb: u32) -> bool {
        self.sc
            && self.family_open(d_lb, SweepDirection::Forward)
            && self.family_open(d_lb, SweepDirection::Backward)
    }

    /// Diameter-turn candidate: loosest forward upper bound, falling
    /// back to the backward family when every open forward vertex is
    /// already drawn this round.
    fn pick_diameter(&self, d_lb: u32, drawn: &[bool]) -> Option<usize> {
        let n = self.ecc_f.len();
        (0..n)
            .filter(|&v| !drawn[v] && self.ecc_f[v].is_none() && self.upp_f[v] > d_lb)
            .max_by_key(|&v| self.upp_f[v])
            .or_else(|| {
                (0..n)
                    .filter(|&v| !drawn[v] && self.ecc_b[v].is_none() && self.upp_b[v] > d_lb)
                    .max_by_key(|&v| self.upp_b[v])
            })
    }

    /// Radius-turn candidate: smallest forward lower bound over the
    /// still-open radial vertices.
    fn pick_radius(&self, r_ub: u32, drawn: &[bool]) -> Option<usize> {
        (0..self.ecc_f.len())
            .filter(|&v| {
                !drawn[v] && self.in_radial[v] && self.ecc_f[v].is_none() && self.low_f[v] < r_ub
            })
            .min_by_key(|&v| self.low_f[v])
    }
}

/// Publish the current diameter bounds after one sweep. Strongly
/// connected: `lb` = best resolved eccentricity, `ub` = the
/// either-family certification criterion. Otherwise the `(0, 0)` ∞
/// sentinel with the count of still-open radial vertices.
fn publish_state(watch: &SweepObs<'_>, phase: &'static str, bfs_calls: usize, st: &DirBounds) {
    let n = st.ecc_f.len();
    if !st.sc {
        let remaining = (0..n)
            .filter(|&v| st.in_radial[v] && st.ecc_f[v].is_none())
            .count();
        watch.publish(phase, bfs_calls as u64, 0, 0, remaining);
        return;
    }
    let d_lb = st.diameter_lb();
    let (mut ub_f, mut ub_b) = (d_lb, d_lb);
    let mut remaining = 0usize;
    for v in 0..n {
        let open_f = st.ecc_f[v].is_none();
        let open_b = st.ecc_b[v].is_none();
        if open_f {
            ub_f = ub_f.max(st.upp_f[v]);
        }
        if open_b {
            ub_b = ub_b.max(st.upp_b[v]);
        }
        if open_f || open_b {
            remaining += 1;
        }
    }
    watch.publish(
        phase,
        bfs_calls as u64,
        d_lb,
        ub_f.min(ub_b).min(trivial_ub(n)),
        remaining,
    );
}

/// Shared driver. `batch = None` runs the serial kernels one sweep per
/// round; `batch = Some(k)` draws up to `k` exact-phase candidates per
/// round and answers them with two shared bit-parallel traversals.
fn driver(
    g: &DiGraph,
    batch: Option<usize>,
    cancel: Option<&CancelToken>,
    watch: Option<&SweepObs<'_>>,
) -> Result<Option<DirSumSweepResult>, Cancelled> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(None);
    }
    let scc = StronglyConnectedComponents::compute(g);
    let num_sccs = scc.num_components();
    let sc = scc.is_strongly_connected();
    let radial = radial_vertices(g, &scc);
    let mut in_radial = vec![false; n];
    for &v in &radial {
        in_radial[v as usize] = true;
    }
    let mut st = DirBounds::new(n, sc, in_radial);
    if !sc {
        // Tarjan already certified the diameter infinite.
        if let Some(w) = watch {
            publish_state(w, "scc", 0, &st);
        }
    }

    let mut bfs_calls = 0usize;
    let mut dist_f = Vec::new();
    let mut dist_b = Vec::new();

    // One full sweep with the serial kernels: forward + backward BFS.
    let serial_sweep = |s: VertexId,
                        st: &mut DirBounds,
                        bfs_calls: &mut usize,
                        dist_f: &mut Vec<u32>,
                        dist_b: &mut Vec<u32>|
     -> Result<(), Cancelled> {
        if cancel.is_some_and(|t| t.is_cancelled()) {
            // Cancellation handoff: the bounds proven by completed
            // sweeps stay certified, so they go out one last time under
            // the "cancelled" phase before the error surfaces.
            if *bfs_calls > 0 {
                if let Some(w) = watch {
                    publish_state(w, "cancelled", *bfs_calls, st);
                }
            }
            return Err(Cancelled);
        }
        let ef = bfs_distances_directed(g, s, SweepDirection::Forward, dist_f);
        let eb = bfs_distances_directed(g, s, SweepDirection::Backward, dist_b);
        *bfs_calls += 2;
        st.apply_sweep(s as usize, ef, eb, dist_f, dist_b);
        Ok(())
    };

    // --- Heuristic phase: SumSweep, always serial (each sweep's
    // distance sums pick the next source). Starts from the
    // largest-out-degree radial vertex; skipped entirely when the
    // radial set is empty (nothing left to certify).
    let start = radial
        .iter()
        .copied()
        .max_by_key(|&v| (g.out_degree(v), std::cmp::Reverse(v)));
    if let Some(s0) = start {
        serial_sweep(s0, &mut st, &mut bfs_calls, &mut dist_f, &mut dist_b)?;
        if let Some(w) = watch {
            publish_state(w, "sum_sweep", bfs_calls, &st);
        }
        for _ in 1..SUM_SWEEP_ITERATIONS {
            let Some(v) = (0..n)
                .filter(|&v| st.in_radial[v] && st.ecc_f[v].is_none())
                .max_by_key(|&v| st.sum_dist[v])
            else {
                break;
            };
            serial_sweep(
                v as VertexId,
                &mut st,
                &mut bfs_calls,
                &mut dist_f,
                &mut dist_b,
            )?;
            if let Some(w) = watch {
                publish_state(w, "sum_sweep", bfs_calls, &st);
            }
        }
    }

    // --- Exact phase: alternate diameter and radius turns until both
    // certificates close.
    let lanes = batch.map(|b| b.clamp(1, MAX_LANES)).unwrap_or(1);
    let mut scratch = batch.map(|_| BfsScratch::new(n));
    let mut candidates: Vec<VertexId> = Vec::with_capacity(lanes);
    let mut drawn = vec![false; n];
    let mut turn_diameter = true;
    loop {
        let d_lb = st.diameter_lb();
        let r_ub = st.radius_ub();
        let diameter_open = st.diameter_open(d_lb);
        for &v in &candidates {
            drawn[v as usize] = false;
        }
        candidates.clear();
        while candidates.len() < lanes {
            let dia = if diameter_open {
                st.pick_diameter(d_lb, &drawn)
            } else {
                None
            };
            let rad = st.pick_radius(r_ub, &drawn);
            let v = match (turn_diameter, dia, rad) {
                (true, Some(v), _) | (false, Some(v), None) => v,
                (false, _, Some(v)) | (true, None, Some(v)) => v,
                (_, None, None) => break,
            };
            turn_diameter = !turn_diameter;
            drawn[v] = true;
            candidates.push(v as VertexId);
        }
        if candidates.is_empty() {
            break;
        }
        match scratch.as_mut() {
            None => {
                serial_sweep(
                    candidates[0],
                    &mut st,
                    &mut bfs_calls,
                    &mut dist_f,
                    &mut dist_b,
                )?;
                if let Some(w) = watch {
                    publish_state(w, "exact", bfs_calls, &st);
                }
            }
            Some(scratch) => {
                // Either bit-parallel traversal can observe the token
                // mid-level; both bail through the same handoff as the
                // serial sweep — re-publish the proven state, then err.
                let pair = match cancel {
                    Some(token) if token.is_cancelled() => None,
                    Some(token) => bp64_distances_cancellable(
                        g.forward(),
                        &candidates,
                        scratch,
                        &mut dist_f,
                        token,
                    )
                    .and_then(|f| {
                        bp64_distances_cancellable(
                            g.transpose(),
                            &candidates,
                            scratch,
                            &mut dist_b,
                            token,
                        )
                        .map(|b| (f, b))
                    }),
                    None => Some((
                        bp64_distances_directed(
                            g,
                            &candidates,
                            SweepDirection::Forward,
                            scratch,
                            &mut dist_f,
                        ),
                        bp64_distances_directed(
                            g,
                            &candidates,
                            SweepDirection::Backward,
                            scratch,
                            &mut dist_b,
                        ),
                    )),
                };
                let Some((sum_f, sum_b)) = pair else {
                    if bfs_calls > 0 {
                        if let Some(w) = watch {
                            publish_state(w, "cancelled", bfs_calls, &st);
                        }
                    }
                    return Err(Cancelled);
                };
                for (k, &v) in candidates.iter().enumerate() {
                    bfs_calls += 2;
                    st.apply_sweep(
                        v as usize,
                        sum_f.ecc[k],
                        sum_b.ecc[k],
                        &dist_f[k * n..(k + 1) * n],
                        &dist_b[k * n..(k + 1) * n],
                    );
                    if let Some(w) = watch {
                        publish_state(w, "exact", bfs_calls, &st);
                    }
                }
            }
        }
    }

    // Termination certified: on a strongly connected input one family
    // has every open upper bound ≤ the best resolved eccentricity, and
    // every open radial vertex has `low_f ≥ r_ub` — so the resolved
    // extremes are exact.
    let mut diameter = 0u32;
    let mut diametral: Option<VertexId> = None;
    let mut radius = u32::MAX;
    let mut central: Option<VertexId> = None;
    for v in 0..n {
        if let Some(e) = st.ecc_f[v] {
            if diametral.is_none() || e > diameter {
                diameter = e;
                diametral = Some(v as VertexId);
            }
            if st.in_radial[v] && (central.is_none() || e < radius) {
                radius = e;
                central = Some(v as VertexId);
            }
        }
        if let Some(e) = st.ecc_b[v] {
            if diametral.is_none() || e > diameter {
                diameter = e;
                diametral = Some(v as VertexId);
            }
        }
    }

    Ok(Some(DirSumSweepResult {
        diameter: sc.then_some(diameter),
        radius: central.map(|_| radius),
        diametral_vertex: if sc { diametral } else { None },
        central_vertex: central,
        bfs_calls,
        strongly_connected: sc,
        num_sccs,
    }))
}

/// Both eccentricity families of every vertex, by 64-lane bit-parallel
/// BFS over each side of the digraph (`2 · ⌈n / 64⌉` traversals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectedEccentricities {
    /// `forward[v] = eccF(v)`; `None` = infinite (`v` does not reach
    /// every vertex).
    pub forward: Vec<Option<u32>>,
    /// `backward[v] = eccB(v)`; `None` = infinite (not every vertex
    /// reaches `v`).
    pub backward: Vec<Option<u32>>,
    /// Logical BFS traversals performed (one per vertex per side).
    pub bfs_calls: usize,
}

/// Computes every forward and backward eccentricity exactly.
pub fn directed_eccentricities(g: &DiGraph) -> DirectedEccentricities {
    let n = g.num_vertices();
    let mut r = DirectedEccentricities {
        forward: vec![None; n],
        backward: vec![None; n],
        bfs_calls: 0,
    };
    if n == 0 {
        return r;
    }
    let mut scratch = BfsScratch::new(n);
    let mut dist = Vec::new();
    for direction in [SweepDirection::Forward, SweepDirection::Backward] {
        let out = match direction {
            SweepDirection::Forward => &mut r.forward,
            SweepDirection::Backward => &mut r.backward,
        };
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + MAX_LANES).min(n);
            let sources: Vec<VertexId> = (lo as u32..hi as u32).collect();
            let summary = bp64_distances_directed(g, &sources, direction, &mut scratch, &mut dist);
            for (k, &v) in sources.iter().enumerate() {
                r.bfs_calls += 1;
                if summary.visited[k] as usize == n {
                    out[v as usize] = Some(summary.ecc[k]);
                }
            }
            lo = hi;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators;
    use fdiam_graph::transform::orient;
    use fdiam_graph::EdgeList;
    use fdiam_obs::{BoundsSnapshot, Event, Observer, RunId};
    use std::sync::Mutex;

    fn digraph(n: usize, arcs: &[(u32, u32)]) -> DiGraph {
        let mut el = EdgeList::new(n);
        for &(u, v) in arcs {
            el.push(u, v);
        }
        DiGraph::from_edge_list(&el)
    }

    /// A strongly connected random digraph: a Hamiltonian cycle plus a
    /// sparsely bidirectional orientation of a random graph.
    fn sc_fixture(n: usize, seed: u64) -> DiGraph {
        let base = orient(&generators::erdos_renyi_gnm(n, 2 * n, seed), 20, seed);
        let mut el = EdgeList::new(n);
        for u in base.vertices() {
            for &v in base.out_neighbors(u) {
                el.push(u, v);
            }
        }
        for v in 0..n as u32 {
            el.push(v, (v + 1) % n as u32);
        }
        DiGraph::from_edge_list(&el)
    }

    /// Quadratic oracle: per-vertex forward/backward eccentricities
    /// with `None` = infinite.
    fn naive(g: &DiGraph) -> (Vec<Option<u32>>, Vec<Option<u32>>) {
        let n = g.num_vertices();
        let mut dist = Vec::new();
        let per_side = |dir: SweepDirection, dist: &mut Vec<u32>| {
            (0..n as u32)
                .map(|s| {
                    let e = bfs_distances_directed(g, s, dir, dist);
                    dist.iter().all(|&d| d != UNREACHABLE).then_some(e)
                })
                .collect::<Vec<_>>()
        };
        let fwd = per_side(SweepDirection::Forward, &mut dist);
        let bwd = per_side(SweepDirection::Backward, &mut dist);
        (fwd, bwd)
    }

    fn check(g: &DiGraph) {
        let (fwd, bwd) = naive(g);
        let n = g.num_vertices();
        let expect_d = if n > 0 && fwd.iter().all(|e| e.is_some()) {
            fwd.iter().flatten().copied().max()
        } else {
            None
        };
        let expect_r = fwd.iter().flatten().copied().min();
        let serial = directed_sum_sweep(g).unwrap();
        assert_eq!(serial.diameter, expect_d, "diameter on n={n}");
        assert_eq!(serial.radius, expect_r, "radius on n={n}");
        assert_eq!(serial.strongly_connected, expect_d.is_some());
        if let (Some(d), Some(v)) = (serial.diameter, serial.diametral_vertex) {
            let vi = v as usize;
            assert!(
                fwd[vi] == Some(d) || bwd[vi] == Some(d),
                "diametral certificate"
            );
        }
        if let (Some(r), Some(v)) = (serial.radius, serial.central_vertex) {
            assert_eq!(fwd[v as usize], Some(r), "central certificate");
        }
        assert_eq!(serial.radius.is_some(), serial.central_vertex.is_some());
        for batch in [1, 4, 64] {
            let b = directed_sum_sweep_batched(g, batch).unwrap();
            assert_eq!(b.diameter, expect_d, "batch={batch}");
            assert_eq!(b.radius, expect_r, "batch={batch}");
        }
    }

    #[test]
    fn small_shapes() {
        // Directed cycle: diameter = radius = n − 1.
        let c5 = digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let r = directed_sum_sweep(&c5).unwrap();
        assert_eq!(r.diameter, Some(4));
        assert_eq!(r.radius, Some(4));
        check(&c5);

        // Two 2-cycles bridged 1 → 2: not SC, radius from vertex 1.
        let bridged = digraph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let r = directed_sum_sweep(&bridged).unwrap();
        assert_eq!(r.diameter, None);
        assert_eq!(r.radius, Some(2));
        assert_eq!(r.central_vertex, Some(1));
        assert_eq!(r.num_sccs, 2);
        check(&bridged);

        // DAG path: only the head reaches everything.
        let p = digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = directed_sum_sweep(&p).unwrap();
        assert_eq!((r.diameter, r.radius), (None, Some(4)));
        assert_eq!(r.central_vertex, Some(0));
        check(&p);

        // Two sources: both certificates infinite, zero sweeps.
        let two = digraph(3, &[(0, 2), (1, 2)]);
        let r = directed_sum_sweep(&two).unwrap();
        assert_eq!((r.diameter, r.radius), (None, None));
        assert_eq!(r.bfs_calls, 0);
        check(&two);

        // Singleton.
        let r = directed_sum_sweep(&DiGraph::empty(1)).unwrap();
        assert_eq!((r.diameter, r.radius), (Some(0), Some(0)));
        check(&DiGraph::empty(1));
    }

    #[test]
    fn empty_graph_is_none() {
        assert!(directed_sum_sweep(&DiGraph::empty(0)).is_none());
        assert!(directed_sum_sweep_batched(&DiGraph::empty(0), 8).is_none());
    }

    #[test]
    fn strongly_connected_random_digraphs() {
        for seed in 0..4 {
            let g = sc_fixture(60, seed);
            assert!(directed_sum_sweep(&g).unwrap().strongly_connected);
            check(&g);
        }
    }

    #[test]
    fn non_strongly_connected_random_digraphs() {
        for seed in 0..4 {
            check(&orient(
                &generators::erdos_renyi_gnm(70, 140, seed),
                30,
                seed,
            ));
            check(&orient(&generators::barabasi_albert(60, 2, seed), 50, seed));
        }
    }

    #[test]
    fn bidirectional_orientation_matches_the_undirected_driver() {
        for seed in 0..3 {
            let und = generators::barabasi_albert(80, 3, seed);
            let dir = directed_sum_sweep(&orient(&und, 100, seed)).unwrap();
            let u = crate::sum_sweep::exact_sum_sweep(&und).unwrap();
            assert_eq!(dir.diameter, Some(u.diameter));
            assert_eq!(dir.radius, Some(u.radius));
        }
    }

    #[test]
    fn batch_of_one_matches_the_serial_driver_exactly() {
        for seed in 0..3 {
            let g = sc_fixture(80, seed);
            assert_eq!(
                directed_sum_sweep_batched(&g, 1).unwrap(),
                directed_sum_sweep(&g).unwrap()
            );
            let h = orient(&generators::erdos_renyi_gnm(80, 160, seed), 25, seed);
            assert_eq!(
                directed_sum_sweep_batched(&h, 1).unwrap(),
                directed_sum_sweep(&h).unwrap()
            );
        }
    }

    #[test]
    fn certifies_without_resolving_everything() {
        let g = sc_fixture(600, 1);
        let r = directed_sum_sweep(&g).unwrap();
        assert!(
            r.bfs_calls < g.num_vertices(),
            "{} BFS on n = {}",
            r.bfs_calls,
            g.num_vertices()
        );
    }

    #[derive(Default)]
    struct Tap {
        names: Mutex<Vec<&'static str>>,
        snaps: Mutex<Vec<BoundsSnapshot>>,
    }
    impl Observer for Tap {
        fn event(&self, e: &Event<'_>) {
            self.names.lock().unwrap().push(e.name());
            if let Event::BoundsUpdate { snapshot } = e {
                self.snaps.lock().unwrap().push(*snapshot);
            }
        }
        fn wants_bfs_detail(&self) -> bool {
            false
        }
    }

    #[test]
    fn observed_variant_matches_and_converges() {
        for g in [
            sc_fixture(70, 2),
            orient(&generators::erdos_renyi_gnm(60, 120, 5), 30, 5),
            digraph(3, &[(0, 2), (1, 2)]),
        ] {
            let tap = Tap::default();
            let plain = directed_sum_sweep(&g).unwrap();
            let obs = directed_sum_sweep_observed(&g, RunId::fresh(), &tap, None)
                .unwrap()
                .unwrap();
            assert_eq!(obs, plain);
            let names = tap.names.lock().unwrap();
            assert_eq!(names.first(), Some(&"run_start"));
            assert_eq!(names.last(), Some(&"run_end"));
            let snaps = tap.snaps.lock().unwrap();
            for pair in snaps.windows(2) {
                assert!(pair[1].lb >= pair[0].lb, "{pair:?}");
                assert!(pair[1].ub <= pair[0].ub, "{pair:?}");
                assert!(pair[1].bfs_count >= pair[0].bfs_count, "{pair:?}");
            }
            let last = snaps.last().unwrap();
            let sentinel = plain.diameter.unwrap_or(0);
            assert_eq!((last.lb, last.ub), (sentinel, sentinel));
            assert_eq!(last.vertices_remaining, 0);
        }
    }

    #[test]
    fn observed_batched_converges_monotonically() {
        let g = sc_fixture(80, 6);
        let tap = Tap::default();
        let r = directed_sum_sweep_batched_observed(&g, 8, RunId::fresh(), &tap, None)
            .unwrap()
            .unwrap();
        assert_eq!(r, directed_sum_sweep_batched(&g, 8).unwrap());
        let names = tap.names.lock().unwrap();
        assert_eq!(names.first(), Some(&"run_start"));
        assert_eq!(names.last(), Some(&"run_end"));
        let snaps = tap.snaps.lock().unwrap();
        // one snapshot per sweep (2 BFS each) plus the final zero-gap
        // snapshot from run_end
        assert_eq!(snaps.len(), r.bfs_calls / 2 + 1);
        for pair in snaps.windows(2) {
            assert!(pair[1].lb >= pair[0].lb, "{pair:?}");
            assert!(pair[1].ub <= pair[0].ub, "{pair:?}");
        }
    }

    #[test]
    fn observed_empty_graph_balances_lifecycle() {
        let tap = Tap::default();
        assert!(
            directed_sum_sweep_observed(&DiGraph::empty(0), RunId::fresh(), &tap, None)
                .unwrap()
                .is_none()
        );
        assert_eq!(
            *tap.names.lock().unwrap(),
            vec!["run_start", "bounds_update", "run_end"]
        );
    }

    #[test]
    fn non_sc_observed_publishes_the_infinite_sentinel() {
        let g = digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let tap = Tap::default();
        directed_sum_sweep_observed(&g, RunId::fresh(), &tap, None).unwrap();
        let snaps = tap.snaps.lock().unwrap();
        assert!(!snaps.is_empty());
        assert!(snaps.iter().all(|s| s.lb == 0 && s.ub == 0));
        assert_eq!(snaps.first().unwrap().phase, "scc");
    }

    #[test]
    fn cancellable_with_live_token_matches_uncancelled() {
        let g = sc_fixture(60, 7);
        let token = CancelToken::new();
        let a = directed_sum_sweep(&g).unwrap();
        let b = directed_sum_sweep_cancellable(&g, &token)
            .expect("live token")
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn expired_token_stops_before_the_first_sweep() {
        let g = sc_fixture(50, 8);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            directed_sum_sweep_cancellable(&g, &token).err(),
            Some(Cancelled)
        );
        let tap = Tap::default();
        assert_eq!(
            directed_sum_sweep_batched_observed(&g, 8, RunId::fresh(), &tap, Some(&token)).err(),
            Some(Cancelled)
        );
        // cancelled runs leave no run_end
        assert!(!tap.names.lock().unwrap().contains(&"run_end"));
    }

    #[test]
    fn mid_run_cancel_hands_off_a_final_cancelled_snapshot() {
        use fdiam_obs::{BoundsSnapshot, Event, Observer};
        use std::sync::Mutex;

        struct CancelAfter {
            token: CancelToken,
            snaps: Mutex<Vec<BoundsSnapshot>>,
            saw_run_end: Mutex<bool>,
        }
        impl Observer for CancelAfter {
            fn event(&self, e: &Event<'_>) {
                if let Event::BoundsUpdate { snapshot } = e {
                    let mut snaps = self.snaps.lock().unwrap();
                    snaps.push(*snapshot);
                    if snaps.len() == 3 {
                        self.token.cancel();
                    }
                }
                if e.name() == "run_end" {
                    *self.saw_run_end.lock().unwrap() = true;
                }
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        let g = sc_fixture(60, 7);
        let d = directed_sum_sweep(&g).unwrap().diameter.unwrap();
        let obs = CancelAfter {
            token: CancelToken::new(),
            snaps: Mutex::new(Vec::new()),
            saw_run_end: Mutex::new(false),
        };
        let token = obs.token.clone();
        let r = directed_sum_sweep_observed(&g, RunId::fresh(), &obs, Some(&token));
        assert_eq!(r.err(), Some(Cancelled));
        assert!(!*obs.saw_run_end.lock().unwrap());

        let snaps = obs.snaps.lock().unwrap();
        let last = snaps.last().unwrap();
        assert_eq!(last.phase, "cancelled");
        assert!(last.lb <= d && d <= last.ub, "bracket lost: {last:?}");
        assert!(last.lb > 0);
        let prev = snaps[snaps.len() - 2];
        assert_eq!((last.lb, last.ub), (prev.lb, prev.ub));
    }

    #[test]
    fn directed_eccentricities_match_the_oracle() {
        for g in [
            sc_fixture(70, 9),
            orient(&generators::erdos_renyi_gnm(90, 180, 10), 30, 10),
            digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
            DiGraph::empty(3),
            DiGraph::empty(0),
        ] {
            let (fwd, bwd) = naive(&g);
            let r = directed_eccentricities(&g);
            assert_eq!(r.forward, fwd);
            assert_eq!(r.backward, bwd);
            assert_eq!(r.bfs_calls, 2 * g.num_vertices());
        }
    }
}
