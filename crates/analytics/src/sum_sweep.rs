//! ExactSumSweep — Borassi, Crescenzi, Habib, Kosters, Marino & Takes,
//! *"Fast diameter and radius BFS-based computation in (weakly
//! connected) real-world graphs"*, TCS 2015 — specialized to undirected
//! graphs.
//!
//! The tool the F-Diam lineage is usually benchmarked against
//! (alongside iFUB): it certifies the **diameter and the radius
//! simultaneously**. The heuristic phase performs a *SumSweep*: BFS
//! from the vertex with the largest sum of distances to already-swept
//! sources (reaching diverse periphery quickly). The exact phase then
//! maintains per-vertex eccentricity bounds (identical update rules to
//! bounding eccentricities) and alternates between certifying the
//! diameter (process the largest upper bound) and the radius (process
//! the smallest lower bound), stopping each side as soon as no
//! candidate can improve it — usually long before all eccentricities
//! are known, which is what makes it faster than full bounding when
//! only radius/diameter are wanted.

use crate::observe::{trivial_ub, SweepObs};
use fdiam_bfs::distances::{bfs_distances_serial, UNREACHABLE};
use fdiam_bfs::{bp64_distances, BfsScratch, MAX_LANES};
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::{Observer, RunId};

/// Result of an ExactSumSweep run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumSweepResult {
    /// Largest eccentricity over all components (the paper-wide
    /// "CC diameter" convention).
    pub diameter: u32,
    /// Smallest eccentricity (0 when isolated vertices exist).
    pub radius: u32,
    /// A vertex realizing the diameter.
    pub diametral_vertex: VertexId,
    /// A vertex realizing the radius.
    pub central_vertex: VertexId,
    /// BFS traversals performed.
    pub bfs_calls: usize,
    /// Whether the graph is connected.
    pub connected: bool,
}

/// Number of heuristic SumSweep iterations before the exact phase
/// (the published evaluation uses a handful; 4 works well).
const SUM_SWEEP_ITERATIONS: usize = 4;

/// Computes the exact diameter and radius.
///
/// Returns `None` for the empty graph.
pub fn exact_sum_sweep(g: &CsrGraph) -> Option<SumSweepResult> {
    inner(g, None)
}

/// [`exact_sum_sweep`] publishing the run lifecycle to `obs`:
/// `run_start`, one certified diameter-bounds snapshot per sweep
/// (`lb` = largest resolved eccentricity, `ub` = the certification
/// criterion `max(lb, max unresolved upper bound)` capped at the
/// trivial `n − 1`), and `run_end`. The empty graph still emits a
/// balanced `run_start`/`run_end` pair (diameter 0) around the `None`
/// return, so registries watching the stream never leak a run.
pub fn exact_sum_sweep_observed(
    g: &CsrGraph,
    run: RunId,
    obs: &dyn Observer,
) -> Option<SumSweepResult> {
    let watch = SweepObs::start(run, obs, "sum-sweep", g);
    let r = inner(g, Some(&watch));
    match &r {
        Some(r) => watch.end("done", r.bfs_calls as u64, r.diameter, r.connected),
        None => watch.end("done", 0, 0, true),
    }
    r
}

/// [`exact_sum_sweep`] with the bit-parallel batched engine for the
/// exact phase: up to `batch` (≤ 64) certification targets share one
/// [`bp64_distances`] traversal per round. **Opt-in** — the serial
/// entry points keep their published sweep-count behaviour.
///
/// The heuristic SumSweep phase stays serial (it is sequentially
/// adaptive: each sweep's distance sums pick the next source, so there
/// is nothing to batch). The exact phase draws its round of candidates
/// with the same alternating diameter/radius strategy and applies the
/// lanes sequentially in selection order; late lanes may target
/// vertices an earlier lane already resolved, trading a few extra
/// logical sweeps for shared edge scans.
pub fn exact_sum_sweep_batched(g: &CsrGraph, batch: usize) -> Option<SumSweepResult> {
    inner_batched(g, batch, None)
}

/// [`exact_sum_sweep_batched`] publishing the run lifecycle — one
/// bounds snapshot per lane, preserving the per-sweep publication
/// contract and its monotone convergence.
pub fn exact_sum_sweep_batched_observed(
    g: &CsrGraph,
    batch: usize,
    run: RunId,
    obs: &dyn Observer,
) -> Option<SumSweepResult> {
    let watch = SweepObs::start(run, obs, "sum-sweep-bp64", g);
    let r = inner_batched(g, batch, Some(&watch));
    match &r {
        Some(r) => watch.end("done", r.bfs_calls as u64, r.diameter, r.connected),
        None => watch.end("done", 0, 0, true),
    }
    r
}

/// Publish the current diameter bounds after one sweep.
fn publish_state(
    watch: &SweepObs<'_>,
    phase: &'static str,
    bfs_calls: usize,
    n: usize,
    ecc: &[Option<u32>],
    upper: &[u32],
) {
    let lb = ecc.iter().flatten().copied().max().unwrap_or(0);
    let mut ub = lb;
    let mut remaining = 0usize;
    for (v, e) in ecc.iter().enumerate() {
        if e.is_none() {
            remaining += 1;
            ub = ub.max(upper[v]);
        }
    }
    watch.publish(
        phase,
        bfs_calls as u64,
        lb,
        ub.min(trivial_ub(n)),
        remaining,
    );
}

fn inner(g: &CsrGraph, watch: Option<&SweepObs<'_>>) -> Option<SumSweepResult> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let mut lower = vec![0u32; n];
    let mut upper = vec![u32::MAX; n];
    let mut ecc: Vec<Option<u32>> = vec![None; n];
    let mut sum_dist = vec![0u64; n];
    let mut bfs_calls = 0usize;
    let mut dist = Vec::new();
    let mut connected = n == 1;

    // Isolated vertices are resolved immediately.
    for v in 0..n {
        if g.degree(v as VertexId) == 0 {
            ecc[v] = Some(0);
            upper[v] = 0;
        }
    }

    let process = |v: usize,
                   lower: &mut [u32],
                   upper: &mut [u32],
                   ecc: &mut [Option<u32>],
                   sum_dist: &mut [u64],
                   bfs_calls: &mut usize,
                   dist: &mut Vec<u32>|
     -> u32 {
        let e = bfs_distances_serial(g, v as VertexId, dist);
        *bfs_calls += 1;
        ecc[v] = Some(e);
        lower[v] = e;
        upper[v] = e;
        for (w, &d) in dist.iter().enumerate() {
            if d == UNREACHABLE || ecc[w].is_some() {
                continue;
            }
            sum_dist[w] += d as u64;
            lower[w] = lower[w].max(e.saturating_sub(d)).max(d);
            upper[w] = upper[w].min(e + d);
            if lower[w] == upper[w] {
                ecc[w] = Some(lower[w]);
            }
        }
        e
    };

    // --- Heuristic phase: SumSweep ---
    // Start from the max-degree vertex, then repeatedly sweep from the
    // unswept vertex with the largest distance sum (a periphery-diverse
    // sample).
    let start = g.max_degree_vertex().expect("n > 0") as usize;
    if ecc[start].is_none() {
        process(
            start,
            &mut lower,
            &mut upper,
            &mut ecc,
            &mut sum_dist,
            &mut bfs_calls,
            &mut dist,
        );
        connected = dist.iter().filter(|&&d| d != UNREACHABLE).count() == n;
        if let Some(w) = watch {
            publish_state(w, "sum_sweep", bfs_calls, n, &ecc, &upper);
        }
    }
    for _ in 1..SUM_SWEEP_ITERATIONS {
        let Some(v) = (0..n)
            .filter(|&v| ecc[v].is_none())
            .max_by_key(|&v| sum_dist[v])
        else {
            break;
        };
        process(
            v,
            &mut lower,
            &mut upper,
            &mut ecc,
            &mut sum_dist,
            &mut bfs_calls,
            &mut dist,
        );
        if let Some(w) = watch {
            publish_state(w, "sum_sweep", bfs_calls, n, &ecc, &upper);
        }
    }

    // --- Exact phase ---
    // Alternate: certify the diameter via the loosest upper bound,
    // certify the radius via the loosest (smallest) lower bound.
    let mut turn_diameter = true;
    loop {
        let d_lb = ecc.iter().flatten().copied().max().unwrap_or(0);
        let r_ub = ecc.iter().flatten().copied().min().unwrap_or(u32::MAX);
        let diameter_open = (0..n).any(|v| ecc[v].is_none() && upper[v] > d_lb);
        let radius_open = (0..n).any(|v| ecc[v].is_none() && lower[v] < r_ub);
        if !diameter_open && !radius_open {
            break;
        }
        let v = if (turn_diameter && diameter_open) || !radius_open {
            (0..n)
                .filter(|&v| ecc[v].is_none() && upper[v] > d_lb)
                .max_by_key(|&v| upper[v])
                .expect("diameter_open")
        } else {
            (0..n)
                .filter(|&v| ecc[v].is_none() && lower[v] < r_ub)
                .min_by_key(|&v| lower[v])
                .expect("radius_open")
        };
        turn_diameter = !turn_diameter;
        process(
            v,
            &mut lower,
            &mut upper,
            &mut ecc,
            &mut sum_dist,
            &mut bfs_calls,
            &mut dist,
        );
        if let Some(w) = watch {
            publish_state(w, "exact", bfs_calls, n, &ecc, &upper);
        }
    }

    // Termination certified: every unresolved vertex has
    // `upper ≤ max resolved ecc` and `lower ≥ min resolved ecc`, so the
    // extremes over the resolved vertices are exact.
    let mut diameter = 0u32;
    let mut radius = u32::MAX;
    let mut diametral_vertex = 0 as VertexId;
    let mut central_vertex = 0 as VertexId;
    for (v, slot) in ecc.iter().enumerate() {
        if let Some(e) = *slot {
            if e > diameter {
                diameter = e;
                diametral_vertex = v as VertexId;
            }
            if e < radius {
                radius = e;
                central_vertex = v as VertexId;
            }
        }
    }
    if radius == u32::MAX {
        radius = 0; // unreachable: at least one vertex is always resolved
    }

    Some(SumSweepResult {
        diameter,
        radius,
        diametral_vertex,
        central_vertex,
        bfs_calls,
        connected,
    })
}

fn inner_batched(
    g: &CsrGraph,
    batch: usize,
    watch: Option<&SweepObs<'_>>,
) -> Option<SumSweepResult> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let batch = batch.clamp(1, MAX_LANES);
    let mut lower = vec![0u32; n];
    let mut upper = vec![u32::MAX; n];
    let mut ecc: Vec<Option<u32>> = vec![None; n];
    let mut sum_dist = vec![0u64; n];
    let mut bfs_calls = 0usize;
    let mut dist = Vec::new();
    let mut connected = n == 1;

    for v in 0..n {
        if g.degree(v as VertexId) == 0 {
            ecc[v] = Some(0);
            upper[v] = 0;
        }
    }

    // Folds one exact sweep into the bound state — the identical
    // update rule to the serial driver's `process`, minus the BFS
    // itself (the batched exact phase gets distance rows from the
    // shared traversal).
    let apply = |v: usize,
                 e: u32,
                 dist: &[u32],
                 lower: &mut [u32],
                 upper: &mut [u32],
                 ecc: &mut [Option<u32>],
                 sum_dist: &mut [u64]| {
        ecc[v] = Some(e);
        lower[v] = e;
        upper[v] = e;
        for (w, &d) in dist.iter().enumerate() {
            if d == UNREACHABLE || ecc[w].is_some() {
                continue;
            }
            sum_dist[w] += d as u64;
            lower[w] = lower[w].max(e.saturating_sub(d)).max(d);
            upper[w] = upper[w].min(e + d);
            if lower[w] == upper[w] {
                ecc[w] = Some(lower[w]);
            }
        }
    };

    // --- Heuristic phase: serial SumSweep (sequentially adaptive) ---
    let start = g.max_degree_vertex().expect("n > 0") as usize;
    if ecc[start].is_none() {
        let e = bfs_distances_serial(g, start as VertexId, &mut dist);
        bfs_calls += 1;
        apply(
            start,
            e,
            &dist,
            &mut lower,
            &mut upper,
            &mut ecc,
            &mut sum_dist,
        );
        connected = dist.iter().filter(|&&d| d != UNREACHABLE).count() == n;
        if let Some(w) = watch {
            publish_state(w, "sum_sweep", bfs_calls, n, &ecc, &upper);
        }
    }
    for _ in 1..SUM_SWEEP_ITERATIONS {
        let Some(v) = (0..n)
            .filter(|&v| ecc[v].is_none())
            .max_by_key(|&v| sum_dist[v])
        else {
            break;
        };
        let e = bfs_distances_serial(g, v as VertexId, &mut dist);
        bfs_calls += 1;
        apply(v, e, &dist, &mut lower, &mut upper, &mut ecc, &mut sum_dist);
        if let Some(w) = watch {
            publish_state(w, "sum_sweep", bfs_calls, n, &ecc, &upper);
        }
    }

    // --- Exact phase, batched ---
    let mut scratch = BfsScratch::new(n);
    let mut candidates: Vec<VertexId> = Vec::with_capacity(batch);
    let mut turn_diameter = true;
    loop {
        let d_lb = ecc.iter().flatten().copied().max().unwrap_or(0);
        let r_ub = ecc.iter().flatten().copied().min().unwrap_or(u32::MAX);
        candidates.clear();
        while candidates.len() < batch {
            let free = |v: usize| ecc[v].is_none() && !candidates.contains(&(v as VertexId));
            let dia = (0..n)
                .filter(|&v| free(v) && upper[v] > d_lb)
                .max_by_key(|&v| upper[v]);
            let rad = (0..n)
                .filter(|&v| free(v) && lower[v] < r_ub)
                .min_by_key(|&v| lower[v]);
            let v = match (turn_diameter, dia, rad) {
                (true, Some(v), _) | (false, Some(v), None) => v,
                (false, _, Some(v)) | (true, None, Some(v)) => v,
                (_, None, None) => break,
            };
            turn_diameter = !turn_diameter;
            candidates.push(v as VertexId);
        }
        if candidates.is_empty() {
            break;
        }
        let summary = bp64_distances(g, &candidates, &mut scratch, &mut dist);
        for (k, &v) in candidates.iter().enumerate() {
            bfs_calls += 1;
            apply(
                v as usize,
                summary.ecc[k],
                &dist[k * n..(k + 1) * n],
                &mut lower,
                &mut upper,
                &mut ecc,
                &mut sum_dist,
            );
            if let Some(w) = watch {
                publish_state(w, "exact", bfs_calls, n, &ecc, &upper);
            }
        }
    }

    let mut diameter = 0u32;
    let mut radius = u32::MAX;
    let mut diametral_vertex = 0 as VertexId;
    let mut central_vertex = 0 as VertexId;
    for (v, slot) in ecc.iter().enumerate() {
        if let Some(e) = *slot {
            if e > diameter {
                diameter = e;
                diametral_vertex = v as VertexId;
            }
            if e < radius {
                radius = e;
                central_vertex = v as VertexId;
            }
        }
    }
    if radius == u32::MAX {
        radius = 0;
    }

    Some(SumSweepResult {
        diameter,
        radius,
        diametral_vertex,
        central_vertex,
        bfs_calls,
        connected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_baselines::naive;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
    use fdiam_graph::CsrGraph;

    fn check(g: &CsrGraph) {
        let oracle = naive::all_eccentricities(g);
        let expect_d = oracle.iter().copied().max().unwrap_or(0);
        let expect_r = oracle.iter().copied().min().unwrap_or(0);
        let r = exact_sum_sweep(g).unwrap();
        assert_eq!(r.diameter, expect_d, "diameter on n={}", g.num_vertices());
        assert_eq!(r.radius, expect_r, "radius on n={}", g.num_vertices());
        assert_eq!(oracle[r.diametral_vertex as usize], expect_d);
        assert_eq!(oracle[r.central_vertex as usize], expect_r);
    }

    #[test]
    fn shapes() {
        check(&path(13));
        check(&cycle(9));
        check(&cycle(12));
        check(&star(9));
        check(&complete(5));
        check(&grid2d(5, 8));
        check(&grid2d_torus(4, 4));
        check(&balanced_tree(2, 4));
        check(&lollipop(4, 5));
        check(&barbell(3, 4));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..4 {
            check(&erdos_renyi_gnm(60, 100, seed));
            check(&barabasi_albert(70, 3, seed));
            check(&road_like(80, 0.2, seed));
        }
    }

    #[test]
    fn disconnected() {
        check(&disjoint_union(&path(7), &cycle(6)));
        check(&with_isolated_vertices(&complete(4), 2));
        check(&CsrGraph::empty(3));
        check(&path(1));
        check(&path(2));
    }

    #[test]
    fn empty_graph_is_none() {
        assert!(exact_sum_sweep(&CsrGraph::empty(0)).is_none());
    }

    #[test]
    fn observed_variant_matches_and_converges() {
        use fdiam_obs::{BoundsSnapshot, Event, Observer, RunId};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Tap {
            names: Mutex<Vec<&'static str>>,
            snaps: Mutex<Vec<BoundsSnapshot>>,
        }
        impl Observer for Tap {
            fn event(&self, e: &Event<'_>) {
                self.names.lock().unwrap().push(e.name());
                if let Event::BoundsUpdate { snapshot } = e {
                    self.snaps.lock().unwrap().push(*snapshot);
                }
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        for g in [
            grid2d(6, 8),
            disjoint_union(&path(7), &cycle(6)),
            barabasi_albert(70, 3, 1),
        ] {
            let tap = Tap::default();
            let plain = exact_sum_sweep(&g).unwrap();
            let obs = exact_sum_sweep_observed(&g, RunId::fresh(), &tap).unwrap();
            assert_eq!(obs, plain);
            let names = tap.names.lock().unwrap();
            assert_eq!(names.first(), Some(&"run_start"));
            assert_eq!(names.last(), Some(&"run_end"));
            let snaps = tap.snaps.lock().unwrap();
            for pair in snaps.windows(2) {
                assert!(pair[1].lb >= pair[0].lb, "{pair:?}");
                assert!(pair[1].ub <= pair[0].ub, "{pair:?}");
            }
            let last = snaps.last().unwrap();
            assert_eq!((last.lb, last.ub), (plain.diameter, plain.diameter));
            assert_eq!(last.vertices_remaining, 0);
        }
    }

    #[test]
    fn observed_empty_graph_balances_lifecycle() {
        use fdiam_obs::{Event, Observer, RunId};
        use std::sync::Mutex;

        struct Tap(Mutex<Vec<&'static str>>);
        impl Observer for Tap {
            fn event(&self, e: &Event<'_>) {
                self.0.lock().unwrap().push(e.name());
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        let tap = Tap(Mutex::new(Vec::new()));
        assert!(exact_sum_sweep_observed(&CsrGraph::empty(0), RunId::fresh(), &tap).is_none());
        assert_eq!(
            *tap.0.lock().unwrap(),
            vec!["run_start", "bounds_update", "run_end"]
        );
    }

    #[test]
    fn batched_matches_oracle_across_batch_sizes() {
        for g in [
            grid2d(5, 8),
            star(9),
            balanced_tree(2, 4),
            erdos_renyi_gnm(60, 100, 3),
            barabasi_albert(70, 3, 2),
            disjoint_union(&path(7), &cycle(6)),
            with_isolated_vertices(&complete(4), 2),
            CsrGraph::empty(3),
            path(1),
        ] {
            let oracle = naive::all_eccentricities(&g);
            let expect_d = oracle.iter().copied().max().unwrap_or(0);
            let expect_r = oracle.iter().copied().min().unwrap_or(0);
            for batch in [1, 4, 64] {
                let r = exact_sum_sweep_batched(&g, batch).unwrap();
                assert_eq!(r.diameter, expect_d, "batch={batch}");
                assert_eq!(r.radius, expect_r, "batch={batch}");
                assert_eq!(oracle[r.diametral_vertex as usize], expect_d);
                assert_eq!(oracle[r.central_vertex as usize], expect_r);
            }
        }
        assert!(exact_sum_sweep_batched(&CsrGraph::empty(0), 8).is_none());
    }

    #[test]
    fn batch_of_one_matches_the_serial_driver_exactly() {
        // One lane per round reproduces the serial selection sequence,
        // sweep for sweep — certificates and call counts included.
        for g in [
            grid2d(6, 8),
            barabasi_albert(80, 3, 4),
            road_like(80, 0.2, 1),
        ] {
            let serial = exact_sum_sweep(&g).unwrap();
            let batched = exact_sum_sweep_batched(&g, 1).unwrap();
            assert_eq!(batched, serial);
        }
    }

    #[test]
    fn batched_observed_converges_monotonically() {
        use fdiam_obs::{BoundsSnapshot, Event, Observer, RunId};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Tap {
            names: Mutex<Vec<&'static str>>,
            snaps: Mutex<Vec<BoundsSnapshot>>,
        }
        impl Observer for Tap {
            fn event(&self, e: &Event<'_>) {
                self.names.lock().unwrap().push(e.name());
                if let Event::BoundsUpdate { snapshot } = e {
                    self.snaps.lock().unwrap().push(*snapshot);
                }
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        let g = erdos_renyi_gnm(80, 130, 5);
        let tap = Tap::default();
        let r = exact_sum_sweep_batched_observed(&g, 8, RunId::fresh(), &tap).unwrap();
        let names = tap.names.lock().unwrap();
        assert_eq!(names.first(), Some(&"run_start"));
        assert_eq!(names.last(), Some(&"run_end"));
        let snaps = tap.snaps.lock().unwrap();
        // one snapshot per logical sweep (heuristic + every lane) plus
        // the final zero-gap snapshot from run_end
        assert_eq!(snaps.len(), r.bfs_calls + 1);
        for pair in snaps.windows(2) {
            assert!(pair[1].lb >= pair[0].lb, "{pair:?}");
            assert!(pair[1].ub <= pair[0].ub, "{pair:?}");
        }
        let last = snaps.last().unwrap();
        assert_eq!((last.lb, last.ub), (r.diameter, r.diameter));
    }

    #[test]
    fn certifies_without_computing_all_eccentricities() {
        let g = balanced_tree(3, 6); // n = 1093
        let r = exact_sum_sweep(&g).unwrap();
        assert!(
            r.bfs_calls * 10 < g.num_vertices(),
            "{} BFS on n = {}",
            r.bfs_calls,
            g.num_vertices()
        );
        assert_eq!(r.diameter, 12);
        assert_eq!(r.radius, 6);
    }
}
