//! Strongly connected components (Tarjan) and the condensation DAG.
//!
//! The directed diameter is finite iff the digraph is strongly
//! connected, and the directed radius is finite iff some vertex reaches
//! every other — which happens exactly when the condensation (the DAG
//! of SCCs) has a **unique source** component: in a finite DAG every
//! node is reachable from some source by walking in-edges backwards, so
//! a lone source reaches everything, while with two sources neither can
//! reach the other. [`radial_vertices`] returns that source component's
//! members; the directed SumSweep restricts its radius certification to
//! them.
//!
//! The API mirrors [`fdiam_graph::ConnectedComponents`]: labels are
//! compacted to `0..k` by first occurrence in vertex-id order, so the
//! partition is deterministic and comparable against any reference
//! implementation after the same normalization.

use fdiam_graph::{DiGraph, EdgeList, VertexId};

/// SCC labelling of a digraph.
#[derive(Clone, Debug)]
pub struct StronglyConnectedComponents {
    /// `comp[v]` = component id of `v`, compacted to `0..k` by first
    /// occurrence in vertex-id order.
    comp: Vec<u32>,
    /// `sizes[c]` = number of vertices in component `c`.
    sizes: Vec<usize>,
}

impl StronglyConnectedComponents {
    /// Tarjan's algorithm, iterative (explicit DFS stack — recursion
    /// would overflow on path-shaped digraphs long before the paper's
    /// graph sizes).
    pub fn compute(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        const UNSET: u32 = u32::MAX;
        let mut index = vec![UNSET; n]; // DFS discovery order
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new(); // Tarjan's vertex stack
        let mut comp = vec![UNSET; n];
        let mut next_index = 0u32;
        let mut num_raw = 0u32;
        // Explicit DFS frames: (vertex, next out-neighbor offset).
        let mut frames: Vec<(u32, usize)> = Vec::new();

        for root in 0..n as u32 {
            if index[root as usize] != UNSET {
                continue;
            }
            frames.push((root, 0));
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                let vi = v as usize;
                if *cursor == 0 {
                    index[vi] = next_index;
                    lowlink[vi] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[vi] = true;
                }
                let nbrs = g.out_neighbors(v);
                let mut descended = false;
                while *cursor < nbrs.len() {
                    let w = nbrs[*cursor] as usize;
                    *cursor += 1;
                    if index[w] == UNSET {
                        frames.push((w as u32, 0));
                        descended = true;
                        break;
                    } else if on_stack[w] {
                        lowlink[vi] = lowlink[vi].min(index[w]);
                    }
                }
                if descended {
                    continue;
                }
                // v is finished: maybe a root of an SCC, then return.
                if lowlink[vi] == index[vi] {
                    loop {
                        let w = stack.pop().expect("tarjan stack") as usize;
                        on_stack[w] = false;
                        comp[w] = num_raw;
                        if w == vi {
                            break;
                        }
                    }
                    num_raw += 1;
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let pi = p as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
            }
        }

        // Compact raw (reverse-topological) labels by first occurrence
        // in vertex-id order — the same normalization ConnectedComponents
        // uses, making partitions directly comparable.
        let mut remap: Vec<u32> = vec![UNSET; num_raw as usize];
        let mut sizes: Vec<usize> = Vec::new();
        for label in comp.iter_mut() {
            let slot = &mut remap[*label as usize];
            if *slot == UNSET {
                *slot = sizes.len() as u32;
                sizes.push(0);
            }
            *label = *slot;
            sizes[*label as usize] += 1;
        }
        Self { comp, sizes }
    }

    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of vertex `v`.
    #[inline]
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.comp[v as usize]
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Id of the largest component (ties → lowest id).
    pub fn largest_component(&self) -> Option<u32> {
        (0..self.sizes.len() as u32).max_by_key(|&c| (self.sizes[c as usize], std::cmp::Reverse(c)))
    }

    /// True if the digraph is strongly connected (and non-empty).
    pub fn is_strongly_connected(&self) -> bool {
        self.num_components() == 1
    }

    /// Full labelling slice.
    pub fn labels(&self) -> &[u32] {
        &self.comp
    }
}

/// The condensation: a DAG over component ids with one arc `c → c'`
/// for every pair of components joined by at least one original arc
/// (duplicates collapse in the builder).
pub fn condensation(g: &DiGraph, scc: &StronglyConnectedComponents) -> DiGraph {
    let k = scc.num_components();
    let mut el = EdgeList::with_capacity(k, g.num_arcs());
    for u in g.vertices() {
        let cu = scc.component_of(u);
        for &v in g.out_neighbors(u) {
            let cv = scc.component_of(v);
            if cu != cv {
                el.push(cu, cv);
            }
        }
    }
    DiGraph::from_edge_list(&el)
}

/// The vertices whose forward eccentricity can be finite: members of
/// the condensation's unique source component, or empty when no vertex
/// reaches every other (≥ 2 sources, or an empty graph).
pub fn radial_vertices(g: &DiGraph, scc: &StronglyConnectedComponents) -> Vec<VertexId> {
    let k = scc.num_components();
    if k == 0 {
        return Vec::new();
    }
    if k == 1 {
        return g.vertices().collect();
    }
    // A component is a source iff no incoming arc crosses into it.
    let mut has_in = vec![false; k];
    for u in g.vertices() {
        let cu = scc.component_of(u);
        for &v in g.out_neighbors(u) {
            let cv = scc.component_of(v);
            if cu != cv {
                has_in[cv as usize] = true;
            }
        }
    }
    let mut sources = (0..k as u32).filter(|&c| !has_in[c as usize]);
    let (Some(src), None) = (sources.next(), sources.next()) else {
        return Vec::new(); // two or more sources: nobody reaches all
    };
    g.vertices()
        .filter(|&v| scc.component_of(v) == src)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::transform::orient;
    use fdiam_graph::{generators, EdgeList};

    fn digraph(n: usize, arcs: &[(u32, u32)]) -> DiGraph {
        let mut el = EdgeList::new(n);
        for &(u, v) in arcs {
            el.push(u, v);
        }
        DiGraph::from_edge_list(&el)
    }

    #[test]
    fn cycle_is_one_component() {
        let g = digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert!(scc.is_strongly_connected());
        assert_eq!(scc.sizes(), &[4]);
        assert_eq!(radial_vertices(&g, &scc), vec![0, 1, 2, 3]);
        let c = condensation(&g, &scc);
        assert_eq!(c.num_vertices(), 1);
        assert_eq!(c.num_arcs(), 0);
    }

    #[test]
    fn two_cycles_with_a_bridge() {
        // {0,1} ⇄, {2,3} ⇄, bridge 1 → 2
        let g = digraph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.num_components(), 2);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(2), scc.component_of(3));
        assert_ne!(scc.component_of(0), scc.component_of(2));
        // labels compact by first occurrence: vertex 0's comp is 0
        assert_eq!(scc.component_of(0), 0);
        let c = condensation(&g, &scc);
        assert_eq!(c.num_vertices(), 2);
        assert_eq!(c.num_arcs(), 1);
        assert!(c.has_arc(0, 1));
        // the {0,1} component is the unique source
        assert_eq!(radial_vertices(&g, &scc), vec![0, 1]);
    }

    #[test]
    fn dag_path_is_all_singletons() {
        let g = digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.num_components(), 5);
        assert_eq!(radial_vertices(&g, &scc), vec![0]);
        // the condensation of a DAG is the DAG itself
        let c = condensation(&g, &scc);
        assert_eq!(c.num_arcs(), 4);
    }

    #[test]
    fn two_sources_means_no_radial_vertices() {
        // 0 → 2 ← 1
        let g = digraph(3, &[(0, 2), (1, 2)]);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.num_components(), 3);
        assert!(radial_vertices(&g, &scc).is_empty());
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let z = DiGraph::empty(0);
        let scc = StronglyConnectedComponents::compute(&z);
        assert_eq!(scc.num_components(), 0);
        assert!(!scc.is_strongly_connected());
        assert!(radial_vertices(&z, &scc).is_empty());

        let one = DiGraph::empty(1);
        let scc = StronglyConnectedComponents::compute(&one);
        assert!(scc.is_strongly_connected());
        assert_eq!(radial_vertices(&one, &scc), vec![0]);

        let iso = DiGraph::empty(3);
        let scc = StronglyConnectedComponents::compute(&iso);
        assert_eq!(scc.num_components(), 3);
        assert!(radial_vertices(&iso, &scc).is_empty());
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        // 60k-vertex directed path: recursive Tarjan would blow the
        // stack; the iterative version must not.
        let n = 60_000;
        let mut el = EdgeList::new(n);
        for v in 0..(n as u32 - 1) {
            el.push(v, v + 1);
        }
        let g = DiGraph::from_edge_list(&el);
        let scc = StronglyConnectedComponents::compute(&g);
        assert_eq!(scc.num_components(), n);
    }

    #[test]
    fn condensation_is_acyclic() {
        for seed in 0..4 {
            let g = orient(&generators::erdos_renyi_gnm(80, 160, seed), 30, seed);
            let scc = StronglyConnectedComponents::compute(&g);
            let c = condensation(&g, &scc);
            // acyclicity: the condensation's SCCs are all singletons
            let cscc = StronglyConnectedComponents::compute(&c);
            assert_eq!(cscc.num_components(), c.num_vertices(), "seed {seed}");
            // labels cover 0..k and sizes sum to n
            assert_eq!(scc.sizes().iter().sum::<usize>(), g.num_vertices());
        }
    }

    #[test]
    fn fully_bidirectional_orientation_matches_weak_components() {
        let und = generators::erdos_renyi_gnm(60, 70, 3);
        let g = orient(&und, 100, 0);
        let scc = StronglyConnectedComponents::compute(&g);
        let cc = fdiam_graph::ConnectedComponents::compute(&und);
        assert_eq!(scc.labels(), cc.labels());
    }
}
