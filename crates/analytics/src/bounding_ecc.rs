//! Bounding eccentricities — F. W. Takes & W. A. Kosters, *"Computing
//! the Eccentricity Distribution of Large Graphs"*, Algorithms 6(1),
//! 2013.
//!
//! Maintains a lower and an upper eccentricity bound per vertex. Each
//! BFS from a selected vertex `v` yields exact `ecc(v)` and, for every
//! reachable `w` at distance `d`:
//!
//! ```text
//! ecc(w) ≥ max(ecc(v) − d, d)        (lower bound)
//! ecc(w) ≤ ecc(v) + d                (upper bound)
//! ```
//!
//! Vertices whose bounds meet get their exact eccentricity for free.
//! Selection alternates between the vertex with the largest upper bound
//! and the one with the smallest lower bound (hitting periphery and
//! center alternately), the strategy the original paper found best.
//!
//! On disconnected inputs each component resolves independently
//! (bounds only propagate along finite distances); isolated vertices
//! have eccentricity 0 by convention.

use crate::observe::{trivial_ub, SweepObs};
use fdiam_bfs::distances::{bfs_distances_serial, UNREACHABLE};
use fdiam_bfs::{bp64_distances_cancellable, BfsScratch, MAX_LANES};
use fdiam_core::Cancelled;
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::{CancelToken, Observer, RunId};

/// Result of the bounding-eccentricities computation.
#[derive(Clone, Debug)]
pub struct EccentricityResult {
    /// Exact eccentricity of every vertex.
    pub eccentricities: Vec<u32>,
    /// BFS traversals performed (⌧ the paper reports this is typically
    /// a tiny fraction of `n`).
    pub bfs_calls: usize,
}

/// Computes the exact eccentricity of every vertex.
pub fn bounding_eccentricities(g: &CsrGraph) -> EccentricityResult {
    driver(g, None, None).expect("no cancel token").0
}

/// [`bounding_eccentricities`] polling `cancel` before every BFS
/// selection. The granularity is one whole traversal (coarser than the
/// per-level checks inside F-Diam's kernels) — each BFS here is a plain
/// serial distance sweep, so a request still stops within one O(n + m)
/// unit of work of its deadline. An already-expired token stops before
/// the first traversal.
pub fn bounding_eccentricities_cancellable(
    g: &CsrGraph,
    cancel: &CancelToken,
) -> Result<EccentricityResult, Cancelled> {
    driver(g, Some(cancel), None).map(|(r, _)| r)
}

/// [`bounding_eccentricities_cancellable`] publishing the run lifecycle
/// to `obs`: `run_start`, one certified diameter-bounds snapshot per
/// sweep (`lb` = loosest proven lower bound over all per-vertex lower
/// bounds, `ub` = loosest per-vertex upper bound capped at the trivial
/// `n − 1`), and `run_end` on success. A cancelled run emits no
/// `run_end`, mirroring the F-Diam driver — registries watching the
/// stream need an explicit deregister on that path.
pub fn bounding_eccentricities_observed(
    g: &CsrGraph,
    run: RunId,
    obs: &dyn Observer,
    cancel: Option<&CancelToken>,
) -> Result<EccentricityResult, Cancelled> {
    let watch = SweepObs::start(run, obs, "bounding-ecc", g);
    let (r, connected) = driver(g, cancel, Some(&watch))?;
    let diameter = r.eccentricities.iter().copied().max().unwrap_or(0);
    watch.end("done", r.bfs_calls as u64, diameter, connected);
    Ok(r)
}

/// [`bounding_eccentricities`] with the bit-parallel batched engine:
/// up to `batch` (≤ 64) selected sources share one traversal via
/// [`bp64_distances`](fdiam_bfs::bp64_distances), so the edge scans of
/// a whole selection round are amortized. **Opt-in** — the serial
/// driver's sweep-count behaviour (asserted by this module's tests) is
/// untouched.
///
/// Per round, candidates are drawn by the same alternating
/// largest-upper / smallest-lower strategy, then their exact
/// eccentricities are applied *sequentially in selection order* —
/// every lane counts as one `bfs_calls` unit and tightens bounds
/// exactly as a serial sweep from that source would, so the result is
/// identical eccentricities with (typically) fewer edge scans. Late
/// lanes may target vertices an earlier lane of the same round already
/// resolved; their sweeps are still applied (sound: bounds only
/// tighten), which is the batching trade-off `bench ecc_sweeps`
/// measures.
pub fn bounding_eccentricities_batched(g: &CsrGraph, batch: usize) -> EccentricityResult {
    batched_driver(g, batch, None, None)
        .expect("no cancel token")
        .0
}

/// [`bounding_eccentricities_batched`] with cancellation (polled at
/// level barriers *inside* the shared traversal, finer than the serial
/// driver's per-sweep check) and optional run-lifecycle observation.
/// One bounds snapshot is published per *lane* — the per-sweep
/// publication contract, unchanged by batching.
pub fn bounding_eccentricities_batched_observed(
    g: &CsrGraph,
    batch: usize,
    run: RunId,
    obs: &dyn Observer,
    cancel: Option<&CancelToken>,
) -> Result<EccentricityResult, Cancelled> {
    let watch = SweepObs::start(run, obs, "bounding-ecc-bp64", g);
    let (r, connected) = batched_driver(g, batch, cancel, Some(&watch))?;
    let diameter = r.eccentricities.iter().copied().max().unwrap_or(0);
    watch.end("done", r.bfs_calls as u64, diameter, connected);
    Ok(r)
}

fn batched_driver(
    g: &CsrGraph,
    batch: usize,
    cancel: Option<&CancelToken>,
    watch: Option<&SweepObs<'_>>,
) -> Result<(EccentricityResult, bool), Cancelled> {
    let n = g.num_vertices();
    let batch = batch.clamp(1, MAX_LANES);
    let mut state = BoundsState::new(g);
    let mut bfs_calls = 0usize;
    let mut connected = n <= 1;
    let mut scratch = BfsScratch::new(n);
    let mut dist = Vec::new();
    let mut candidates: Vec<VertexId> = Vec::with_capacity(batch);
    // Per-round "already drawn" marks — a bool per vertex instead of a
    // `candidates.contains` scan keeps selection at O(n·batch) per
    // round, which matters on inputs where the intervals converge in a
    // few sweeps and selection would otherwise dominate the traversal.
    let mut drawn = vec![false; n];

    let mut pick_upper = true;
    // Exponential lane ramp: inputs whose intervals collapse in a
    // handful of sweeps (grids, trees) would waste most of a full
    // 64-lane round — candidates are drawn before any of the round's
    // sweeps can tighten a bound. Starting at one lane and doubling
    // per round costs at most ~2x the serial sweep count on the easy
    // prefix while reaching full sharing within log2(batch) rounds on
    // inputs that need hundreds of sweeps.
    let mut round_batch = 1usize;
    loop {
        // Draw up to `round_batch` sources with the serial
        // alternation, skipping vertices already picked this round.
        for &v in &candidates {
            drawn[v as usize] = false;
        }
        candidates.clear();
        while candidates.len() < round_batch {
            let fresh = |v: &usize| !state.done[*v] && !drawn[*v];
            let candidate = if pick_upper {
                (0..n)
                    .filter(fresh)
                    .max_by_key(|&v| (state.upper[v], g.degree(v as VertexId)))
            } else {
                (0..n)
                    .filter(fresh)
                    .min_by_key(|&v| (state.lower[v], std::cmp::Reverse(g.degree(v as VertexId))))
            };
            pick_upper = !pick_upper;
            match candidate {
                Some(v) => {
                    drawn[v] = true;
                    candidates.push(v as VertexId);
                }
                None => break,
            }
        }
        if candidates.is_empty() {
            break;
        }
        round_batch = (round_batch * 2).min(batch);
        if cancel.is_some_and(|t| t.is_cancelled()) {
            cancelled_handoff(watch, &state, bfs_calls);
            return Err(Cancelled);
        }

        // One shared traversal answers every candidate's sweep.
        let summary = match cancel {
            Some(token) => {
                match bp64_distances_cancellable(g, &candidates, &mut scratch, &mut dist, token) {
                    Some(s) => s,
                    None => {
                        cancelled_handoff(watch, &state, bfs_calls);
                        return Err(Cancelled);
                    }
                }
            }
            None => fdiam_bfs::bp64_distances(g, &candidates, &mut scratch, &mut dist),
        };

        for (k, &v) in candidates.iter().enumerate() {
            let e = summary.ecc[k];
            bfs_calls += 1;
            if bfs_calls == 1 {
                let row = &dist[..n];
                connected = row.iter().filter(|&&d| d != UNREACHABLE).count() == n;
            }
            state.apply_sweep(v, e, &dist[k * n..(k + 1) * n]);
            if let Some(watch) = watch {
                state.publish(watch, bfs_calls, n);
            }
        }
    }

    Ok((
        EccentricityResult {
            eccentricities: state.ecc,
            bfs_calls,
        },
        connected,
    ))
}

/// Per-vertex Takes–Kosters interval state shared by the serial and
/// batched drivers (the update rule must stay byte-identical).
struct BoundsState {
    lower: Vec<u32>,
    upper: Vec<u32>,
    done: Vec<bool>,
    ecc: Vec<u32>,
}

impl BoundsState {
    fn new(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut s = Self {
            lower: vec![0; n],
            upper: vec![u32::MAX; n],
            done: vec![false; n],
            ecc: vec![0; n],
        };
        // Isolated vertices: eccentricity 0, no BFS needed.
        for v in 0..n {
            if g.degree(v as VertexId) == 0 {
                s.done[v] = true;
            }
        }
        s
    }

    /// Folds one exact sweep (source `v`, eccentricity `e`, distance
    /// row `dist`) into the intervals — the paper's two inequalities.
    fn apply_sweep(&mut self, v: VertexId, e: u32, dist: &[u32]) {
        let v = v as usize;
        self.done[v] = true;
        self.ecc[v] = e;
        self.lower[v] = e;
        self.upper[v] = e;
        for (w, &d) in dist.iter().enumerate() {
            if d == UNREACHABLE || self.done[w] {
                continue;
            }
            self.lower[w] = self.lower[w].max(e.saturating_sub(d)).max(d);
            self.upper[w] = self.upper[w].min(e + d);
            if self.lower[w] == self.upper[w] {
                self.done[w] = true;
                self.ecc[w] = self.lower[w];
            }
        }
    }

    /// Publishes the certified diameter bounds derived from the
    /// intervals (same derivation as the serial driver's inline pass).
    fn publish(&self, watch: &SweepObs<'_>, bfs_calls: usize, n: usize) {
        let (lb, ub, remaining) = interval_bounds(&self.lower, &self.upper, &self.done, &self.ecc);
        watch.publish(
            "bounding_ecc",
            bfs_calls as u64,
            lb,
            ub.min(trivial_ub(n)),
            remaining,
        );
    }
}

/// Certified diameter bounds from the per-vertex intervals: the
/// diameter is `max ecc`, so `max lower ≤ diameter ≤ max (resolved ecc
/// | unresolved upper)`. Untouched vertices still carry the `u32::MAX`
/// sentinel — callers cap the returned ub at [`trivial_ub`].
fn interval_bounds(lower: &[u32], upper: &[u32], done: &[bool], ecc: &[u32]) -> (u32, u32, usize) {
    let lb = lower.iter().copied().max().unwrap_or(0);
    let mut ub = lb;
    let mut remaining = 0usize;
    for w in 0..done.len() {
        if done[w] {
            ub = ub.max(ecc[w]);
        } else {
            remaining += 1;
            ub = ub.max(upper[w]);
        }
    }
    (lb, ub, remaining)
}

/// Cancellation handoff: re-publish the interval state proven so far
/// under the "cancelled" phase, so a registry holding the run's latest
/// snapshot can serve it to an anytime consumer. Nothing is published
/// before the first completed sweep — an immediately-expired run has
/// certified nothing worth handing off.
fn cancelled_handoff(watch: Option<&SweepObs<'_>>, state: &BoundsState, bfs_calls: usize) {
    if bfs_calls == 0 {
        return;
    }
    if let Some(watch) = watch {
        let n = state.done.len();
        let (lb, ub, remaining) =
            interval_bounds(&state.lower, &state.upper, &state.done, &state.ecc);
        watch.cancelled(bfs_calls as u64, lb, ub.min(trivial_ub(n)), remaining);
    }
}

fn driver(
    g: &CsrGraph,
    cancel: Option<&CancelToken>,
    watch: Option<&SweepObs<'_>>,
) -> Result<(EccentricityResult, bool), Cancelled> {
    let n = g.num_vertices();
    let mut lower = vec![0u32; n];
    let mut upper = vec![u32::MAX; n];
    let mut done = vec![false; n];
    let mut ecc = vec![0u32; n];
    let mut bfs_calls = 0usize;
    let mut dist = Vec::new();
    let mut connected = n <= 1;

    // Isolated vertices: eccentricity 0, no BFS needed.
    for v in 0..n {
        if g.degree(v as VertexId) == 0 {
            done[v] = true;
            ecc[v] = 0;
        }
    }

    let mut pick_upper = true; // alternate selection strategy
    loop {
        // Resolve any vertex whose bounds met.
        // (Done lazily below after each update pass; here select next.)
        let candidate = if pick_upper {
            (0..n)
                .filter(|&v| !done[v])
                .max_by_key(|&v| (upper[v], g.degree(v as VertexId)))
        } else {
            (0..n)
                .filter(|&v| !done[v])
                .min_by_key(|&v| (lower[v], std::cmp::Reverse(g.degree(v as VertexId))))
        };
        pick_upper = !pick_upper;
        let Some(v) = candidate else { break };
        if cancel.is_some_and(|t| t.is_cancelled()) {
            // Same handoff as the batched driver: the interval state
            // proven so far goes out as a final "cancelled" snapshot.
            if bfs_calls > 0 {
                if let Some(watch) = watch {
                    let (lb, ub, remaining) = interval_bounds(&lower, &upper, &done, &ecc);
                    watch.cancelled(bfs_calls as u64, lb, ub.min(trivial_ub(n)), remaining);
                }
            }
            return Err(Cancelled);
        }

        let e = bfs_distances_serial(g, v as VertexId, &mut dist);
        bfs_calls += 1;
        if bfs_calls == 1 {
            connected = dist.iter().filter(|&&d| d != UNREACHABLE).count() == n;
        }
        done[v] = true;
        ecc[v] = e;
        lower[v] = e;
        upper[v] = e;

        for (w, &d) in dist.iter().enumerate() {
            if d == UNREACHABLE || done[w] {
                continue;
            }
            lower[w] = lower[w].max(e.saturating_sub(d)).max(d);
            upper[w] = upper[w].min(e + d);
            if lower[w] == upper[w] {
                done[w] = true;
                ecc[w] = lower[w];
            }
        }

        if let Some(watch) = watch {
            let (lb, ub, remaining) = interval_bounds(&lower, &upper, &done, &ecc);
            watch.publish(
                "bounding_ecc",
                bfs_calls as u64,
                lb,
                ub.min(trivial_ub(n)),
                remaining,
            );
        }
    }

    Ok((
        EccentricityResult {
            eccentricities: ecc,
            bfs_calls,
        },
        connected,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_baselines::naive;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
    use fdiam_graph::CsrGraph;

    fn check(g: &CsrGraph) {
        let oracle = naive::all_eccentricities(g);
        let r = bounding_eccentricities(g);
        assert_eq!(r.eccentricities, oracle);
        assert!(r.bfs_calls <= g.num_vertices().max(1));
    }

    #[test]
    fn shapes() {
        check(&path(12));
        check(&cycle(9));
        check(&cycle(10));
        check(&star(8));
        check(&complete(6));
        check(&grid2d(5, 7));
        check(&grid2d_torus(4, 5));
        check(&balanced_tree(3, 3));
        check(&caterpillar(5, 2));
        check(&lollipop(5, 5));
        check(&barbell(4, 3));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..4 {
            check(&erdos_renyi_gnm(70, 110, seed));
            check(&barabasi_albert(80, 3, seed));
            check(&road_like(90, 0.2, seed));
            check(&watts_strogatz(60, 4, 0.2, seed));
        }
    }

    #[test]
    fn disconnected_and_degenerate() {
        check(&disjoint_union(&path(6), &cycle(5)));
        check(&with_isolated_vertices(&star(5), 3));
        check(&CsrGraph::empty(4));
        check(&CsrGraph::empty(0));
        check(&path(1));
        check(&path(2));
    }

    #[test]
    fn uses_fewer_than_half_n_bfs_on_structured_input() {
        // Computing *all* eccentricities exactly is much harder than
        // the diameter alone; still the bounds spare a solid majority
        // of the BFS calls even on a tree, where sibling leaves can
        // only be separated by nearby sweeps.
        let g = balanced_tree(3, 6); // n = 1093
        let r = bounding_eccentricities(&g);
        assert!(
            r.bfs_calls * 2 < g.num_vertices(),
            "{} BFS for n = {}",
            r.bfs_calls,
            g.num_vertices()
        );
    }

    #[test]
    fn wide_spectrum_inputs_resolve_fast() {
        // Takes & Kosters' pruning thrives when the eccentricity
        // spectrum is wide (road networks): most vertices' bounds meet
        // without a BFS. (On spectrum-compressed graphs like pure
        // preferential attachment, exact *all*-eccentricities
        // legitimately approaches Θ(n) traversals.)
        let g = fdiam_graph::generators::road_network(2500, 0.5, 2, 7);
        let r = bounding_eccentricities(&g);
        assert!(
            r.bfs_calls * 3 < g.num_vertices(),
            "{} BFS for n = {}",
            r.bfs_calls,
            g.num_vertices()
        );
    }

    #[test]
    fn cancellable_with_live_token_matches_uncancelled() {
        let g = erdos_renyi_gnm(80, 130, 9);
        let token = fdiam_obs::CancelToken::new();
        let a = bounding_eccentricities(&g);
        let b = bounding_eccentricities_cancellable(&g, &token).expect("live token");
        assert_eq!(a.eccentricities, b.eccentricities);
        assert_eq!(a.bfs_calls, b.bfs_calls);
    }

    #[test]
    fn expired_token_stops_before_the_first_bfs() {
        let g = grid2d(10, 10);
        let token = fdiam_obs::CancelToken::with_deadline(std::time::Duration::ZERO);
        assert_eq!(
            bounding_eccentricities_cancellable(&g, &token).err(),
            Some(Cancelled)
        );
    }

    #[test]
    fn observed_variant_matches_and_emits_balanced_lifecycle() {
        use fdiam_obs::{Event, Observer, RunId};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Tap {
            names: Mutex<Vec<&'static str>>,
            gaps: Mutex<Vec<u32>>,
        }
        impl Observer for Tap {
            fn event(&self, e: &Event<'_>) {
                self.names.lock().unwrap().push(e.name());
                if let Event::BoundsUpdate { snapshot } = e {
                    self.gaps.lock().unwrap().push(snapshot.gap());
                }
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        for g in [
            grid2d(6, 7),
            disjoint_union(&path(6), &cycle(5)),
            CsrGraph::empty(4),
        ] {
            let tap = Tap::default();
            let plain = bounding_eccentricities(&g);
            let obs = bounding_eccentricities_observed(&g, RunId::fresh(), &tap, None)
                .expect("no cancel token");
            assert_eq!(obs.eccentricities, plain.eccentricities);
            assert_eq!(obs.bfs_calls, plain.bfs_calls);
            let names = tap.names.lock().unwrap();
            assert_eq!(names.first(), Some(&"run_start"));
            assert_eq!(names.last(), Some(&"run_end"));
            assert_eq!(
                names.iter().filter(|n| **n == "bounds_update").count(),
                plain.bfs_calls + 1, // one per sweep + the final snapshot
            );
            assert_eq!(tap.gaps.lock().unwrap().last(), Some(&0));
        }
    }

    #[test]
    fn observed_cancelled_run_emits_no_run_end() {
        use fdiam_obs::{Event, Observer, RunId};
        use std::sync::Mutex;

        struct Tap(Mutex<Vec<&'static str>>);
        impl Observer for Tap {
            fn event(&self, e: &Event<'_>) {
                self.0.lock().unwrap().push(e.name());
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        let g = grid2d(8, 8);
        let token = fdiam_obs::CancelToken::with_deadline(std::time::Duration::ZERO);
        let tap = Tap(Mutex::new(Vec::new()));
        let r = bounding_eccentricities_observed(&g, RunId::fresh(), &tap, Some(&token));
        assert_eq!(r.err(), Some(Cancelled));
        let names = tap.0.lock().unwrap();
        assert!(names.contains(&"run_start"));
        assert!(!names.contains(&"run_end"));
    }

    #[test]
    fn mid_run_cancel_hands_off_a_final_cancelled_snapshot() {
        use fdiam_obs::{BoundsSnapshot, CancelToken, Event, Observer, RunId};
        use std::sync::Mutex;

        // Cancel from inside the event stream after the third sweep:
        // the driver's next cancel check must re-publish the proven
        // interval state under the "cancelled" phase — the snapshot
        // fdiam-serve's anytime mode serves — and emit no run_end.
        struct CancelAfter {
            token: CancelToken,
            snaps: Mutex<Vec<BoundsSnapshot>>,
            saw_run_end: Mutex<bool>,
        }
        impl Observer for CancelAfter {
            fn event(&self, e: &Event<'_>) {
                if let Event::BoundsUpdate { snapshot } = e {
                    let mut snaps = self.snaps.lock().unwrap();
                    snaps.push(*snapshot);
                    if snaps.len() == 3 {
                        self.token.cancel();
                    }
                }
                if e.name() == "run_end" {
                    *self.saw_run_end.lock().unwrap() = true;
                }
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        // Every vertex of a cycle has the same eccentricity, so the
        // intervals converge slowly — three sweeps are mid-run.
        let g = cycle(60); // true diameter 30
        let obs = CancelAfter {
            token: CancelToken::new(),
            snaps: Mutex::new(Vec::new()),
            saw_run_end: Mutex::new(false),
        };
        let token = obs.token.clone();
        let r = bounding_eccentricities_observed(&g, RunId::fresh(), &obs, Some(&token));
        assert_eq!(r.err(), Some(Cancelled));
        assert!(!*obs.saw_run_end.lock().unwrap());

        let snaps = obs.snaps.lock().unwrap();
        let last = snaps.last().unwrap();
        assert_eq!(last.phase, "cancelled");
        assert!(last.lb <= 30 && 30 <= last.ub, "bracket lost: {last:?}");
        assert!(last.lb > 0);
        // The handoff re-publishes the last proven state verbatim.
        let prev = snaps[snaps.len() - 2];
        assert_eq!((last.lb, last.ub), (prev.lb, prev.ub));
        assert_eq!(last.bfs_count, prev.bfs_count);
    }

    #[test]
    fn bounds_meet_exactly_on_star_after_two_bfs() {
        let r = bounding_eccentricities(&star(50));
        // hub + one leaf determine every other leaf's bounds
        assert!(r.bfs_calls <= 3, "used {} BFS", r.bfs_calls);
    }

    #[test]
    fn batched_matches_oracle_across_batch_sizes() {
        for g in [
            grid2d(5, 7),
            star(8),
            balanced_tree(3, 3),
            erdos_renyi_gnm(70, 110, 2),
            barabasi_albert(80, 3, 1),
            disjoint_union(&path(6), &cycle(5)),
            with_isolated_vertices(&star(5), 3),
            CsrGraph::empty(4),
            CsrGraph::empty(0),
            path(1),
        ] {
            let oracle = naive::all_eccentricities(&g);
            for batch in [1, 3, 64] {
                let r = bounding_eccentricities_batched(&g, batch);
                assert_eq!(r.eccentricities, oracle, "batch={batch}");
            }
        }
    }

    #[test]
    fn batch_of_one_matches_the_serial_driver_exactly() {
        // With one lane per round the batched engine degenerates to the
        // serial selection sequence — same sweeps, same call count.
        for g in [grid2d(6, 7), barabasi_albert(90, 4, 5), star(20)] {
            let serial = bounding_eccentricities(&g);
            let batched = bounding_eccentricities_batched(&g, 1);
            assert_eq!(batched.eccentricities, serial.eccentricities);
            assert_eq!(batched.bfs_calls, serial.bfs_calls);
        }
    }

    #[test]
    fn batched_observed_emits_one_snapshot_per_lane_and_monotone_bounds() {
        use fdiam_obs::{Event, Observer, RunId};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Tap {
            names: Mutex<Vec<&'static str>>,
            bounds: Mutex<Vec<(u32, u32)>>,
        }
        impl Observer for Tap {
            fn event(&self, e: &Event<'_>) {
                self.names.lock().unwrap().push(e.name());
                if let Event::BoundsUpdate { snapshot } = e {
                    self.bounds.lock().unwrap().push((snapshot.lb, snapshot.ub));
                }
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        let g = erdos_renyi_gnm(90, 140, 11);
        let tap = Tap::default();
        let r = bounding_eccentricities_batched_observed(&g, 8, RunId::fresh(), &tap, None)
            .expect("no cancel token");
        assert_eq!(r.eccentricities, naive::all_eccentricities(&g));
        let names = tap.names.lock().unwrap();
        assert_eq!(names.first(), Some(&"run_start"));
        assert_eq!(names.last(), Some(&"run_end"));
        assert_eq!(
            names.iter().filter(|n| **n == "bounds_update").count(),
            r.bfs_calls + 1, // one per lane + the final snapshot
        );
        let bounds = tap.bounds.lock().unwrap();
        for pair in bounds.windows(2) {
            assert!(pair[1].0 >= pair[0].0, "lb regressed: {bounds:?}");
            assert!(pair[1].1 <= pair[0].1, "ub regressed: {bounds:?}");
        }
        assert_eq!(bounds.last().map(|&(lb, ub)| ub - lb), Some(0));
    }

    #[test]
    fn batched_expired_token_cancels_without_run_end() {
        use fdiam_obs::{Event, Observer, RunId};
        use std::sync::Mutex;

        struct Tap(Mutex<Vec<&'static str>>);
        impl Observer for Tap {
            fn event(&self, e: &Event<'_>) {
                self.0.lock().unwrap().push(e.name());
            }
            fn wants_bfs_detail(&self) -> bool {
                false
            }
        }

        let g = grid2d(8, 8);
        let token = fdiam_obs::CancelToken::with_deadline(std::time::Duration::ZERO);
        let tap = Tap(Mutex::new(Vec::new()));
        let r =
            bounding_eccentricities_batched_observed(&g, 16, RunId::fresh(), &tap, Some(&token));
        assert_eq!(r.err(), Some(Cancelled));
        let names = tap.0.lock().unwrap();
        assert!(names.contains(&"run_start"));
        assert!(!names.contains(&"run_end"));
    }
}
