//! Shared run-lifecycle plumbing for the observed analytics variants.
//!
//! Both [`crate::bounding_ecc`] and [`crate::sum_sweep`] publish the
//! same shape of telemetry as the F-Diam driver: a `run_start`, one
//! certified [`BoundsSnapshot`] per BFS sweep, and a `run_end` — so a
//! [`fdiam_obs::RunRegistry`] (or a JSONL trace) renders any of the
//! three codes with the same tooling.

use fdiam_graph::CsrGraph;
use fdiam_obs::{BoundsSnapshot, Event, Observer, RunId};
use std::time::Instant;

/// Per-run observation context threaded through an analytics driver.
pub(crate) struct SweepObs<'a> {
    pub run: RunId,
    pub obs: &'a dyn Observer,
    pub started: Instant,
}

impl<'a> SweepObs<'a> {
    /// Emits `run_start` and starts the elapsed clock.
    pub fn start(run: RunId, obs: &'a dyn Observer, algorithm: &'static str, g: &CsrGraph) -> Self {
        Self::start_counts(
            run,
            obs,
            algorithm,
            g.num_vertices(),
            g.num_undirected_edges(),
        )
    }

    /// [`SweepObs::start`] from raw counts — for directed drivers,
    /// where `m` is the arc count rather than half the CSR arcs.
    pub fn start_counts(
        run: RunId,
        obs: &'a dyn Observer,
        algorithm: &'static str,
        n: usize,
        m: usize,
    ) -> Self {
        obs.event(&Event::RunStart {
            algorithm,
            n,
            m,
            run,
        });
        SweepObs {
            run,
            obs,
            started: Instant::now(),
        }
    }

    /// Publishes one diameter-bounds snapshot.
    pub fn publish(
        &self,
        phase: &'static str,
        bfs_count: u64,
        lb: u32,
        ub: u32,
        vertices_remaining: usize,
    ) {
        self.obs.event(&Event::BoundsUpdate {
            snapshot: BoundsSnapshot {
                run: self.run,
                phase,
                bfs_count,
                lb,
                ub,
                vertices_remaining,
                elapsed_nanos: self.started.elapsed().as_nanos() as u64,
            },
        });
    }

    /// Publishes the final snapshot of a *cancelled* run: the bounds
    /// proven so far stay certified, so the cancel path re-publishes
    /// them under the "cancelled" phase for anytime consumers (a
    /// registry holding the run's latest snapshot) before the
    /// `Cancelled` error surfaces. No `run_end` follows.
    pub fn cancelled(&self, bfs_count: u64, lb: u32, ub: u32, vertices_remaining: usize) {
        self.publish("cancelled", bfs_count, lb, ub, vertices_remaining);
    }

    /// Emits the final zero-gap snapshot and `run_end`. Cancelled runs
    /// never reach this — like the F-Diam driver, they leave no
    /// `run_end` in the stream.
    pub fn end(&self, phase: &'static str, bfs_count: u64, diameter: u32, connected: bool) {
        self.publish(phase, bfs_count, diameter, diameter, 0);
        self.obs.event(&Event::RunEnd {
            diameter,
            connected,
            nanos: self.started.elapsed().as_nanos() as u64,
            run: self.run,
        });
    }
}

/// The trivial diameter upper bound `n − 1`, valid for any graph.
pub(crate) fn trivial_ub(n: usize) -> u32 {
    (n.saturating_sub(1)).min(u32::MAX as usize) as u32
}
