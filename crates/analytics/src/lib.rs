//! # fdiam-analytics
//!
//! Eccentricity analytics built on the same CSR/BFS substrate as
//! F-Diam. The diameter is one point of the eccentricity distribution;
//! this crate computes the rest of it exactly:
//!
//! * [`bounding_ecc`] — the eccentricity-bounding algorithm of Takes &
//!   Kosters (*Algorithms*, 2013/2014): exact eccentricity of **every**
//!   vertex with far fewer than `n` BFS traversals, by maintaining
//!   per-vertex lower/upper bounds that every finished BFS tightens.
//! * [`sum_sweep`] — ExactSumSweep (Borassi et al.), the
//!   radius-and-diameter tool the F-Diam paper's lineage is usually
//!   compared against: alternating farthest/closest sweeps that certify
//!   the diameter *and* the radius.
//! * [`scc`] — Tarjan strongly connected components and the
//!   condensation DAG, the reachability substrate of directed mode.
//! * [`dir_sum_sweep`] — the **directed** ExactSumSweep: forward and
//!   backward eccentricity bounds from paired forward/transpose BFS
//!   sweeps, diameter certified when either family closes, radius
//!   certified over the condensation's unique source SCC. Infinite
//!   values (non-strongly-connected inputs) are first-class `None`s.
//! * Convenience wrappers: [`radius`], [`center`], [`periphery`],
//!   [`eccentricities`].
//!
//! Everything is exact; every function is validated against the naive
//! APSP oracle in the test suite. Disconnected graphs follow the same
//! convention as the rest of the workspace: per-component
//! eccentricities (the distance to the farthest *reachable* vertex).

//! Both algorithms also come in `_observed` variants
//! ([`bounding_ecc::bounding_eccentricities_observed`],
//! [`sum_sweep::exact_sum_sweep_observed`]) that publish the same run
//! lifecycle as the F-Diam driver — `run_start`, a certified
//! diameter-bounds snapshot per sweep, `run_end` — so a
//! [`fdiam_obs::RunRegistry`] or a JSONL trace renders any of the
//! codes with the same tooling.

pub mod bounding_ecc;
pub mod dir_sum_sweep;
mod observe;
pub mod scc;
pub mod sum_sweep;

pub use bounding_ecc::{
    bounding_eccentricities_batched, bounding_eccentricities_batched_observed,
    bounding_eccentricities_observed,
};
pub use dir_sum_sweep::{
    directed_eccentricities, directed_sum_sweep, directed_sum_sweep_batched,
    directed_sum_sweep_batched_observed, directed_sum_sweep_cancellable,
    directed_sum_sweep_observed, DirSumSweepResult, DirectedEccentricities,
};
pub use scc::{condensation, radial_vertices, StronglyConnectedComponents};
pub use sum_sweep::{
    exact_sum_sweep_batched, exact_sum_sweep_batched_observed, exact_sum_sweep_observed,
};

use fdiam_graph::{CsrGraph, VertexId};

/// Exact eccentricity of every vertex (within its component), via
/// [`bounding_ecc::bounding_eccentricities`].
///
/// ```
/// use fdiam_analytics::eccentricities;
/// use fdiam_graph::generators::path;
/// assert_eq!(eccentricities(&path(5)), vec![4, 3, 2, 3, 4]);
/// ```
pub fn eccentricities(g: &CsrGraph) -> Vec<u32> {
    bounding_ecc::bounding_eccentricities(g).eccentricities
}

/// The radius: smallest eccentricity over all non-isolated vertices of
/// the largest sense — here, the global minimum over all vertices
/// (0 for a graph with an isolated vertex, matching the convention
/// that isolated vertices have eccentricity 0). Returns `None` for an
/// empty graph.
pub fn radius(g: &CsrGraph) -> Option<u32> {
    let e = eccentricities(g);
    e.iter().copied().min()
}

/// The center: all vertices of minimum eccentricity.
///
/// ```
/// use fdiam_analytics::center;
/// use fdiam_graph::generators::star;
/// assert_eq!(center(&star(9)), vec![0]); // the hub
/// ```
pub fn center(g: &CsrGraph) -> Vec<VertexId> {
    let e = eccentricities(g);
    let Some(&r) = e.iter().min() else {
        return Vec::new();
    };
    (0..e.len() as VertexId)
        .filter(|&v| e[v as usize] == r)
        .collect()
}

/// The periphery: all vertices of maximum eccentricity.
pub fn periphery(g: &CsrGraph) -> Vec<VertexId> {
    let e = eccentricities(g);
    let Some(&d) = e.iter().max() else {
        return Vec::new();
    };
    (0..e.len() as VertexId)
        .filter(|&v| e[v as usize] == d)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_baselines::naive;
    use fdiam_graph::generators::*;

    #[test]
    fn wrappers_match_oracle() {
        for g in [
            path(15),
            cycle(9),
            star(12),
            grid2d(5, 8),
            barabasi_albert(150, 3, 2),
            lollipop(5, 6),
        ] {
            let oracle = naive::all_eccentricities(&g);
            assert_eq!(eccentricities(&g), oracle);
            assert_eq!(radius(&g), oracle.iter().copied().min());
            let r = *oracle.iter().min().unwrap();
            let d = *oracle.iter().max().unwrap();
            assert!(center(&g).iter().all(|&v| oracle[v as usize] == r));
            assert!(periphery(&g).iter().all(|&v| oracle[v as usize] == d));
            assert!(!center(&g).is_empty());
            assert!(!periphery(&g).is_empty());
        }
    }

    #[test]
    fn center_of_path_and_star() {
        assert_eq!(center(&path(7)), vec![3]);
        assert_eq!(center(&path(8)), vec![3, 4]);
        assert_eq!(center(&star(9)), vec![0]);
        let p = periphery(&path(7));
        assert_eq!(p, vec![0, 6]);
    }

    #[test]
    fn empty_graph() {
        let g = fdiam_graph::CsrGraph::empty(0);
        assert_eq!(radius(&g), None);
        assert!(center(&g).is_empty());
        assert!(periphery(&g).is_empty());
    }

    #[test]
    fn theorem3_on_connected_graphs() {
        for seed in 0..3 {
            let g = barabasi_albert(120, 2, seed);
            let e = eccentricities(&g);
            let r = *e.iter().min().unwrap();
            let d = *e.iter().max().unwrap();
            assert!(2 * r >= d, "radius {r} < diameter {d} / 2");
        }
    }
}
