//! `fdiam-serve` — the diameter service binary. Flag parsing follows
//! the `fdiam` CLI conventions: argv errors print usage and exit 2.

use fdiam_serve::{AccessLog, ServeConfig, Server};
use std::time::Duration;

const USAGE: &str = "\
USAGE:
  fdiam-serve [OPTIONS]

OPTIONS:
  --addr HOST:PORT    bind address            (default 127.0.0.1:7878)
  --workers N         compute worker threads  (default 2)
  --queue N           admission queue depth   (default 16)
  --cache-mb N        graph cache budget, MiB (default 256)
  --timeout SECS      default per-request deadline (default: none)
  --flight-capacity N events retained per flight-recorder shard (default 4096)
  --flight-shards N   flight-recorder shards, rounded up to a power of
                      two                      (default 8)
  --flight-sample N   keep per-level BFS detail for 1-in-N traversals;
                      0 drops all detail       (default 16)
  --slow-threshold S  tail-sample requests slower than S seconds into
                      the capture spool        (default: deadline/cancel only)
  --spool-dir DIR     enable the capture spool behind GET /v1/debug/slow
  --spool-max N       captures retained in the spool (default 32)
  --post-mortem FILE  on panic, dump the flight ring + in-flight runs here
  --test-hooks        honor the sleep_ms/panic test hooks (integration tests)
  --quiet             disable the per-request JSONL access log (stderr)

ENDPOINTS:
  POST /v1/diameter         {\"spec\": \"grid:100x100\"}, {\"path\": \"g.gr\"}, or
                            {\"graph\": \"name\"}; \"anytime\": true returns the
                            certified [lb, ub] bounds on deadline expiry
  POST /v1/eccentricities   same body; add \"include_values\": true for all
  POST /v1/batch            graph reference + \"queries\": [{\"type\": \"ecc\",
                            \"source\": v}, {\"type\": \"diameter\"}, ...]
  PUT    /v1/graphs/{name}  register a named graph (\"pin\"/\"preload\" options)
  GET    /v1/graphs         named graphs with residency + per-name stats
  GET    /v1/graphs/{name}  one named graph
  DELETE /v1/graphs/{name}  unregister (evicts when no other name uses it)
  GET  /v1/runs             in-flight runs with their latest bounds snapshot
  GET  /v1/runs/{run_id}    one in-flight run (404 once it finishes)
  GET  /v1/debug/flight     flight-recorder ring dump (fdiam-trace JSONL)
  GET  /v1/debug/slow       tail-sampled slow/deadline captures
  GET  /v1/debug/slow/{f}   one capture's JSONL
  GET  /healthz             liveness + configuration
  GET  /metrics             Prometheus metrics (?format=summary for text dump)
";

fn parse(args: &[String]) -> Result<(String, ServeConfig), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServeConfig {
        access_log: AccessLog::stderr(),
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                config.workers = parse_count(&value("--workers")?, "--workers")?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--queue" => config.queue_depth = parse_count(&value("--queue")?, "--queue")?,
            "--cache-mb" => {
                config.cache_bytes = parse_count(&value("--cache-mb")?, "--cache-mb")? << 20
            }
            "--timeout" => {
                config.default_timeout = Some(parse_secs(&value("--timeout")?, "--timeout")?)
            }
            "--flight-capacity" => {
                config.flight.capacity =
                    parse_count(&value("--flight-capacity")?, "--flight-capacity")?
            }
            "--flight-shards" => {
                config.flight.shards = parse_count(&value("--flight-shards")?, "--flight-shards")?
            }
            "--flight-sample" => {
                config.flight.detail_sample =
                    parse_count(&value("--flight-sample")?, "--flight-sample")? as u32
            }
            "--slow-threshold" => {
                config.slow_threshold =
                    Some(parse_secs(&value("--slow-threshold")?, "--slow-threshold")?)
            }
            "--spool-dir" => config.spool_dir = Some(value("--spool-dir")?.into()),
            "--spool-max" => {
                config.spool_max_entries = parse_count(&value("--spool-max")?, "--spool-max")?
            }
            "--post-mortem" => config.post_mortem_path = Some(value("--post-mortem")?.into()),
            "--test-hooks" => config.allow_test_hooks = true,
            "--quiet" => config.access_log = AccessLog::disabled(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok((addr, config))
}

fn parse_count(raw: &str, name: &str) -> Result<usize, String> {
    raw.parse()
        .map_err(|_| format!("{name} wants a non-negative integer, got '{raw}'"))
}

fn parse_secs(raw: &str, name: &str) -> Result<Duration, String> {
    match raw.parse::<f64>() {
        Ok(s) if s.is_finite() && s >= 0.0 => Ok(Duration::from_secs_f64(s)),
        _ => Err(format!(
            "{name} wants a non-negative number of seconds, got '{raw}'"
        )),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, config) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let workers = config.workers;
    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // Announce the resolved address (ephemeral ports included) on a
    // parseable single line before blocking.
    println!(
        "fdiam-serve listening on http://{} ({workers} workers)",
        server.local_addr()
    );
    server.serve_forever();
}
