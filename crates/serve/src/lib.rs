//! # fdiam-serve
//!
//! A dependency-free HTTP/1.1 JSON service answering diameter and
//! eccentricity queries on demand — the paper's thesis (§1, §5) that
//! exact diameters are now cheap enough to serve interactively, turned
//! into a process. Built on `std::net` and the workspace crates only,
//! matching the dependency-free precedent of `fdiam-obs`.
//!
//! ## Endpoints
//!
//! | method & path | body | answer |
//! |---|---|---|
//! | `POST /v1/diameter` | `{"spec": …}` or `{"path": …}` | exact diameter via F-Diam |
//! | `POST /v1/eccentricities` | same | radius/diameter/all-ecc via Takes–Kosters |
//! | `GET /v1/runs` | — | all in-flight compute runs with their latest bounds snapshot |
//! | `GET /v1/runs/{run_id}` | — | one in-flight run (404 once it finishes) |
//! | `GET /healthz` | — | liveness + configuration |
//! | `GET /metrics` | — | Prometheus 0.0.4 text exposition |
//! | `GET /metrics?format=summary` | — | legacy [`MetricsRegistry`] summary (text) |
//!
//! Optional body fields: `timeout_secs` (per-request deadline,
//! overrides the server default), `serial` (run the sequential
//! algorithm), `include_values` (eccentricities endpoint: return the
//! full per-vertex array), `order` (load-time vertex relabeling:
//! `"none"`, `"degree"`, or `"bfs"` — a cache-locality hint; every id
//! in the response and the event stream stays in the input's original
//! space), `directed` (diameter endpoint: load the input as a digraph
//! — edge-list `u v` lines stay one-way arcs — and answer with the
//! directed SumSweep; `diameter`/`radius` are `null` when infinite).
//! Directed runs publish the same bounds-snapshot lifecycle, so they
//! are watchable through `GET /v1/runs` like any other run.
//!
//! ## Architecture
//!
//! One acceptor thread parses requests and answers `GET`s inline;
//! compute jobs go through a **bounded admission queue** to a fixed
//! pool of worker threads. A full queue sheds load immediately with
//! `429` + `Retry-After` instead of building an invisible backlog.
//! Each job carries a [`CancelToken`] armed with its deadline *at
//! admission time* — queue wait counts against the budget. Workers
//! check the token at dequeue (an already-expired job is answered
//! `504` without touching the graph) and thread it into the compute
//! kernels, which poll it at every BFS level barrier, so expiry stops
//! the actual computation, not just the response. Loaded graphs live
//! in a bytes-bounded LRU [`GraphCache`]; each worker keeps a pooled
//! [`BfsScratch`] arena, so a cache hit computes with zero setup
//! allocation. [`Server::shutdown`] stops accepting, then **drains**:
//! queued and in-flight jobs complete and every thread is joined — the
//! same no-detached-threads discipline as
//! [`run_concurrent_with_timeout`](fdiam_core::run_concurrent_with_timeout).

mod cache;
mod http;

pub use cache::{CacheOutcome, CachedTopology, GraphCache, LoadedGraph};

use fdiam_bfs::BfsScratch;
use fdiam_core::FdiamConfig;
use fdiam_graph::VertexOrder;
use fdiam_obs::json::{self, JsonObject, JsonValue};
use fdiam_obs::{
    CancelToken, MetricsObserver, MetricsRegistry, RemapIds, RunId, RunInfo, RunRegistry, Tee,
    PROMETHEUS_CONTENT_TYPE,
};
use http::{read_request, write_response, HttpError, Request};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Destination of the per-request JSONL access log. Cheap to clone
/// (handles share the sink); disabled by default so embedded test
/// servers stay silent — the `fdiam-serve` binary logs to stderr.
#[derive(Clone, Default)]
pub struct AccessLog(Option<Arc<Mutex<Box<dyn std::io::Write + Send>>>>);

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "AccessLog(enabled)"
        } else {
            "AccessLog(disabled)"
        })
    }
}

impl AccessLog {
    /// No access log (the `Default`).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// One JSONL line per request to stderr.
    pub fn stderr() -> Self {
        Self::to_writer(Box::new(std::io::stderr()))
    }

    /// One JSONL line per request to an arbitrary sink.
    pub fn to_writer(w: Box<dyn std::io::Write + Send>) -> Self {
        Self(Some(Arc::new(Mutex::new(w))))
    }

    /// An in-memory sink plus a handle to read it back — for tests
    /// asserting on access-log contents.
    pub fn buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&buf);
        (Self::to_writer(Box::new(SharedBuf(sink))), buf)
    }

    fn write_line(&self, line: &str) {
        if let Some(w) = &self.0 {
            let mut w = w.lock().unwrap();
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

/// `Write` adapter over the shared buffer handed out by
/// [`AccessLog::buffer`].
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Tunables for [`Server::bind`]. `Default` suits tests and small
/// deployments; `fdiam-serve --help` documents the CLI mapping.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Compute worker threads (each owns a pooled scratch arena).
    pub workers: usize,
    /// Admission queue depth; beyond it requests get `429`.
    pub queue_depth: usize,
    /// Byte budget of the graph LRU cache.
    pub cache_bytes: usize,
    /// Deadline applied when a request doesn't carry `timeout_secs`.
    pub default_timeout: Option<Duration>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Honor the `sleep_ms` test hook (integration tests use it to
    /// hold a worker busy deterministically). Off in production.
    pub allow_test_hooks: bool,
    /// Per-request JSONL access log sink (disabled by default).
    pub access_log: AccessLog,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            cache_bytes: 256 << 20,
            default_timeout: None,
            max_body_bytes: 1 << 20,
            allow_test_hooks: false,
            access_log: AccessLog::disabled(),
        }
    }
}

/// Which compute endpoint a job came through.
#[derive(Clone, Copy)]
enum Endpoint {
    Diameter,
    Eccentricities,
}

impl Endpoint {
    fn as_str(self) -> &'static str {
        match self {
            Endpoint::Diameter => "diameter",
            Endpoint::Eccentricities => "eccentricities",
        }
    }
}

/// A parsed, admitted compute request.
struct Job {
    stream: TcpStream,
    endpoint: Endpoint,
    /// Cache key: the `spec:`/`path:`-prefixed graph reference, plus
    /// an `#order=…` suffix when a relabeling pass is requested (the
    /// same input under different orders is a different CSR) and a
    /// `#directed` suffix for digraph loads (a different adjacency
    /// entirely).
    graph_key: String,
    /// Load-time relabeling pass applied on cache miss.
    order: VertexOrder,
    /// Load the input as a digraph and answer with the directed
    /// SumSweep (diameter endpoint only).
    directed: bool,
    serial: bool,
    include_values: bool,
    sleep_ms: u64,
    token: CancelToken,
    /// Trace id minted at admission; the compute run, the access-log
    /// line, the response body, and the metrics label all carry it.
    run: RunId,
    /// When the request was admitted — queue wait is measured from
    /// here to dequeue.
    admitted_at: Instant,
}

struct Shared {
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    cache: GraphCache,
    /// Live view of in-flight compute runs: workers tee their run's
    /// event stream into it, `GET /v1/runs` reads it.
    registry: RunRegistry,
    shutting_down: AtomicBool,
    started: Instant,
}

/// A running service. Dropping it without calling
/// [`Server::shutdown`] aborts the process-exit path only; tests and
/// embedders should shut down explicitly to get the drain guarantee.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the acceptor and worker threads.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            metrics: Arc::new(MetricsRegistry::new()),
            cache: GraphCache::new(config.cache_bytes),
            registry: RunRegistry::new(),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            config,
        });
        // Register the in-flight gauge at bind so `/metrics` exposes it
        // before (and after) any run exists.
        shared.metrics.gauge("runs.in_flight").set(0.0);

        let (tx, rx) = mpsc::sync_channel::<Job>(shared.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("fdiam-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fdiam-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, tx))
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry behind `GET /metrics`, for embedders.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The in-flight run registry behind `GET /v1/runs`, for embedders.
    pub fn runs(&self) -> &RunRegistry {
        &self.shared.registry
    }

    /// Graceful shutdown: stop accepting, let queued and in-flight
    /// jobs finish, join every thread. Returns once the last response
    /// has been written.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor dropped the job sender on exit; workers drain
        // the queue and then see the channel disconnect.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the acceptor exits (it never does unless the
    /// process is killed) — the run loop of the `fdiam-serve` binary.
    pub fn serve_forever(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, tx: SyncSender<Job>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A stuck peer must not wedge the single acceptor forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        handle_connection(stream, shared, &tx);
    }
    // Dropping `tx` here lets workers drain the queue and exit.
}

fn handle_connection(stream: TcpStream, shared: &Shared, tx: &SyncSender<Job>) {
    shared.metrics.counter("serve.requests").inc();
    let req = match read_request(&stream, shared.config.max_body_bytes) {
        Ok(r) => r,
        Err(HttpError::Malformed(msg)) => return respond_error(&stream, shared, 400, &msg),
        Err(HttpError::BodyTooLarge { limit }) => {
            return respond_error(&stream, shared, 413, &format!("body exceeds {limit} bytes"))
        }
        Err(HttpError::Io(_)) => return, // peer vanished; nothing to say
    };

    // Split the query string off the path so `/metrics?format=summary`
    // still routes to `/metrics`.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => respond_healthz(&stream, shared),
        ("GET", "/metrics") => {
            // Prometheus 0.0.4 text exposition by default; the legacy
            // human-readable summary stays behind `?format=summary`.
            let summary = query.split('&').any(|kv| kv == "format=summary");
            let (text, content_type) = if summary {
                (shared.metrics.render_summary(), "text/plain; charset=utf-8")
            } else {
                refresh_cache_gauges(shared);
                refresh_run_gauges(shared);
                (shared.metrics.render_prometheus(), PROMETHEUS_CONTENT_TYPE)
            };
            let _ = write_response(&stream, 200, &[], content_type, text.as_bytes());
        }
        ("GET", "/v1/runs") => respond_runs_list(&stream, shared),
        ("GET", p) if p.strip_prefix("/v1/runs/").is_some_and(|id| !id.is_empty()) => {
            respond_run_detail(&stream, shared, p.strip_prefix("/v1/runs/").unwrap())
        }
        ("POST", "/v1/diameter") => admit(stream, shared, tx, &req, Endpoint::Diameter),
        ("POST", "/v1/eccentricities") => admit(stream, shared, tx, &req, Endpoint::Eccentricities),
        ("GET" | "POST", _) => respond_error(&stream, shared, 404, "no such endpoint"),
        _ => respond_error(&stream, shared, 405, "method not allowed"),
    }
}

/// Parses a compute request body and pushes it through the admission
/// queue, shedding with `429` when full.
fn admit(stream: TcpStream, shared: &Shared, tx: &SyncSender<Job>, req: &Request, ep: Endpoint) {
    let job = match parse_job(stream, shared, req, ep) {
        Ok(job) => job,
        Err((stream, msg)) => return respond_error(&stream, shared, 400, &msg),
    };
    match tx.try_send(job) {
        Ok(()) => {
            shared.metrics.counter("serve.jobs_enqueued").inc();
            shared.metrics.gauge("serve.queue.depth").inc();
        }
        Err(TrySendError::Full(job)) => {
            shared.metrics.counter("serve.jobs_shed").inc();
            log_access(shared, &job, 429, "-", Duration::ZERO, "shed");
            let _ = write_response(
                &job.stream,
                429,
                &[("retry-after", "1".to_string())],
                "application/json",
                JsonObject::new()
                    .str("error", "admission queue full")
                    .finish()
                    .as_bytes(),
            );
        }
        Err(TrySendError::Disconnected(job)) => {
            log_access(shared, &job, 503, "-", Duration::ZERO, "shutdown");
            respond_error(&job.stream, shared, 503, "server is shutting down")
        }
    }
}

/// One structured JSONL line per compute request: the run/trace id,
/// which endpoint, response status, cache outcome, time spent queued,
/// total time since admission, and how the deadline resolved.
fn log_access(
    shared: &Shared,
    job: &Job,
    status: u16,
    cache: &str,
    queue_wait: Duration,
    deadline: &str,
) {
    let line = JsonObject::new()
        .str("type", "access")
        .str("run_id", &job.run.to_string())
        .str("endpoint", job.endpoint.as_str())
        .str("graph", &job.graph_key)
        .u64("status", u64::from(status))
        .str("cache", cache)
        .u64("queue_wait_us", queue_wait.as_micros() as u64)
        .u64("elapsed_us", job.admitted_at.elapsed().as_micros() as u64)
        .str("deadline", deadline)
        .finish();
    shared.config.access_log.write_line(&line);
}

/// Point-in-time cache occupancy gauges, refreshed on scrape and after
/// every load.
fn refresh_cache_gauges(shared: &Shared) {
    shared
        .metrics
        .gauge("serve.cache.bytes")
        .set(shared.cache.resident_bytes() as f64);
    shared
        .metrics
        .gauge("serve.cache.entries")
        .set(shared.cache.keys_lru_order().len() as f64);
}

/// Point-in-time in-flight run count, refreshed on scrape (the
/// registry is the source of truth — a cancelled run deregisters there,
/// so the gauge cannot leak the way an inc/dec pair could).
fn refresh_run_gauges(shared: &Shared) {
    shared
        .metrics
        .gauge("runs.in_flight")
        .set(shared.registry.in_flight() as f64);
}

/// Renders one in-flight run for the `/v1/runs` endpoints.
fn run_info_json(info: &RunInfo) -> String {
    let mut obj = JsonObject::new()
        .str("run_id", &info.run.to_string())
        .str("algorithm", &info.algorithm)
        .usize("n", info.n)
        .usize("m", info.m);
    obj = match &info.latest {
        None => obj.raw("latest", "null"),
        Some(s) => obj.raw(
            "latest",
            &JsonObject::new()
                .str("phase", s.phase)
                .u64("bfs_count", s.bfs_count)
                .u64("lb", u64::from(s.lb))
                .u64("ub", u64::from(s.ub))
                .u64("gap", u64::from(s.gap()))
                .usize("vertices_remaining", s.vertices_remaining)
                .u64("elapsed_nanos", s.elapsed_nanos)
                .finish(),
        ),
    };
    obj.finish()
}

/// `GET /v1/runs`: every in-flight compute run, ordered by run id.
fn respond_runs_list(stream: &TcpStream, shared: &Shared) {
    let runs = shared.registry.list();
    let mut arr = String::from("[");
    for (i, info) in runs.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&run_info_json(info));
    }
    arr.push(']');
    let body = JsonObject::new()
        .usize("in_flight", runs.len())
        .raw("runs", &arr)
        .finish();
    let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
}

/// `GET /v1/runs/{run_id}`: one in-flight run; 404 for unknown ids,
/// finished runs (deregistered), and malformed ids alike.
fn respond_run_detail(stream: &TcpStream, shared: &Shared, id: &str) {
    match RunId::from_hex(id).and_then(|run| shared.registry.get(run)) {
        Some(info) => {
            let body = run_info_json(&info);
            let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
        }
        None => respond_error(stream, shared, 404, "no such in-flight run"),
    }
}

fn parse_job(
    stream: TcpStream,
    shared: &Shared,
    req: &Request,
    endpoint: Endpoint,
) -> Result<Job, (TcpStream, String)> {
    if let Some(ct) = req.header("content-type") {
        if !ct.to_ascii_lowercase().contains("json") {
            return Err((stream, format!("unsupported content-type '{ct}'")));
        }
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Err((stream, "body is not UTF-8".into())),
    };
    let v = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return Err((stream, format!("bad JSON body: {e}"))),
    };

    let order = match v.get("order") {
        None => VertexOrder::None,
        Some(o) => match o.as_str().map(VertexOrder::parse) {
            Some(Ok(order)) => order,
            Some(Err(e)) => return Err((stream, e)),
            None => {
                return Err((
                    stream,
                    "order must be a string: \"none\", \"degree\", or \"bfs\"".into(),
                ))
            }
        },
    };
    let spec = v.get("spec").and_then(JsonValue::as_str);
    let path = v.get("path").and_then(JsonValue::as_str);
    let mut graph_key = match (spec, path) {
        (Some(s), None) => format!("spec:{s}"),
        (None, Some(p)) => format!("path:{p}"),
        (Some(_), Some(_)) => {
            return Err((stream, "give either \"spec\" or \"path\", not both".into()))
        }
        (None, None) => {
            return Err((
                stream,
                "body needs a graph reference: {\"spec\": …} or {\"path\": …}".into(),
            ))
        }
    };
    let directed = match v.get("directed") {
        None => false,
        Some(d) => match d.as_bool() {
            Some(b) => b,
            None => return Err((stream, "directed must be a boolean".into())),
        },
    };
    if directed && matches!(endpoint, Endpoint::Eccentricities) {
        return Err((stream, "directed is only supported on /v1/diameter".into()));
    }
    if order != VertexOrder::None {
        graph_key.push_str("#order=");
        graph_key.push_str(order.as_str());
    }
    if directed {
        graph_key.push_str("#directed");
    }

    let timeout = match v.get("timeout_secs") {
        None => shared.config.default_timeout,
        Some(t) => match t.as_f64() {
            Some(secs) if secs.is_finite() && secs >= 0.0 => Some(Duration::from_secs_f64(secs)),
            _ => return Err((stream, "timeout_secs must be a finite number ≥ 0".into())),
        },
    };
    // The deadline is armed here, at admission: time spent waiting in
    // the queue counts against the request's budget.
    let token = match timeout {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };

    let sleep_ms = match v.get("sleep_ms").and_then(JsonValue::as_u64) {
        Some(ms) if shared.config.allow_test_hooks => ms,
        Some(_) => return Err((stream, "sleep_ms requires --test-hooks".into())),
        None => 0,
    };

    Ok(Job {
        stream,
        endpoint,
        graph_key,
        order,
        directed,
        serial: v
            .get("serial")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        include_values: v
            .get("include_values")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        sleep_ms,
        token,
        run: RunId::fresh(),
        admitted_at: Instant::now(),
    })
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    // Pooled per-worker state: the BFS scratch arena survives across
    // jobs (cache hits on the same graph recompute allocation-free)
    // and one metrics observer feeds the shared registry.
    let mut scratch = BfsScratch::new(0);
    let observer = MetricsObserver::new(Arc::clone(&shared.metrics));
    loop {
        // Hold the receiver lock only for the pop, not the compute.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // acceptor gone and queue drained
        };
        shared.metrics.counter("serve.jobs_dequeued").inc();
        shared.metrics.gauge("serve.queue.depth").dec();
        shared.metrics.gauge("serve.workers.busy").inc();
        shared.metrics.gauge("serve.jobs.in_flight").inc();
        let queue_wait = job.admitted_at.elapsed();
        shared
            .metrics
            .histogram("serve.queue.wait")
            .record(queue_wait);
        let t0 = Instant::now();
        serve_job(shared, job, queue_wait, &mut scratch, &observer);
        shared
            .metrics
            .histogram("serve.job.duration")
            .record(t0.elapsed());
        shared.metrics.gauge("serve.jobs.in_flight").dec();
        shared.metrics.gauge("serve.workers.busy").dec();
    }
}

fn serve_job(
    shared: &Shared,
    job: Job,
    queue_wait: Duration,
    scratch: &mut BfsScratch,
    observer: &MetricsObserver,
) {
    // A deadline that expired while the job sat in the queue is
    // answered without loading or computing anything.
    if job.token.is_cancelled() {
        log_access(shared, &job, 504, "-", queue_wait, "expired_in_queue");
        return respond_deadline(shared, &job);
    }

    // Test hook: a cancellation-aware stall standing in for a long
    // compute, so integration tests can hold a worker busy for a
    // deterministic duration.
    if job.sleep_ms > 0 {
        let until = Instant::now() + Duration::from_millis(job.sleep_ms);
        while Instant::now() < until {
            if job.token.is_cancelled() {
                log_access(shared, &job, 504, "-", queue_wait, "expired_in_compute");
                return respond_deadline(shared, &job);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Strip the `#directed` / `#order=…` suffixes back off (reverse of
    // how parse_job appended them): they address the cache, not the
    // loader. The relabeling pass runs once, on miss, and its map is
    // cached with the adjacency.
    let base = job
        .graph_key
        .strip_suffix("#directed")
        .unwrap_or(&job.graph_key);
    let base = base.split_once("#order=").map_or(base, |(b, _)| b);
    let load = || {
        if job.directed {
            // Generator specs are undirected by construction and load
            // bidirected; edge-list paths keep their arc orientation.
            let g = match base.split_once(':') {
                Some(("spec", s)) => {
                    fdiam_graph::DiGraph::from_undirected(&fdiam_cli::generate_graph(s)?)
                }
                Some(("path", p)) => fdiam_cli::read_digraph(p)?,
                _ => unreachable!("keys are built in parse_job"),
            };
            return Ok(LoadedGraph::new_directed(g, job.order));
        }
        let g = match base.split_once(':') {
            Some(("spec", s)) => fdiam_cli::generate_graph(s),
            Some(("path", p)) => fdiam_cli::read_graph(p),
            _ => unreachable!("keys are built in parse_job"),
        }?;
        Ok(LoadedGraph::new(g, job.order))
    };
    let (graph, outcome) = match shared.cache.get_or_load(&job.graph_key, load) {
        Ok(found) => found,
        Err(e) => {
            shared.metrics.counter("serve.responses_400").inc();
            log_access(shared, &job, 400, "-", queue_wait, "ok");
            let _ = write_response(
                &job.stream,
                400,
                &[],
                "application/json",
                JsonObject::new().str("error", &e).finish().as_bytes(),
            );
            return;
        }
    };
    match outcome {
        CacheOutcome::Hit => shared.metrics.counter("serve.cache_hits").inc(),
        CacheOutcome::Miss => shared.metrics.counter("serve.cache_misses").inc(),
    }
    refresh_cache_gauges(shared);

    let t0 = Instant::now();
    // Tee the run's event stream into the in-flight registry: run_start
    // registers, every bounds snapshot updates the live view, run_end
    // deregisters.
    let tee = Tee(observer, &shared.registry);
    let body = match (job.endpoint, job.directed) {
        (Endpoint::Diameter, true) => compute_directed_diameter(&graph, &job, &tee),
        (Endpoint::Diameter, false) => compute_diameter(&graph, &job, scratch, &tee),
        (Endpoint::Eccentricities, _) => compute_eccentricities(&graph, &job, &tee),
    };
    match body {
        Some(obj) => {
            shared.metrics.counter("serve.responses_ok").inc();
            shared
                .metrics
                .set_label("serve.last_run_info", "run_id", &job.run.to_string());
            log_access(shared, &job, 200, outcome.as_str(), queue_wait, "ok");
            let obj = obj
                .str("run_id", &job.run.to_string())
                .str("cache", outcome.as_str())
                .f64("elapsed_ms", t0.elapsed().as_secs_f64() * 1e3);
            let _ = write_response(
                &job.stream,
                200,
                &[],
                "application/json",
                obj.finish().as_bytes(),
            );
        }
        None => {
            log_access(
                shared,
                &job,
                504,
                outcome.as_str(),
                queue_wait,
                "expired_in_compute",
            );
            respond_deadline(shared, &job)
        }
    }
}

/// Runs F-Diam under the job's token; `None` means the deadline fired.
fn compute_diameter(
    lg: &LoadedGraph,
    job: &Job,
    scratch: &mut BfsScratch,
    observer: &dyn fdiam_obs::Observer,
) -> Option<JsonObject> {
    // A relabeled graph's event stream speaks internal ids; translate
    // before anything reaches the registry, metrics, or a trace.
    let remap_storage;
    let observer: &dyn fdiam_obs::Observer = match &lg.to_original {
        Some(map) => {
            remap_storage = RemapIds::new(observer, map);
            &remap_storage
        }
        None => observer,
    };
    let g = lg.csr();
    let config = if job.serial {
        FdiamConfig::serial()
    } else {
        FdiamConfig::parallel()
    }
    .with_run_id(job.run);
    let out =
        fdiam_core::run_cancellable_with_scratch(g, &config, observer, &job.token, scratch).ok()?;
    let mut obj = JsonObject::new();
    obj = match out.result.diameter() {
        Some(d) => obj.u64("diameter", u64::from(d)),
        None => obj.raw("diameter", "null"),
    };
    obj = obj
        .u64(
            "largest_cc_diameter",
            u64::from(out.result.largest_cc_diameter),
        )
        .bool("connected", out.result.connected)
        .usize("n", g.num_vertices())
        .usize("m", g.num_undirected_edges())
        .usize("traversals", out.stats.ecc_computations);
    if let Some((s, t)) = out.diametral_pair {
        let (s, t) = (lg.original(s), lg.original(t));
        obj = obj.raw("diametral_pair", &format!("[{s},{t}]"));
    }
    Some(obj)
}

/// Directed SumSweep under the job's token; `None` means the deadline
/// fired. Infinite diameter/radius (not strongly connected / no vertex
/// reaches all) serialize as JSON `null`.
fn compute_directed_diameter(
    lg: &LoadedGraph,
    job: &Job,
    observer: &dyn fdiam_obs::Observer,
) -> Option<JsonObject> {
    let remap_storage;
    let observer: &dyn fdiam_obs::Observer = match &lg.to_original {
        Some(map) => {
            remap_storage = RemapIds::new(observer, map);
            &remap_storage
        }
        None => observer,
    };
    let g = lg.digraph();
    let r = fdiam_analytics::directed_sum_sweep_observed(g, job.run, observer, Some(&job.token))
        .ok()?;
    let mut obj = JsonObject::new()
        .bool("directed", true)
        .usize("n", g.num_vertices())
        .usize("arcs", g.num_arcs());
    let Some(r) = r else {
        // The empty graph: nothing to measure, but not a deadline.
        return Some(
            obj.raw("diameter", "null")
                .raw("radius", "null")
                .bool("strongly_connected", false)
                .usize("sccs", 0)
                .usize("traversals", 0),
        );
    };
    obj = match r.diameter {
        Some(d) => obj.u64("diameter", u64::from(d)),
        None => obj.raw("diameter", "null"),
    };
    obj = match r.radius {
        Some(rad) => obj.u64("radius", u64::from(rad)),
        None => obj.raw("radius", "null"),
    };
    obj = obj
        .bool("strongly_connected", r.strongly_connected)
        .usize("sccs", r.num_sccs)
        .usize("traversals", r.bfs_calls);
    if let Some(v) = r.diametral_vertex {
        obj = obj.u64("diametral_vertex", u64::from(lg.original(v)));
    }
    if let Some(v) = r.central_vertex {
        obj = obj.u64("central_vertex", u64::from(lg.original(v)));
    }
    Some(obj)
}

/// Takes–Kosters all-eccentricities under the job's token.
fn compute_eccentricities(
    lg: &LoadedGraph,
    job: &Job,
    observer: &dyn fdiam_obs::Observer,
) -> Option<JsonObject> {
    let remap_storage;
    let observer: &dyn fdiam_obs::Observer = match &lg.to_original {
        Some(map) => {
            remap_storage = RemapIds::new(observer, map);
            &remap_storage
        }
        None => observer,
    };
    let g = lg.csr();
    let r =
        fdiam_analytics::bounding_eccentricities_observed(g, job.run, observer, Some(&job.token))
            .ok()?;
    // Radius/diameter are order-invariant; the per-vertex array is
    // id-indexed and must leave in the input's original space.
    let ecc = &lg.original_indexing(&r.eccentricities);
    let radius = (0..g.num_vertices() as fdiam_graph::VertexId)
        .filter(|&v| g.degree(v) > 0)
        .map(|v| ecc[lg.original(v) as usize])
        .min()
        .unwrap_or(0);
    let diameter = ecc.iter().copied().max().unwrap_or(0);
    let mut obj = JsonObject::new()
        .u64("radius", u64::from(radius))
        .u64("diameter", u64::from(diameter))
        .usize("bfs_calls", r.bfs_calls)
        .usize("n", g.num_vertices())
        .usize("m", g.num_undirected_edges());
    if job.include_values {
        let mut arr = String::with_capacity(ecc.len() * 3 + 2);
        arr.push('[');
        for (i, e) in ecc.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            let _ = write!(arr, "{e}");
        }
        arr.push(']');
        obj = obj.raw("eccentricities", &arr);
    }
    Some(obj)
}

fn respond_deadline(shared: &Shared, job: &Job) {
    // A cancelled run emits run_start but never run_end, so the
    // registry needs the explicit deregister here (no-op for jobs that
    // expired before the compute registered anything).
    shared.registry.deregister(job.run);
    shared.metrics.counter("serve.responses_deadline").inc();
    let _ = write_response(
        &job.stream,
        504,
        &[],
        "application/json",
        JsonObject::new()
            .str("error", "deadline expired before the computation finished")
            .finish()
            .as_bytes(),
    );
}

fn respond_error(stream: &TcpStream, shared: &Shared, status: u16, msg: &str) {
    let name: &'static str = match status {
        400 | 413 => "serve.responses_400",
        404 | 405 => "serve.responses_404",
        _ => "serve.responses_other",
    };
    shared.metrics.counter(name).inc();
    let _ = write_response(
        stream,
        status,
        &[],
        "application/json",
        JsonObject::new().str("error", msg).finish().as_bytes(),
    );
}

fn respond_healthz(stream: &TcpStream, shared: &Shared) {
    let body = JsonObject::new()
        .str("status", "ok")
        .usize("workers", shared.config.workers)
        .usize("queue_depth", shared.config.queue_depth)
        .usize("cache_bytes", shared.config.cache_bytes)
        .usize("cache_resident_bytes", shared.cache.resident_bytes())
        .f64("uptime_secs", shared.started.elapsed().as_secs_f64())
        .finish();
    let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
}
