//! # fdiam-serve
//!
//! A dependency-free HTTP/1.1 JSON service answering diameter and
//! eccentricity queries on demand — the paper's thesis (§1, §5) that
//! exact diameters are now cheap enough to serve interactively, turned
//! into a process. Built on `std::net` and the workspace crates only,
//! matching the dependency-free precedent of `fdiam-obs`.
//!
//! ## Endpoints
//!
//! | method & path | body | answer |
//! |---|---|---|
//! | `POST /v1/diameter` | `{"spec": …}`, `{"path": …}`, or `{"graph": name}` | exact diameter via F-Diam |
//! | `POST /v1/eccentricities` | same | radius/diameter/all-ecc via Takes–Kosters |
//! | `POST /v1/batch` | graph reference + `"queries": […]` | many ecc/diameter answers in one pass |
//! | `PUT /v1/graphs/{name}` | graph reference (+ `pin`, `preload`) | register a named graph |
//! | `GET /v1/graphs` | — | all named graphs with residency + per-name stats |
//! | `GET /v1/graphs/{name}` | — | one named graph (404 if unknown) |
//! | `DELETE /v1/graphs/{name}` | — | unregister (and evict when unreferenced) |
//! | `GET /v1/runs` | — | all in-flight compute runs with their latest bounds snapshot |
//! | `GET /v1/runs/{run_id}` | — | one in-flight run (404 once it finishes) |
//! | `GET /v1/debug/flight` | — | flight-recorder ring dump (fdiam-trace JSONL) |
//! | `GET /v1/debug/slow` | — | tail-sampled slow/deadline captures in the spool |
//! | `GET /v1/debug/slow/{name}` | — | one capture's JSONL (404 if evicted) |
//! | `GET /healthz` | — | liveness + configuration |
//! | `GET /metrics` | — | Prometheus 0.0.4 text exposition |
//! | `GET /metrics?format=summary` | — | legacy [`MetricsRegistry`] summary (text) |
//!
//! Optional body fields: `timeout_secs` (per-request deadline,
//! overrides the server default), `serial` (run the sequential
//! algorithm), `include_values` (eccentricities endpoint: return the
//! full per-vertex array), `order` (load-time vertex relabeling:
//! `"none"`, `"degree"`, or `"bfs"` — a cache-locality hint; every id
//! in the response and the event stream stays in the input's original
//! space), `directed` (diameter endpoint: load the input as a digraph
//! — edge-list `u v` lines stay one-way arcs — and answer with the
//! directed SumSweep; `diameter`/`radius` are `null` when infinite),
//! `anytime` (diameter/eccentricities: a deadline expiry answers `200`
//! with the run's last *certified* `[lb, ub]` bounds instead of `504`
//! — see below). Directed runs publish the same bounds-snapshot
//! lifecycle, so they are watchable through `GET /v1/runs` like any
//! other run.
//!
//! ## Serving real traffic
//!
//! Three mechanisms turn the single-shot request loop into something
//! that survives production traffic shapes:
//!
//! - **Named graphs** ([`GraphDirectory`]): `PUT /v1/graphs/{name}`
//!   binds a short name to a graph reference + load parameters,
//!   optionally preloading it and **pinning** the resident entry
//!   against LRU eviction. Compute requests then say
//!   `{"graph": "name"}`.
//! - **Request coalescing**: identical concurrent computations (same
//!   cache key × endpoint × parameters) fan in to one run — one worker
//!   leads, late arrivals park as waiters and receive byte-identical
//!   responses (sharing the leader's `run_id`) when it finishes. A
//!   thundering herd on a cold cache costs one BFS campaign, not N.
//! - **Anytime bounds**: F-Diam's bounds are certified at every BFS, so
//!   a deadline is a *degradation*, not a failure. With
//!   `"anytime": true`, expiry returns `200` with the last certified
//!   `{lb, ub, gap, bfs_count}` snapshot (the run's `"cancelled"`
//!   handoff) — `504` only when the deadline fired before anything was
//!   proven.
//!
//! `POST /v1/batch` amortizes many small queries (per-source
//! eccentricities, the diameter) over one graph access and one scratch
//! arena, packing eccentricity sources 64-at-a-time into bit-parallel
//! BFS lanes.
//!
//! ## Architecture
//!
//! One acceptor thread parses requests and answers `GET`s inline;
//! compute jobs go through a **bounded admission queue** to a fixed
//! pool of worker threads. A full queue sheds load immediately with
//! `429` + `Retry-After` instead of building an invisible backlog.
//! Each job carries a [`CancelToken`] armed with its deadline *at
//! admission time* — queue wait counts against the budget. Workers
//! check the token at dequeue (an already-expired job is answered
//! `504` without touching the graph) and thread it into the compute
//! kernels, which poll it at every BFS level barrier, so expiry stops
//! the actual computation, not just the response. Loaded graphs live
//! in a bytes-bounded LRU [`GraphCache`]; each worker keeps a pooled
//! [`BfsScratch`] arena, so a cache hit computes with zero setup
//! allocation. [`Server::shutdown`] stops accepting, then **drains**:
//! queued and in-flight jobs complete and every thread is joined — the
//! same no-detached-threads discipline as
//! [`run_concurrent_with_timeout`](fdiam_core::run_concurrent_with_timeout).
//!
//! ## Flight recording and forensics
//!
//! Every worker tees its run's event stream into an always-on
//! [`FlightRecorder`] — a bounded, per-thread-sharded ring of recent
//! events with drop-oldest semantics. `GET /v1/debug/flight` dumps the
//! merged ring as fdiam-trace-compatible JSONL (seq-ordered per shard,
//! with explicit `dropped` gap markers). Requests that die at their
//! deadline or finish past `--slow-threshold` persist their event
//! slice to a bounded on-disk spool (`GET /v1/debug/slow`,
//! `fdiam_flight_captures_total{reason=…}`), and `--post-mortem FILE`
//! installs a process panic hook that snapshots the ring plus the
//! in-flight run registry before the unwind proceeds. DESIGN.md §16
//! walks through reading all three artifacts.

mod cache;
mod graphs;
mod http;
mod spool;

pub use cache::{CacheKey, CacheOutcome, CachedTopology, GraphCache, LoadedGraph};
pub use graphs::{GraphDirectory, NamedGraph};
pub use spool::{Spool, SpoolEntry};

use fdiam_bfs::BfsScratch;
use fdiam_core::FdiamConfig;
use fdiam_graph::{VertexId, VertexOrder};
use fdiam_obs::json::{self, JsonObject, JsonValue};
use fdiam_obs::{
    build_info, register_post_mortem, CancelToken, FlightConfig, FlightRecorder, MetricsObserver,
    MetricsRegistry, PostMortemGuard, RemapIds, RunId, RunInfo, RunRegistry, Tee,
    PROMETHEUS_CONTENT_TYPE,
};
use http::{read_request, write_response, HttpError, Request};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Destination of the per-request JSONL access log. Cheap to clone
/// (handles share the sink); disabled by default so embedded test
/// servers stay silent — the `fdiam-serve` binary logs to stderr.
#[derive(Clone, Default)]
pub struct AccessLog(Option<Arc<Mutex<Box<dyn std::io::Write + Send>>>>);

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "AccessLog(enabled)"
        } else {
            "AccessLog(disabled)"
        })
    }
}

impl AccessLog {
    /// No access log (the `Default`).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// One JSONL line per request to stderr.
    pub fn stderr() -> Self {
        Self::to_writer(Box::new(std::io::stderr()))
    }

    /// One JSONL line per request to an arbitrary sink.
    pub fn to_writer(w: Box<dyn std::io::Write + Send>) -> Self {
        Self(Some(Arc::new(Mutex::new(w))))
    }

    /// An in-memory sink plus a handle to read it back — for tests
    /// asserting on access-log contents.
    pub fn buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&buf);
        (Self::to_writer(Box::new(SharedBuf(sink))), buf)
    }

    fn write_line(&self, line: &str) {
        if let Some(w) = &self.0 {
            let mut w = w.lock().unwrap();
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

/// `Write` adapter over the shared buffer handed out by
/// [`AccessLog::buffer`].
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Tunables for [`Server::bind`]. `Default` suits tests and small
/// deployments; `fdiam-serve --help` documents the CLI mapping.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Compute worker threads (each owns a pooled scratch arena).
    pub workers: usize,
    /// Admission queue depth; beyond it requests get `429`.
    pub queue_depth: usize,
    /// Byte budget of the graph LRU cache.
    pub cache_bytes: usize,
    /// Deadline applied when a request doesn't carry `timeout_secs`.
    pub default_timeout: Option<Duration>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Honor the `sleep_ms` and `panic` test hooks (integration tests
    /// use them to hold a worker busy or kill one deterministically).
    /// Off in production.
    pub allow_test_hooks: bool,
    /// Per-request JSONL access log sink (disabled by default).
    pub access_log: AccessLog,
    /// Sizing/sampling of the always-on flight recorder behind
    /// `GET /v1/debug/flight`.
    pub flight: FlightConfig,
    /// Latency (admission to response) above which a finished request's
    /// flight slice is tail-sampled into the spool. `None` captures
    /// only deadline/cancel outcomes.
    pub slow_threshold: Option<Duration>,
    /// Directory of the bounded on-disk capture spool behind
    /// `GET /v1/debug/slow`. `None` disables tail sampling entirely.
    pub spool_dir: Option<PathBuf>,
    /// Captures retained in the spool (oldest evicted beyond it).
    pub spool_max_entries: usize,
    /// Where the process panic hook writes its post-mortem (ring dump
    /// plus in-flight run snapshot). `None` installs no hook.
    pub post_mortem_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            cache_bytes: 256 << 20,
            default_timeout: None,
            max_body_bytes: 1 << 20,
            allow_test_hooks: false,
            access_log: AccessLog::disabled(),
            flight: FlightConfig::default(),
            slow_threshold: None,
            spool_dir: None,
            spool_max_entries: 32,
            post_mortem_path: None,
        }
    }
}

/// Which compute endpoint a job came through.
#[derive(Clone, Copy)]
enum Endpoint {
    Diameter,
    Eccentricities,
    Batch,
}

impl Endpoint {
    fn as_str(self) -> &'static str {
        match self {
            Endpoint::Diameter => "diameter",
            Endpoint::Eccentricities => "eccentricities",
            Endpoint::Batch => "batch",
        }
    }
}

/// One sub-query of a `POST /v1/batch` request.
#[derive(Clone, Copy)]
enum BatchQuery {
    /// Eccentricity of one source vertex (original-id space).
    Ecc { source: VertexId },
    /// The exact diameter (computed once however many times it is
    /// asked).
    Diameter,
}

/// A parsed, admitted compute request.
struct Job {
    stream: TcpStream,
    endpoint: Endpoint,
    /// Structured cache identity: graph reference + load parameters.
    key: CacheKey,
    /// The named-graph entry this request was routed through, when the
    /// body said `{"graph": name}` — carries per-name stats and the
    /// pin bit to reinstate on reload.
    named: Option<Arc<NamedGraph>>,
    serial: bool,
    include_values: bool,
    /// Deadline expiry answers `200` with the last certified bounds
    /// snapshot instead of `504`.
    anytime: bool,
    /// Sub-queries of a `/v1/batch` request (empty otherwise).
    queries: Vec<BatchQuery>,
    sleep_ms: u64,
    /// Test hook: panic in the worker after registering the run, so
    /// post-mortem coverage can exercise a real dying worker.
    panic_in_worker: bool,
    token: CancelToken,
    /// Trace id minted at admission; the compute run, the access-log
    /// line, the response body, and the metrics label all carry it.
    /// Coalesced waiters answer with the *leader's* run id instead.
    run: RunId,
    /// When the request was admitted — queue wait is measured from
    /// here to dequeue.
    admitted_at: Instant,
}

/// Identity of a coalescable computation: two jobs with equal flight
/// keys provably produce the same response body, so late arrivals can
/// share the leader's run instead of repeating it. Batch jobs never
/// coalesce (their query lists vary); `anytime`/`timeout_secs` are
/// deliberately *not* part of the key — they shape the error path, not
/// the computation, and [`deliver`] renders deadline responses
/// per-recipient.
#[derive(Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    key: CacheKey,
    endpoint: &'static str,
    serial: bool,
    include_values: bool,
}

impl FlightKey {
    /// `None` for jobs that must not coalesce.
    fn of(job: &Job) -> Option<FlightKey> {
        match job.endpoint {
            Endpoint::Batch => None,
            ep => Some(FlightKey {
                key: job.key.clone(),
                endpoint: ep.as_str(),
                serial: job.serial,
                include_values: job.include_values,
            }),
        }
    }
}

/// One in-flight coalesced computation: the requests parked on it
/// (with their measured queue waits, for their access-log lines). The
/// leader holds the flight's identity in its own [`Job`].
struct Flight {
    waiters: Vec<(Job, Duration)>,
}

struct Shared {
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    cache: GraphCache,
    /// Named graphs behind `PUT/GET/DELETE /v1/graphs/{name}`.
    graphs: GraphDirectory,
    /// In-flight coalesced computations, keyed by what they compute.
    inflight: Mutex<HashMap<FlightKey, Flight>>,
    /// Live view of in-flight compute runs: workers tee their run's
    /// event stream into it, `GET /v1/runs` reads it.
    registry: RunRegistry,
    /// The always-on black box: every worker tees its run's event
    /// stream into this bounded ring; `GET /v1/debug/flight` dumps it,
    /// the tail sampler slices it, the panic hook snapshots it.
    flight: Arc<FlightRecorder>,
    /// Bounded on-disk spool of tail-sampled captures (`None` when
    /// tail sampling is disabled).
    spool: Option<Spool>,
    /// EWMA of job wall time in nanoseconds (zero until the first job
    /// finishes) — the drain-rate estimate behind `Retry-After`.
    ewma_job_nanos: AtomicU64,
    shutting_down: AtomicBool,
    started: Instant,
}

/// A running service. Dropping it without calling
/// [`Server::shutdown`] aborts the process-exit path only; tests and
/// embedders should shut down explicitly to get the drain guarantee.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Keeps the process panic hook pointed at this server's flight
    /// recorder for the server's lifetime (deregisters on drop).
    _post_mortem: Option<PostMortemGuard>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the acceptor and worker threads.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let spool = match config.spool_dir.clone() {
            Some(dir) => Some(Spool::open(dir, config.spool_max_entries)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            metrics: Arc::new(MetricsRegistry::new()),
            cache: GraphCache::new(config.cache_bytes),
            graphs: GraphDirectory::new(),
            inflight: Mutex::new(HashMap::new()),
            registry: RunRegistry::new(),
            flight: Arc::new(FlightRecorder::new(config.flight)),
            spool,
            ewma_job_nanos: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            started: Instant::now(),
            config,
        });
        // Register the point-in-time gauges and the coalescing counter
        // at bind so `/metrics` exposes them before any traffic.
        shared.metrics.gauge("runs.in_flight").set(0.0);
        shared.metrics.gauge("registry.graphs").set(0.0);
        shared.metrics.counter("coalesced_requests").add(0);
        shared
            .metrics
            .labeled_counter("flight.captures", "reason", "slow")
            .add(0);
        shared
            .metrics
            .labeled_counter("flight.captures", "reason", "deadline")
            .add(0);
        let bi = build_info();
        shared.metrics.set_info(
            "build_info",
            &[
                ("rev", bi.rev),
                ("rustc", bi.rustc),
                ("profile", bi.profile),
            ],
        );

        // Panic hook: if any thread panics, snapshot the ring plus the
        // in-flight run registry to the post-mortem file before the
        // unwind proceeds.
        let post_mortem = shared.config.post_mortem_path.clone().map(|path| {
            let hook_shared = Arc::clone(&shared);
            register_post_mortem(&shared.flight, path, move || {
                hook_shared
                    .registry
                    .list()
                    .iter()
                    .map(|info| {
                        JsonObject::new()
                            .str("type", "in_flight_run")
                            .str("run_id", &info.run.to_string())
                            .str("algorithm", &info.algorithm)
                            .usize("n", info.n)
                            .usize("m", info.m)
                            .finish()
                    })
                    .collect()
            })
        });

        let (tx, rx) = mpsc::sync_channel::<Job>(shared.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("fdiam-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fdiam-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, tx))
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            _post_mortem: post_mortem,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry behind `GET /metrics`, for embedders.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The in-flight run registry behind `GET /v1/runs`, for embedders.
    pub fn runs(&self) -> &RunRegistry {
        &self.shared.registry
    }

    /// The named-graph directory behind `/v1/graphs`, for embedders.
    pub fn graphs(&self) -> &GraphDirectory {
        &self.shared.graphs
    }

    /// The flight recorder behind `GET /v1/debug/flight`, for embedders.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.shared.flight
    }

    /// Graceful shutdown: stop accepting, let queued and in-flight
    /// jobs finish, join every thread. Returns once the last response
    /// has been written.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor dropped the job sender on exit; workers drain
        // the queue and then see the channel disconnect.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks until the acceptor exits (it never does unless the
    /// process is killed) — the run loop of the `fdiam-serve` binary.
    pub fn serve_forever(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, tx: SyncSender<Job>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A stuck peer must not wedge the single acceptor forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        handle_connection(stream, shared, &tx);
    }
    // Dropping `tx` here lets workers drain the queue and exit.
}

fn handle_connection(stream: TcpStream, shared: &Shared, tx: &SyncSender<Job>) {
    shared.metrics.counter("serve.requests").inc();
    let req = match read_request(&stream, shared.config.max_body_bytes) {
        Ok(r) => r,
        Err(HttpError::Malformed(msg)) => return respond_error(&stream, shared, 400, &msg),
        Err(HttpError::BodyTooLarge { limit }) => {
            return respond_error(&stream, shared, 413, &format!("body exceeds {limit} bytes"))
        }
        Err(HttpError::LengthRequired) => {
            return respond_error(
                &stream,
                shared,
                411,
                "POST/PUT requests must declare Content-Length",
            )
        }
        Err(HttpError::Io(_)) => return, // peer vanished; nothing to say
    };

    // Split the query string off the path so `/metrics?format=summary`
    // still routes to `/metrics`.
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => respond_healthz(&stream, shared),
        ("GET", "/metrics") => {
            // Prometheus 0.0.4 text exposition by default; the legacy
            // human-readable summary stays behind `?format=summary`.
            let summary = query.split('&').any(|kv| kv == "format=summary");
            let (text, content_type) = if summary {
                (shared.metrics.render_summary(), "text/plain; charset=utf-8")
            } else {
                refresh_cache_gauges(shared);
                refresh_run_gauges(shared);
                (shared.metrics.render_prometheus(), PROMETHEUS_CONTENT_TYPE)
            };
            let _ = write_response(&stream, 200, &[], content_type, text.as_bytes());
        }
        ("GET", "/v1/runs") => respond_runs_list(&stream, shared),
        ("GET", "/v1/debug/flight") => {
            let _ = write_response(
                &stream,
                200,
                &[],
                "application/jsonl",
                shared.flight.dump_jsonl().as_bytes(),
            );
        }
        ("GET", "/v1/debug/slow") => respond_slow_list(&stream, shared),
        ("GET", p)
            if p.strip_prefix("/v1/debug/slow/")
                .is_some_and(|n| !n.is_empty()) =>
        {
            respond_slow_detail(&stream, shared, p.strip_prefix("/v1/debug/slow/").unwrap())
        }
        ("GET", p) if p.strip_prefix("/v1/runs/").is_some_and(|id| !id.is_empty()) => {
            respond_run_detail(&stream, shared, p.strip_prefix("/v1/runs/").unwrap())
        }
        ("GET", "/v1/graphs") => respond_graphs_list(&stream, shared),
        ("GET", p) if p.strip_prefix("/v1/graphs/").is_some_and(|n| !n.is_empty()) => {
            respond_graph_detail(&stream, shared, p.strip_prefix("/v1/graphs/").unwrap())
        }
        ("PUT", p) if p.strip_prefix("/v1/graphs/").is_some_and(|n| !n.is_empty()) => {
            respond_graph_put(
                &stream,
                shared,
                p.strip_prefix("/v1/graphs/").unwrap(),
                &req,
            )
        }
        ("DELETE", p) if p.strip_prefix("/v1/graphs/").is_some_and(|n| !n.is_empty()) => {
            respond_graph_delete(&stream, shared, p.strip_prefix("/v1/graphs/").unwrap())
        }
        ("POST", "/v1/diameter") => admit(stream, shared, tx, &req, Endpoint::Diameter),
        ("POST", "/v1/eccentricities") => admit(stream, shared, tx, &req, Endpoint::Eccentricities),
        ("POST", "/v1/batch") => admit(stream, shared, tx, &req, Endpoint::Batch),
        ("GET" | "POST", _) => respond_error(&stream, shared, 404, "no such endpoint"),
        _ => respond_error(&stream, shared, 405, "method not allowed"),
    }
}

/// Parses a compute request body and pushes it through the admission
/// queue, shedding with `429` when full.
fn admit(stream: TcpStream, shared: &Shared, tx: &SyncSender<Job>, req: &Request, ep: Endpoint) {
    let job = match parse_job(stream, shared, req, ep) {
        Ok(job) => job,
        Err((stream, msg)) => return respond_error(&stream, shared, 400, &msg),
    };
    match tx.try_send(job) {
        Ok(()) => {
            shared.metrics.counter("serve.jobs_enqueued").inc();
            shared.metrics.gauge("serve.queue.depth").inc();
        }
        Err(TrySendError::Full(job)) => {
            shared.metrics.counter("serve.jobs_shed").inc();
            log_access(shared, &job, job.run, 429, "-", Duration::ZERO, "shed");
            let _ = write_response(
                &job.stream,
                429,
                &[("retry-after", retry_after_secs(shared).to_string())],
                "application/json",
                JsonObject::new()
                    .str("error", "admission queue full")
                    .finish()
                    .as_bytes(),
            );
        }
        Err(TrySendError::Disconnected(job)) => {
            log_access(shared, &job, job.run, 503, "-", Duration::ZERO, "shutdown");
            respond_error(&job.stream, shared, 503, "server is shutting down")
        }
    }
}

/// `Retry-After` seconds for a shed request, derived from the observed
/// drain rate: a full queue of `queue_depth` jobs, each costing the
/// EWMA job duration, drains across `workers` threads — come back once
/// a slot has likely opened. Clamped to `[1, 60]`; `1` before any job
/// has finished (nothing observed yet).
fn retry_after_secs(shared: &Shared) -> u64 {
    let ewma = shared.ewma_job_nanos.load(Ordering::Relaxed);
    if ewma == 0 {
        return 1;
    }
    let backlog_nanos =
        (shared.config.queue_depth as u64 + 1).saturating_mul(ewma) / shared.config.workers as u64;
    backlog_nanos.div_ceil(1_000_000_000).clamp(1, 60)
}

/// One structured JSONL line per compute request: the run/trace id
/// (the *leader's* for coalesced waiters — matching the body they
/// received), which endpoint, response status, cache outcome, time
/// spent queued, total time since admission, and how the deadline
/// resolved.
#[allow(clippy::too_many_arguments)]
fn log_access(
    shared: &Shared,
    job: &Job,
    run: RunId,
    status: u16,
    cache: &str,
    queue_wait: Duration,
    deadline: &str,
) {
    let line = JsonObject::new()
        .str("type", "access")
        .str("run_id", &run.to_string())
        .str("endpoint", job.endpoint.as_str())
        .str("graph", &job.key.to_string())
        .u64("status", u64::from(status))
        .str("cache", cache)
        .u64("queue_wait_us", queue_wait.as_micros() as u64)
        .u64("elapsed_us", job.admitted_at.elapsed().as_micros() as u64)
        .str("deadline", deadline)
        .finish();
    shared.config.access_log.write_line(&line);
}

/// Point-in-time cache occupancy gauges, refreshed on scrape and after
/// every load.
fn refresh_cache_gauges(shared: &Shared) {
    shared
        .metrics
        .gauge("serve.cache.bytes")
        .set(shared.cache.resident_bytes() as f64);
    shared
        .metrics
        .gauge("serve.cache.entries")
        .set(shared.cache.keys_lru_order().len() as f64);
}

/// Point-in-time in-flight run count, refreshed on scrape (the
/// registry is the source of truth — a cancelled run deregisters there,
/// so the gauge cannot leak the way an inc/dec pair could).
fn refresh_run_gauges(shared: &Shared) {
    shared
        .metrics
        .gauge("runs.in_flight")
        .set(shared.registry.in_flight() as f64);
    shared
        .metrics
        .gauge("registry.graphs")
        .set(shared.graphs.len() as f64);
}

/// Renders one in-flight run for the `/v1/runs` endpoints.
fn run_info_json(info: &RunInfo) -> String {
    let mut obj = JsonObject::new()
        .str("run_id", &info.run.to_string())
        .str("algorithm", &info.algorithm)
        .usize("n", info.n)
        .usize("m", info.m);
    obj = match &info.latest {
        None => obj.raw("latest", "null"),
        Some(s) => obj.raw(
            "latest",
            &JsonObject::new()
                .str("phase", s.phase)
                .u64("bfs_count", s.bfs_count)
                .u64("lb", u64::from(s.lb))
                .u64("ub", u64::from(s.ub))
                .u64("gap", u64::from(s.gap()))
                .usize("vertices_remaining", s.vertices_remaining)
                .u64("elapsed_nanos", s.elapsed_nanos)
                .finish(),
        ),
    };
    obj.finish()
}

/// `GET /v1/runs`: every in-flight compute run, ordered by run id.
fn respond_runs_list(stream: &TcpStream, shared: &Shared) {
    let runs = shared.registry.list();
    let mut arr = String::from("[");
    for (i, info) in runs.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&run_info_json(info));
    }
    arr.push(']');
    let body = JsonObject::new()
        .usize("in_flight", runs.len())
        .raw("runs", &arr)
        .finish();
    let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
}

/// `GET /v1/runs/{run_id}`: one in-flight run; 404 for unknown ids,
/// finished runs (deregistered), and malformed ids alike.
fn respond_run_detail(stream: &TcpStream, shared: &Shared, id: &str) {
    match RunId::from_hex(id).and_then(|run| shared.registry.get(run)) {
        Some(info) => {
            let body = run_info_json(&info);
            let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
        }
        None => respond_error(stream, shared, 404, "no such in-flight run"),
    }
}

/// `GET /v1/debug/slow`: every retained tail-sampled capture, newest
/// first. Always 200 — with tail sampling disabled the listing is
/// empty and says so.
fn respond_slow_list(stream: &TcpStream, shared: &Shared) {
    let (enabled, entries) = match &shared.spool {
        Some(spool) => (true, spool.list()),
        None => (false, Vec::new()),
    };
    let mut arr = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(
            &JsonObject::new()
                .str("name", &e.name)
                .str("run_id", &e.run_id)
                .str("endpoint", &e.endpoint)
                .u64("status", e.status)
                .str("reason", &e.reason)
                .u64("elapsed_us", e.elapsed_us)
                .u64("bytes", e.bytes)
                .finish(),
        );
    }
    arr.push(']');
    let body = JsonObject::new()
        .bool("enabled", enabled)
        .usize("count", entries.len())
        .raw("captures", &arr)
        .finish();
    let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
}

/// `GET /v1/debug/slow/{name}`: one capture's JSONL, ready to pipe into
/// `fdiam-trace flight`.
fn respond_slow_detail(stream: &TcpStream, shared: &Shared, name: &str) {
    match shared.spool.as_ref().and_then(|s| s.read(name)) {
        Some(text) => {
            let _ = write_response(stream, 200, &[], "application/jsonl", text.as_bytes());
        }
        None => respond_error(stream, shared, 404, "no such capture"),
    }
}

/// Renders one named graph with its cache residency and per-name stats.
fn named_graph_json(shared: &Shared, g: &NamedGraph) -> String {
    let bytes = shared.cache.entry_bytes(&g.key);
    let (requests, hits, misses) = g.counts();
    let mut obj = JsonObject::new()
        .str("name", &g.name)
        .str("reference", &g.key.reference)
        .str("order", g.key.order.as_str())
        .bool("directed", g.key.directed)
        .bool("pinned", g.pinned())
        .bool("resident", bytes.is_some());
    obj = match bytes {
        Some(b) => obj.usize("resident_bytes", b),
        None => obj.raw("resident_bytes", "null"),
    };
    obj.u64("requests", requests)
        .u64("hits", hits)
        .u64("misses", misses)
        .finish()
}

/// `GET /v1/graphs`: every registered name, lexicographic order.
fn respond_graphs_list(stream: &TcpStream, shared: &Shared) {
    let graphs = shared.graphs.list();
    let mut arr = String::from("[");
    for (i, g) in graphs.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&named_graph_json(shared, g));
    }
    arr.push(']');
    let body = JsonObject::new()
        .usize("count", graphs.len())
        .raw("graphs", &arr)
        .finish();
    let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
}

/// `GET /v1/graphs/{name}`: one registered name or 404.
fn respond_graph_detail(stream: &TcpStream, shared: &Shared, name: &str) {
    match shared.graphs.get(name) {
        Some(g) => {
            let body = named_graph_json(shared, &g);
            let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
        }
        None => respond_error(stream, shared, 404, "no such named graph"),
    }
}

/// `PUT /v1/graphs/{name}`: register (201) or replace (200) a named
/// graph. By default the graph is **preloaded** synchronously — the
/// registration doesn't succeed until the graph actually loads, so a
/// typo'd path fails here (400) instead of on the first query;
/// `"preload": false` skips that for lazily-loaded entries.
/// `"pin": true` exempts the resident entry from LRU eviction.
/// Registration is a control-plane operation and runs inline on the
/// acceptor; data-plane requests queue behind the load, which is the
/// point — they'd only race it to a cold cache.
fn respond_graph_put(stream: &TcpStream, shared: &Shared, name: &str, req: &Request) {
    if !graphs::valid_name(name) {
        return respond_error(
            stream,
            shared,
            400,
            "graph names are 1-64 chars of [A-Za-z0-9_.-]",
        );
    }
    let v = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|s| json::parse(s).map_err(|e| format!("bad JSON body: {e}")))
    {
        Ok(v) => v,
        Err(e) => return respond_error(stream, shared, 400, &e),
    };
    let key = match parse_cache_key(&v) {
        Ok(Some(key)) => key,
        Ok(None) => {
            return respond_error(
                stream,
                shared,
                400,
                "body needs a graph reference: {\"spec\": …} or {\"path\": …}",
            )
        }
        Err(e) => return respond_error(stream, shared, 400, &e),
    };
    let pin = v.get("pin").and_then(JsonValue::as_bool).unwrap_or(false);
    let preload = v
        .get("preload")
        .and_then(JsonValue::as_bool)
        .unwrap_or(true);

    if preload {
        if let Err(e) = shared.cache.get_or_load(&key, || load_graph(&key)) {
            // A reference that doesn't load never enters the directory.
            return respond_error(stream, shared, 400, &e);
        }
    }
    shared.cache.pin(&key, pin);
    let (entry, replaced) = shared.graphs.put(name, key, pin);
    // 201 for a fresh name, 200 for an overwrite.
    let status = if replaced.is_none() { 201 } else { 200 };
    // A replaced registration may strand its old key pinned; release
    // the pin unless some other name still wants it held.
    if let Some(old) = replaced {
        if old.key != entry.key && old.pinned() && !shared.graphs.references(&old.key) {
            shared.cache.pin(&old.key, false);
        }
    }
    refresh_run_gauges(shared);
    let body = named_graph_json(shared, &entry);
    let _ = write_response(stream, status, &[], "application/json", body.as_bytes());
}

/// `DELETE /v1/graphs/{name}`: unregister. The resident cache entry is
/// unpinned and evicted when no other name references its key —
/// in-flight jobs holding the `Arc` finish unaffected.
fn respond_graph_delete(stream: &TcpStream, shared: &Shared, name: &str) {
    match shared.graphs.remove(name) {
        Some(g) => {
            let evicted = if shared.graphs.references(&g.key) {
                false
            } else {
                shared.cache.remove(&g.key)
            };
            refresh_run_gauges(shared);
            refresh_cache_gauges(shared);
            let body = JsonObject::new()
                .str("removed", name)
                .bool("evicted", evicted)
                .finish();
            let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
        }
        None => respond_error(stream, shared, 404, "no such named graph"),
    }
}

/// Parses the `spec`/`path`/`order`/`directed` fields shared by compute
/// requests and `PUT /v1/graphs` into a [`CacheKey`]. `Ok(None)` when
/// no reference is present (the caller decides whether that's an error
/// — compute requests may say `"graph"` instead).
fn parse_cache_key(v: &JsonValue) -> Result<Option<CacheKey>, String> {
    let order = match v.get("order") {
        None => VertexOrder::None,
        Some(o) => match o.as_str().map(VertexOrder::parse) {
            Some(Ok(order)) => order,
            Some(Err(e)) => return Err(e),
            None => return Err("order must be a string: \"none\", \"degree\", or \"bfs\"".into()),
        },
    };
    let directed = match v.get("directed") {
        None => false,
        Some(d) => match d.as_bool() {
            Some(b) => b,
            None => return Err("directed must be a boolean".into()),
        },
    };
    let spec = v.get("spec").and_then(JsonValue::as_str);
    let path = v.get("path").and_then(JsonValue::as_str);
    let reference = match (spec, path) {
        (Some(s), None) => format!("spec:{s}"),
        (None, Some(p)) => format!("path:{p}"),
        (Some(_), Some(_)) => return Err("give either \"spec\" or \"path\", not both".into()),
        (None, None) => return Ok(None),
    };
    Ok(Some(CacheKey::new(reference, order, directed)))
}

fn parse_job(
    stream: TcpStream,
    shared: &Shared,
    req: &Request,
    endpoint: Endpoint,
) -> Result<Job, (TcpStream, String)> {
    if let Some(ct) = req.header("content-type") {
        if !ct.to_ascii_lowercase().contains("json") {
            return Err((stream, format!("unsupported content-type '{ct}'")));
        }
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Err((stream, "body is not UTF-8".into())),
    };
    let v = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return Err((stream, format!("bad JSON body: {e}"))),
    };

    // Resolve the graph reference: an inline `spec`/`path` (plus
    // `order`/`directed`), or a registered `graph` name — in which case
    // the name's load parameters apply unless the request overrides
    // them.
    let inline = match parse_cache_key(&v) {
        Ok(k) => k,
        Err(e) => return Err((stream, e)),
    };
    let graph_name = v.get("graph").and_then(JsonValue::as_str);
    let (key, named) = match (graph_name, inline) {
        (Some(_), Some(_)) => {
            return Err((
                stream,
                "give either \"graph\" or \"spec\"/\"path\", not both".into(),
            ))
        }
        (None, Some(key)) => (key, None),
        (None, None) => {
            return Err((
                stream,
                "body needs a graph reference: {\"spec\": …}, {\"path\": …}, or {\"graph\": name}"
                    .into(),
            ))
        }
        (Some(name), None) => {
            let Some(named) = shared.graphs.get(name) else {
                return Err((
                    stream,
                    format!("no such named graph '{name}' (register with PUT /v1/graphs/{name})"),
                ));
            };
            let mut key = named.key.clone();
            // Request-level overrides fork the cache key off the
            // registered defaults.
            if let Some(o) = v.get("order").and_then(JsonValue::as_str) {
                match VertexOrder::parse(o) {
                    Ok(order) => key.order = order,
                    Err(e) => return Err((stream, e)),
                }
            }
            if let Some(d) = v.get("directed") {
                match d.as_bool() {
                    Some(b) => key.directed = b,
                    None => return Err((stream, "directed must be a boolean".into())),
                }
            }
            (key, Some(named))
        }
    };
    if key.directed && !matches!(endpoint, Endpoint::Diameter) {
        return Err((stream, "directed is only supported on /v1/diameter".into()));
    }

    let anytime = match v.get("anytime") {
        None => false,
        Some(a) => match a.as_bool() {
            Some(b) => b,
            None => return Err((stream, "anytime must be a boolean".into())),
        },
    };
    if anytime && matches!(endpoint, Endpoint::Batch) {
        return Err((
            stream,
            "anytime is not supported on /v1/batch (partial batches have no certified bounds)"
                .into(),
        ));
    }

    let queries = match (endpoint, v.get("queries")) {
        (Endpoint::Batch, Some(JsonValue::Array(items))) => {
            if items.is_empty() {
                return Err((stream, "queries must be a non-empty array".into()));
            }
            if items.len() > 4096 {
                return Err((stream, "at most 4096 queries per batch".into()));
            }
            let mut queries = Vec::with_capacity(items.len());
            for q in items {
                match q.get("type").and_then(JsonValue::as_str) {
                    Some("ecc" | "eccentricity") => {
                        let Some(source) = q.get("source").and_then(JsonValue::as_u64) else {
                            return Err((
                                stream,
                                "ecc queries need an integer \"source\" vertex".into(),
                            ));
                        };
                        if source > u64::from(u32::MAX) {
                            return Err((stream, format!("source {source} out of range")));
                        }
                        queries.push(BatchQuery::Ecc {
                            source: source as VertexId,
                        });
                    }
                    Some("diameter") => queries.push(BatchQuery::Diameter),
                    _ => {
                        return Err((
                            stream,
                            "each query needs \"type\": \"ecc\" or \"diameter\"".into(),
                        ))
                    }
                }
            }
            queries
        }
        (Endpoint::Batch, _) => {
            return Err((
                stream,
                "batch requests need a \"queries\" array: [{\"type\": \"ecc\", \"source\": v}, {\"type\": \"diameter\"}]"
                    .into(),
            ))
        }
        (_, Some(_)) => {
            return Err((stream, "queries is only supported on /v1/batch".into()));
        }
        (_, None) => Vec::new(),
    };

    let timeout = match v.get("timeout_secs") {
        None => shared.config.default_timeout,
        Some(t) => match t.as_f64() {
            Some(secs) if secs.is_finite() && secs >= 0.0 => Some(Duration::from_secs_f64(secs)),
            _ => return Err((stream, "timeout_secs must be a finite number ≥ 0".into())),
        },
    };
    // The deadline is armed here, at admission: time spent waiting in
    // the queue counts against the request's budget.
    let token = match timeout {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };

    let sleep_ms = match v.get("sleep_ms").and_then(JsonValue::as_u64) {
        Some(ms) if shared.config.allow_test_hooks => ms,
        Some(_) => return Err((stream, "sleep_ms requires --test-hooks".into())),
        None => 0,
    };

    let panic_in_worker = match v.get("panic").and_then(JsonValue::as_bool) {
        Some(p) if shared.config.allow_test_hooks => p,
        Some(_) => return Err((stream, "panic requires --test-hooks".into())),
        None => false,
    };

    Ok(Job {
        stream,
        endpoint,
        key,
        named,
        serial: v
            .get("serial")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        include_values: v
            .get("include_values")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false),
        anytime,
        queries,
        sleep_ms,
        panic_in_worker,
        token,
        run: RunId::fresh(),
        admitted_at: Instant::now(),
    })
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    // Pooled per-worker state: the BFS scratch arena survives across
    // jobs (cache hits on the same graph recompute allocation-free)
    // and one metrics observer feeds the shared registry.
    let mut scratch = BfsScratch::new(0);
    let observer = MetricsObserver::new(Arc::clone(&shared.metrics));
    loop {
        // Hold the receiver lock only for the pop, not the compute.
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // acceptor gone and queue drained
        };
        shared.metrics.counter("serve.jobs_dequeued").inc();
        shared.metrics.gauge("serve.queue.depth").dec();
        shared.metrics.gauge("serve.workers.busy").inc();
        shared.metrics.gauge("serve.jobs.in_flight").inc();
        let queue_wait = job.admitted_at.elapsed();
        shared
            .metrics
            .histogram("serve.queue.wait")
            .record(queue_wait);
        let t0 = Instant::now();
        serve_job(shared, job, queue_wait, &mut scratch, &observer);
        let dur = t0.elapsed();
        shared.metrics.histogram("serve.job.duration").record(dur);
        // EWMA (α = 1/4) of job wall time — the drain-rate estimate
        // behind `Retry-After`. Racy read-modify-write is fine: it's an
        // estimate, and torn updates still land near the mean.
        let prev = shared.ewma_job_nanos.load(Ordering::Relaxed);
        let sample = dur.as_nanos() as u64;
        let next = if prev == 0 {
            sample
        } else {
            prev - prev / 4 + sample / 4
        };
        shared.ewma_job_nanos.store(next, Ordering::Relaxed);
        shared.metrics.gauge("serve.jobs.in_flight").dec();
        shared.metrics.gauge("serve.workers.busy").dec();
    }
}

/// How a leader's computation resolved. Rendered per-recipient by
/// [`deliver`] — once for the leader, once for every coalesced waiter.
enum LeaderOutcome {
    /// Fully rendered 200 body, shared byte-for-byte by all recipients
    /// (they all describe the same run).
    Ok { body: String, cache: &'static str },
    /// Load/validation failure → 400 for everyone who asked for it.
    Bad { message: String },
    /// The deadline fired mid-run. `info` is the run's final registry
    /// state, reaped exactly once via [`RunRegistry::remove`] — its
    /// latest snapshot is the `"cancelled"` handoff when at least one
    /// BFS completed, and the anytime path serves it.
    Deadline {
        info: Option<RunInfo>,
        cache: &'static str,
    },
}

fn serve_job(
    shared: &Shared,
    job: Job,
    queue_wait: Duration,
    scratch: &mut BfsScratch,
    observer: &MetricsObserver,
) {
    // Everything this request does to the ring happens after this
    // point in recorder time — the window the tail sampler slices.
    let flight_from = shared.flight.elapsed_us();

    // A deadline that expired while the job sat in the queue is
    // answered without loading or computing anything — 504 even under
    // `anytime`, because nothing was certified.
    if job.token.is_cancelled() {
        let wrote = respond_deadline(shared, &job);
        let outcome = write_outcome(shared, wrote, "expired_in_queue");
        log_access(shared, &job, job.run, 504, "-", queue_wait, outcome);
        capture_flight(shared, &job, flight_from, 504, "deadline");
        return;
    }

    // Test hook: a cancellation-aware stall standing in for a long
    // compute, so integration tests can hold a worker busy for a
    // deterministic duration. Runs *before* coalescing so identical
    // sleep jobs still occupy one worker each.
    if job.sleep_ms > 0 {
        let until = Instant::now() + Duration::from_millis(job.sleep_ms);
        while Instant::now() < until {
            if job.token.is_cancelled() {
                let wrote = respond_deadline(shared, &job);
                let outcome = write_outcome(shared, wrote, "expired_in_compute");
                log_access(shared, &job, job.run, 504, "-", queue_wait, outcome);
                capture_flight(shared, &job, flight_from, 504, "deadline");
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    // Test hook: a worker that dies mid-run, so post-mortem coverage
    // can exercise a real dying worker end to end. The run registers
    // first — the post-mortem must name it as in-flight.
    if job.panic_in_worker {
        shared.registry.register(job.run, "panic_test", 0, 0);
        panic!("induced worker panic (test hook) run={}", job.run);
    }

    // Request coalescing: if an identical computation is already in
    // flight, park this job on it and free the worker — the leader
    // writes every parked response when it finishes. Otherwise this
    // job claims the flight and leads.
    let flight_key = FlightKey::of(&job);
    if let Some(fk) = &flight_key {
        let mut inflight = shared.inflight.lock().unwrap();
        if let Some(flight) = inflight.get_mut(fk) {
            shared.metrics.counter("coalesced_requests").inc();
            flight.waiters.push((job, queue_wait));
            return;
        }
        inflight.insert(
            fk.clone(),
            Flight {
                waiters: Vec::new(),
            },
        );
    }

    let outcome = lead(shared, &job, scratch, observer);

    // Close the flight *after* the outcome exists: everyone parked by
    // then shares it; later arrivals start a fresh flight (and, on a
    // success, hit the now-warm cache).
    let waiters = match &flight_key {
        Some(fk) => shared
            .inflight
            .lock()
            .unwrap()
            .remove(fk)
            .map(|f| f.waiters)
            .unwrap_or_default(),
        None => Vec::new(),
    };
    let status = deliver(shared, &outcome, &job, job.run, queue_wait, false);
    for (waiter, wq) in &waiters {
        deliver(shared, &outcome, waiter, job.run, *wq, true);
    }

    // Tail sampling: a run that died at its deadline always spools its
    // flight slice; a run that finished but blew the latency threshold
    // spools as "slow".
    if matches!(outcome, LeaderOutcome::Deadline { .. }) {
        capture_flight(shared, &job, flight_from, status, "deadline");
    } else if shared
        .config
        .slow_threshold
        .is_some_and(|t| job.admitted_at.elapsed() > t)
    {
        capture_flight(shared, &job, flight_from, status, "slow");
    }
}

/// Persists the flight recorder's event slice for one finished request
/// into the spool (no-op when tail sampling is disabled). The window is
/// time-based, so events from concurrently running requests ride along
/// — deliberate: the neighbors are the context a slow run was slow *in*.
fn capture_flight(shared: &Shared, job: &Job, from_us: u64, status: u16, reason: &'static str) {
    let Some(spool) = &shared.spool else { return };
    let slice = shared
        .flight
        .dump_window_jsonl(from_us, shared.flight.elapsed_us());
    match spool.capture(
        job.run,
        job.endpoint.as_str(),
        status,
        reason,
        job.admitted_at.elapsed(),
        &slice,
    ) {
        Ok(_) => shared
            .metrics
            .labeled_counter("flight.captures", "reason", reason)
            .inc(),
        Err(_) => shared.metrics.counter("flight.capture_errors").inc(),
    }
}

/// The leader's side of a flight: load (or hit) the graph, run the
/// computation, and fold the result into a [`LeaderOutcome`] that
/// [`deliver`] can render for every recipient.
fn lead(
    shared: &Shared,
    job: &Job,
    scratch: &mut BfsScratch,
    observer: &MetricsObserver,
) -> LeaderOutcome {
    let (graph, outcome) = match shared.cache.get_or_load(&job.key, || load_graph(&job.key)) {
        Ok(found) => found,
        Err(e) => return LeaderOutcome::Bad { message: e },
    };
    match outcome {
        CacheOutcome::Hit => shared.metrics.counter("serve.cache_hits").inc(),
        CacheOutcome::Miss => shared.metrics.counter("serve.cache_misses").inc(),
    }
    if let Some(named) = &job.named {
        named.record(outcome == CacheOutcome::Hit);
        // A pinned named graph that fell out of residency (removed, or
        // registered with preload: false) reinstates its pin on reload.
        if outcome == CacheOutcome::Miss && named.pinned() {
            shared.cache.pin(&job.key, true);
        }
    }
    refresh_cache_gauges(shared);

    let t0 = Instant::now();
    // Tee the run's event stream into the in-flight registry (run_start
    // registers, every bounds snapshot updates the live view, run_end
    // deregisters) and into the always-on flight recorder. The recorder
    // never *requests* per-level BFS detail (its `wants_bfs_detail` is
    // false), so the tee's OR leaves the kernels' event volume exactly
    // where the metrics observer already put it.
    let run_tee = Tee(observer, &shared.registry);
    let tee = Tee(&run_tee, shared.flight.as_ref());
    let body = match (job.endpoint, job.key.directed) {
        (Endpoint::Diameter, true) => compute_directed_diameter(&graph, job, &tee),
        (Endpoint::Diameter, false) => compute_diameter(&graph, job, scratch, &tee),
        (Endpoint::Eccentricities, _) => compute_eccentricities(&graph, job, &tee),
        (Endpoint::Batch, _) => match compute_batch(&graph, job, scratch, &tee) {
            Ok(body) => body,
            Err(message) => return LeaderOutcome::Bad { message },
        },
    };
    match body {
        Some(obj) => {
            shared
                .metrics
                .set_label("serve.last_run_info", "run_id", &job.run.to_string());
            let obj = obj
                .str("run_id", &job.run.to_string())
                .str("cache", outcome.as_str())
                .f64("elapsed_ms", t0.elapsed().as_secs_f64() * 1e3);
            LeaderOutcome::Ok {
                body: obj.finish(),
                cache: outcome.as_str(),
            }
        }
        None => {
            // The run was cancelled: it emitted no run_end, so reap its
            // final registry state here — atomically, exactly once. The
            // latest snapshot (phase "cancelled") carries every bound
            // the truncated run certified.
            let info = shared.registry.remove(job.run);
            LeaderOutcome::Deadline {
                info,
                cache: outcome.as_str(),
            }
        }
    }
}

/// Writes one recipient's response for a resolved flight, then logs
/// the access line — in that order, so a failed mid-body write (peer
/// reset, broken pipe) is visible as the `write_error` outcome instead
/// of a line claiming the response was delivered. Success and 400
/// bodies are shared verbatim; deadline responses render per-recipient
/// because `anytime` is a per-request choice. Returns the status
/// written, for the tail sampler.
fn deliver(
    shared: &Shared,
    outcome: &LeaderOutcome,
    job: &Job,
    run: RunId,
    queue_wait: Duration,
    coalesced: bool,
) -> u16 {
    let cache_label = |leader: &'static str| if coalesced { "coalesced" } else { leader };
    match outcome {
        LeaderOutcome::Ok { body, cache } => {
            shared.metrics.counter("serve.responses_ok").inc();
            let wrote = write_response(&job.stream, 200, &[], "application/json", body.as_bytes());
            let outcome = write_outcome(shared, wrote, "ok");
            log_access(
                shared,
                job,
                run,
                200,
                cache_label(cache),
                queue_wait,
                outcome,
            );
            200
        }
        LeaderOutcome::Bad { message } => {
            shared.metrics.counter("serve.responses_400").inc();
            let wrote = write_response(
                &job.stream,
                400,
                &[],
                "application/json",
                JsonObject::new().str("error", message).finish().as_bytes(),
            );
            let outcome = write_outcome(shared, wrote, "ok");
            log_access(shared, job, run, 400, cache_label("-"), queue_wait, outcome);
            400
        }
        LeaderOutcome::Deadline { info, cache } => {
            let cache = cache_label(cache);
            if job.anytime {
                if let Some(body) = info.as_ref().and_then(|i| anytime_body(i, cache)) {
                    shared.metrics.counter("serve.responses_anytime").inc();
                    let wrote =
                        write_response(&job.stream, 200, &[], "application/json", body.as_bytes());
                    let outcome = write_outcome(shared, wrote, "anytime");
                    log_access(shared, job, run, 200, cache, queue_wait, outcome);
                    return 200;
                }
            }
            shared.metrics.counter("serve.responses_deadline").inc();
            let wrote = write_response(
                &job.stream,
                504,
                &[],
                "application/json",
                JsonObject::new()
                    .str("error", "deadline expired before the computation finished")
                    .finish()
                    .as_bytes(),
            );
            let outcome = write_outcome(shared, wrote, "expired_in_compute");
            log_access(shared, job, run, 504, cache, queue_wait, outcome);
            504
        }
    }
}

/// Folds a response write's result into the access-log outcome: a
/// failed mid-body write was previously silent (the log line claimed
/// the nominal outcome), so it gets its own outcome string and counter.
fn write_outcome(shared: &Shared, wrote: std::io::Result<()>, ok: &'static str) -> &'static str {
    match wrote {
        Ok(()) => ok,
        Err(_) => {
            shared.metrics.counter("serve.write_errors").inc();
            "write_error"
        }
    }
}

/// Renders the `200` body of an anytime response from a cancelled
/// run's final registry state: the last *certified* diameter bounds.
/// `None` when nothing was certified (no BFS completed before the
/// deadline) — the caller falls back to `504`.
fn anytime_body(info: &RunInfo, cache: &str) -> Option<String> {
    let s = info.latest.as_ref()?;
    if s.bfs_count == 0 {
        return None;
    }
    Some(
        JsonObject::new()
            .bool("anytime", true)
            .bool("complete", false)
            .str("status", "deadline_expired")
            .u64("lb", u64::from(s.lb))
            .u64("ub", u64::from(s.ub))
            .u64("gap", u64::from(s.gap()))
            .u64("bfs_count", s.bfs_count)
            .str("phase", s.phase)
            .usize("vertices_remaining", s.vertices_remaining)
            .str("algorithm", &info.algorithm)
            .usize("n", info.n)
            .usize("m", info.m)
            .f64("run_elapsed_ms", s.elapsed_nanos as f64 / 1e6)
            .str("run_id", &info.run.to_string())
            .str("cache", cache)
            .finish(),
    )
}

/// Loads the graph a [`CacheKey`] describes — disk read or generation,
/// plus the load-time relabeling pass. The reference is taken verbatim
/// (never parsed for parameters), so any byte — `#` included — is a
/// legal path character.
fn load_graph(key: &CacheKey) -> Result<LoadedGraph, String> {
    let reference = key.reference.as_str();
    if key.directed {
        // Generator specs are undirected by construction and load
        // bidirected; edge-list paths keep their arc orientation.
        let g = match reference.split_once(':') {
            Some(("spec", s)) => {
                fdiam_graph::DiGraph::from_undirected(&fdiam_cli::generate_graph(s)?)
            }
            Some(("path", p)) => fdiam_cli::read_digraph(p)?,
            _ => unreachable!("references are built in parse_cache_key"),
        };
        return Ok(LoadedGraph::new_directed(g, key.order));
    }
    let g = match reference.split_once(':') {
        Some(("spec", s)) => fdiam_cli::generate_graph(s),
        Some(("path", p)) => fdiam_cli::read_graph(p),
        _ => unreachable!("references are built in parse_cache_key"),
    }?;
    Ok(LoadedGraph::new(g, key.order))
}

/// Runs F-Diam under the job's token; `None` means the deadline fired.
fn compute_diameter(
    lg: &LoadedGraph,
    job: &Job,
    scratch: &mut BfsScratch,
    observer: &dyn fdiam_obs::Observer,
) -> Option<JsonObject> {
    // A relabeled graph's event stream speaks internal ids; translate
    // before anything reaches the registry, metrics, or a trace.
    let remap_storage;
    let observer: &dyn fdiam_obs::Observer = match &lg.to_original {
        Some(map) => {
            remap_storage = RemapIds::new(observer, map);
            &remap_storage
        }
        None => observer,
    };
    let g = lg.csr();
    let config = if job.serial {
        FdiamConfig::serial()
    } else {
        FdiamConfig::parallel()
    }
    .with_run_id(job.run);
    let out =
        fdiam_core::run_cancellable_with_scratch(g, &config, observer, &job.token, scratch).ok()?;
    let mut obj = JsonObject::new();
    obj = match out.result.diameter() {
        Some(d) => obj.u64("diameter", u64::from(d)),
        None => obj.raw("diameter", "null"),
    };
    obj = obj
        .u64(
            "largest_cc_diameter",
            u64::from(out.result.largest_cc_diameter),
        )
        .bool("connected", out.result.connected)
        .usize("n", g.num_vertices())
        .usize("m", g.num_undirected_edges())
        .usize("traversals", out.stats.ecc_computations);
    if let Some((s, t)) = out.diametral_pair {
        let (s, t) = (lg.original(s), lg.original(t));
        obj = obj.raw("diametral_pair", &format!("[{s},{t}]"));
    }
    Some(obj)
}

/// Directed SumSweep under the job's token; `None` means the deadline
/// fired. Infinite diameter/radius (not strongly connected / no vertex
/// reaches all) serialize as JSON `null`.
fn compute_directed_diameter(
    lg: &LoadedGraph,
    job: &Job,
    observer: &dyn fdiam_obs::Observer,
) -> Option<JsonObject> {
    let remap_storage;
    let observer: &dyn fdiam_obs::Observer = match &lg.to_original {
        Some(map) => {
            remap_storage = RemapIds::new(observer, map);
            &remap_storage
        }
        None => observer,
    };
    let g = lg.digraph();
    let r = fdiam_analytics::directed_sum_sweep_observed(g, job.run, observer, Some(&job.token))
        .ok()?;
    let mut obj = JsonObject::new()
        .bool("directed", true)
        .usize("n", g.num_vertices())
        .usize("arcs", g.num_arcs());
    let Some(r) = r else {
        // The empty graph: nothing to measure, but not a deadline.
        return Some(
            obj.raw("diameter", "null")
                .raw("radius", "null")
                .bool("strongly_connected", false)
                .usize("sccs", 0)
                .usize("traversals", 0),
        );
    };
    obj = match r.diameter {
        Some(d) => obj.u64("diameter", u64::from(d)),
        None => obj.raw("diameter", "null"),
    };
    obj = match r.radius {
        Some(rad) => obj.u64("radius", u64::from(rad)),
        None => obj.raw("radius", "null"),
    };
    obj = obj
        .bool("strongly_connected", r.strongly_connected)
        .usize("sccs", r.num_sccs)
        .usize("traversals", r.bfs_calls);
    if let Some(v) = r.diametral_vertex {
        obj = obj.u64("diametral_vertex", u64::from(lg.original(v)));
    }
    if let Some(v) = r.central_vertex {
        obj = obj.u64("central_vertex", u64::from(lg.original(v)));
    }
    Some(obj)
}

/// Takes–Kosters all-eccentricities under the job's token.
fn compute_eccentricities(
    lg: &LoadedGraph,
    job: &Job,
    observer: &dyn fdiam_obs::Observer,
) -> Option<JsonObject> {
    let remap_storage;
    let observer: &dyn fdiam_obs::Observer = match &lg.to_original {
        Some(map) => {
            remap_storage = RemapIds::new(observer, map);
            &remap_storage
        }
        None => observer,
    };
    let g = lg.csr();
    let r =
        fdiam_analytics::bounding_eccentricities_observed(g, job.run, observer, Some(&job.token))
            .ok()?;
    // Radius/diameter are order-invariant; the per-vertex array is
    // id-indexed and must leave in the input's original space.
    let ecc = &lg.original_indexing(&r.eccentricities);
    let radius = (0..g.num_vertices() as fdiam_graph::VertexId)
        .filter(|&v| g.degree(v) > 0)
        .map(|v| ecc[lg.original(v) as usize])
        .min()
        .unwrap_or(0);
    let diameter = ecc.iter().copied().max().unwrap_or(0);
    let mut obj = JsonObject::new()
        .u64("radius", u64::from(radius))
        .u64("diameter", u64::from(diameter))
        .usize("bfs_calls", r.bfs_calls)
        .usize("n", g.num_vertices())
        .usize("m", g.num_undirected_edges());
    if job.include_values {
        let mut arr = String::with_capacity(ecc.len() * 3 + 2);
        arr.push('[');
        for (i, e) in ecc.iter().enumerate() {
            if i > 0 {
                arr.push(',');
            }
            let _ = write!(arr, "{e}");
        }
        arr.push(']');
        obj = obj.raw("eccentricities", &arr);
    }
    Some(obj)
}

/// Answers a `/v1/batch` request: the deduplicated eccentricity
/// sources packed 64-at-a-time through bit-parallel BFS lanes, the
/// diameter (if asked) computed once and reused, everything over one
/// resident graph and one scratch arena. `Err` → 400 for invalid
/// sources; `Ok(None)` → the deadline fired.
fn compute_batch(
    lg: &LoadedGraph,
    job: &Job,
    scratch: &mut BfsScratch,
    observer: &dyn fdiam_obs::Observer,
) -> Result<Option<JsonObject>, String> {
    let g = lg.csr();
    let n = g.num_vertices();
    // The worker's arena is sized for whatever graph it last served;
    // the bp64 kernel (unlike the F-Diam driver) asserts rather than
    // resizes.
    scratch.ensure(n);

    // Sources arrive in the input's original id space; bp64 wants the
    // internal (possibly relabeled) space. Build the inverse map once.
    let inverse = lg.to_original.as_ref().map(|map| {
        let mut inv = vec![0 as VertexId; n];
        for (internal, &orig) in map.iter().enumerate() {
            inv[orig as usize] = internal as VertexId;
        }
        inv
    });

    // Deduplicate sources (batches routinely repeat hot vertices);
    // each unique source costs one bp64 lane.
    let mut lane_of: HashMap<VertexId, usize> = HashMap::new();
    let mut lanes: Vec<VertexId> = Vec::new(); // internal ids, lane order
    let mut wants_diameter = false;
    for q in &job.queries {
        match q {
            BatchQuery::Ecc { source } => {
                if (*source as usize) >= n {
                    return Err(format!("source {source} out of range (n = {n})"));
                }
                lane_of.entry(*source).or_insert_with(|| {
                    lanes.push(match &inverse {
                        Some(inv) => inv[*source as usize],
                        None => *source,
                    });
                    lanes.len() - 1
                });
            }
            BatchQuery::Diameter => wants_diameter = true,
        }
    }

    let mut ecc = vec![0u32; lanes.len()];
    let mut waves = 0usize;
    for (chunk_idx, chunk) in lanes.chunks(fdiam_bfs::MAX_LANES).enumerate() {
        let Some(summary) =
            fdiam_bfs::bp64_eccentricities_cancellable(g, chunk, scratch, &job.token)
        else {
            return Ok(None);
        };
        waves += 1;
        for (k, e) in summary.ecc[..chunk.len()].iter().enumerate() {
            ecc[chunk_idx * fdiam_bfs::MAX_LANES + k] = *e;
        }
    }

    let diameter_out = if wants_diameter {
        let remap_storage;
        let observer: &dyn fdiam_obs::Observer = match &lg.to_original {
            Some(map) => {
                remap_storage = RemapIds::new(observer, map);
                &remap_storage
            }
            None => observer,
        };
        let config = if job.serial {
            FdiamConfig::serial()
        } else {
            FdiamConfig::parallel()
        }
        .with_run_id(job.run);
        match fdiam_core::run_cancellable_with_scratch(g, &config, observer, &job.token, scratch) {
            Ok(out) => Some(out),
            Err(_) => return Ok(None),
        }
    } else {
        None
    };

    let mut arr = String::from("[");
    for (i, q) in job.queries.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        match q {
            BatchQuery::Ecc { source } => {
                arr.push_str(
                    &JsonObject::new()
                        .str("type", "ecc")
                        .u64("source", u64::from(*source))
                        .u64("eccentricity", u64::from(ecc[lane_of[source]]))
                        .finish(),
                );
            }
            BatchQuery::Diameter => {
                let out = diameter_out.as_ref().expect("computed when asked");
                let mut obj = JsonObject::new().str("type", "diameter");
                obj = match out.result.diameter() {
                    Some(d) => obj.u64("diameter", u64::from(d)),
                    None => obj.raw("diameter", "null"),
                };
                arr.push_str(&obj.bool("connected", out.result.connected).finish());
            }
        }
    }
    arr.push(']');

    let mut obj = JsonObject::new()
        .raw("results", &arr)
        .usize("queries", job.queries.len())
        .usize("unique_sources", lanes.len())
        .usize("ecc_bfs_waves", waves)
        .usize("n", n)
        .usize("m", g.num_undirected_edges());
    if let Some(out) = &diameter_out {
        obj = obj.usize("diameter_traversals", out.stats.ecc_computations);
    }
    Ok(Some(obj))
}

fn respond_deadline(shared: &Shared, job: &Job) -> std::io::Result<()> {
    // A cancelled run emits run_start but never run_end, so the
    // registry needs the explicit deregister here (no-op for jobs that
    // expired before the compute registered anything).
    shared.registry.deregister(job.run);
    shared.metrics.counter("serve.responses_deadline").inc();
    write_response(
        &job.stream,
        504,
        &[],
        "application/json",
        JsonObject::new()
            .str("error", "deadline expired before the computation finished")
            .finish()
            .as_bytes(),
    )
}

fn respond_error(stream: &TcpStream, shared: &Shared, status: u16, msg: &str) {
    let name: &'static str = match status {
        400 | 413 => "serve.responses_400",
        404 | 405 => "serve.responses_404",
        _ => "serve.responses_other",
    };
    shared.metrics.counter(name).inc();
    let _ = write_response(
        stream,
        status,
        &[],
        "application/json",
        JsonObject::new().str("error", msg).finish().as_bytes(),
    );
}

fn respond_healthz(stream: &TcpStream, shared: &Shared) {
    let body = JsonObject::new()
        .str("status", "ok")
        .usize("workers", shared.config.workers)
        .usize("queue_depth", shared.config.queue_depth)
        .usize("cache_bytes", shared.config.cache_bytes)
        .usize("cache_resident_bytes", shared.cache.resident_bytes())
        .usize("named_graphs", shared.graphs.len())
        .f64("uptime_secs", shared.started.elapsed().as_secs_f64())
        .finish();
    let _ = write_response(stream, 200, &[], "application/json", body.as_bytes());
}
