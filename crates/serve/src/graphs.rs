//! Named-graph directory behind `PUT/GET/DELETE /v1/graphs/{name}`.
//!
//! A production deployment serves a handful of well-known graphs over
//! and over; making clients re-send a `path`/`spec` (and its load
//! parameters) on every request is both error-prone — one typo'd
//! `order` forks the cache — and unmanageable, because nothing ties
//! "the road network" to a specific resident entry. The directory maps
//! a short stable **name** to a structured [`CacheKey`], so requests
//! can say `{"graph": "roads"}` and operators can preload, pin, and
//! retire graphs as a unit. Per-name request/hit/miss counters give
//! each graph its own traffic profile without a metrics label
//! explosion.
//!
//! The directory owns only the name→key mapping and its stats; bytes
//! live in the [`GraphCache`](crate::GraphCache), which is shared with
//! anonymous (`spec`/`path`) requests — registering a name for a graph
//! that anonymous traffic already loaded reuses the resident copy.

use crate::cache::CacheKey;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One registered name: the cache key it resolves to, whether the
/// resident entry should be pinned against LRU eviction, and per-name
/// traffic counters.
#[derive(Debug)]
pub struct NamedGraph {
    pub name: String,
    pub key: CacheKey,
    pinned: AtomicBool,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl NamedGraph {
    fn new(name: String, key: CacheKey, pinned: bool) -> Self {
        Self {
            name,
            key,
            pinned: AtomicBool::new(pinned),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn pinned(&self) -> bool {
        self.pinned.load(Ordering::Relaxed)
    }

    pub fn set_pinned(&self, pinned: bool) {
        self.pinned.store(pinned, Ordering::Relaxed);
    }

    /// Records one compute request routed through this name.
    pub fn record(&self, hit: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(requests, hits, misses)` so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Valid graph names: 1–64 characters of `[A-Za-z0-9_.-]` — safe in a
/// URL path segment without any escaping.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

/// The name → graph mapping. `BTreeMap` keeps listings in stable
/// lexicographic order.
#[derive(Default)]
pub struct GraphDirectory {
    map: Mutex<BTreeMap<String, Arc<NamedGraph>>>,
}

impl GraphDirectory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a name. Returns the new entry and the
    /// replaced one, if any — the caller decides what to do with the
    /// old key's cache residency.
    pub fn put(
        &self,
        name: &str,
        key: CacheKey,
        pinned: bool,
    ) -> (Arc<NamedGraph>, Option<Arc<NamedGraph>>) {
        let entry = Arc::new(NamedGraph::new(name.to_string(), key, pinned));
        let replaced = self
            .map
            .lock()
            .unwrap()
            .insert(name.to_string(), Arc::clone(&entry));
        (entry, replaced)
    }

    pub fn get(&self, name: &str) -> Option<Arc<NamedGraph>> {
        self.map.lock().unwrap().get(name).cloned()
    }

    pub fn remove(&self, name: &str) -> Option<Arc<NamedGraph>> {
        self.map.lock().unwrap().remove(name)
    }

    /// All entries, lexicographically by name.
    pub fn list(&self) -> Vec<Arc<NamedGraph>> {
        self.map.lock().unwrap().values().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any registered name resolves to `key` — consulted before
    /// unpinning/evicting a key another name may still rely on.
    pub fn references(&self, key: &CacheKey) -> bool {
        self.map.lock().unwrap().values().any(|g| g.key == *key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::VertexOrder;

    fn key(reference: &str) -> CacheKey {
        CacheKey::new(reference, VertexOrder::None, false)
    }

    #[test]
    fn put_get_replace_remove_lifecycle() {
        let dir = GraphDirectory::new();
        assert!(dir.is_empty());
        let (a, replaced) = dir.put("roads", key("spec:torus:10x10"), true);
        assert!(replaced.is_none());
        assert!(a.pinned());
        assert_eq!(dir.get("roads").unwrap().key, a.key);
        assert!(dir.references(&key("spec:torus:10x10")));
        assert!(!dir.references(&key("spec:torus:9x9")));

        // Replacing hands back the old entry.
        let (b, replaced) = dir.put("roads", key("spec:torus:20x20"), false);
        assert_eq!(replaced.unwrap().key, a.key);
        assert!(!b.pinned());
        assert_eq!(dir.len(), 1);
        assert!(!dir.references(&a.key));

        assert_eq!(dir.remove("roads").unwrap().key, b.key);
        assert!(dir.remove("roads").is_none());
        assert!(dir.is_empty());
    }

    #[test]
    fn stats_accumulate_and_listing_is_sorted() {
        let dir = GraphDirectory::new();
        dir.put("b", key("spec:path:5"), false);
        dir.put("a", key("spec:path:6"), false);
        let g = dir.get("a").unwrap();
        g.record(false);
        g.record(true);
        g.record(true);
        assert_eq!(g.counts(), (3, 2, 1));
        let names: Vec<_> = dir.list().iter().map(|g| g.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("roads"));
        assert!(valid_name("as-733.v2_final"));
        assert!(valid_name(&"x".repeat(64)));
        assert!(!valid_name(""));
        assert!(!valid_name(&"x".repeat(65)));
        assert!(!valid_name("has space"));
        assert!(!valid_name("slash/y"));
        assert!(!valid_name("percent%20"));
    }
}
