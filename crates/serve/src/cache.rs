//! Bytes-bounded LRU registry of loaded graphs.
//!
//! Requests address graphs by a structured [`CacheKey`]: the verbatim
//! graph reference (a file path or a generator spec — any bytes,
//! including `#`) plus the load-time parameters that change the
//! resident adjacency (vertex order, directedness). Loading — disk I/O
//! or generation — is the expensive step the cache amortizes. The
//! budget is expressed in bytes of resident CSR storage
//! ([`CsrGraph::memory_bytes`]), not entry counts, because graph sizes
//! span five orders of magnitude. Entries can be **pinned** (named
//! graphs registered via `PUT /v1/graphs/{name}` with `"pin": true`):
//! pinned entries are exempt from LRU eviction until unpinned or
//! removed.
//!
//! Locking: the mutex guards only map bookkeeping. Loads run *outside*
//! the lock, so a slow disk read never blocks other workers' cache
//! hits; two workers racing on the same cold key may both load it, and
//! the loser's copy is dropped (last insert wins). That waste is
//! bounded by the worker count and avoids holding a lock across I/O.

use fdiam_graph::{CsrGraph, DiGraph, VertexId, VertexOrder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Structured cache identity of a loaded graph: the reference plus the
/// load-time parameters that change the resident adjacency.
///
/// This replaces the old scheme of appending `#order=…` / `#directed`
/// suffixes to the reference string, which collided with references
/// that themselves contain `#` (a perfectly legal path byte): a path
/// ending in `#directed` would be cached — and *loaded* — as a
/// directed read of a different file. The structured key cannot
/// collide because the reference is never parsed back.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `spec:`/`path:`-prefixed graph reference, verbatim. May contain
    /// any characters, including `#`.
    pub reference: String,
    /// Load-time relabeling pass applied on cache miss.
    pub order: VertexOrder,
    /// Load the input as a digraph (a different adjacency entirely).
    pub directed: bool,
}

impl CacheKey {
    pub fn new(reference: impl Into<String>, order: VertexOrder, directed: bool) -> Self {
        Self {
            reference: reference.into(),
            order,
            directed,
        }
    }
}

/// Human-readable rendering for logs and diagnostics only — never
/// parsed back into a key, so a `#` (or anything else) in the
/// reference is harmless.
impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reference)?;
        if self.order != VertexOrder::None {
            write!(f, " order={}", self.order.as_str())?;
        }
        if self.directed {
            f.write_str(" directed")?;
        }
        Ok(())
    }
}

/// The adjacency structure a cache entry holds: requests carrying
/// `"directed": true` load (and are keyed as) a [`DiGraph`], everything
/// else the symmetric CSR.
#[derive(Debug)]
pub enum CachedTopology {
    Undirected(CsrGraph),
    Directed(DiGraph),
}

/// A cached graph as the compute kernels see it: the adjacency
/// (possibly relabeled at load time for cache locality) plus the map
/// back to the input's original ids. The map is part of the cache
/// value — the same `spec`/`path` under different `order`s (or
/// directedness) is a different key, and every id that leaves a worker
/// goes back through [`LoadedGraph::original`].
#[derive(Debug)]
pub struct LoadedGraph {
    pub topology: CachedTopology,
    /// `internal id → original id`; `None` when no relabeling ran
    /// (ids are already original).
    pub to_original: Option<Vec<VertexId>>,
}

impl LoadedGraph {
    /// Applies `order` to a freshly loaded graph.
    pub fn new(graph: CsrGraph, order: VertexOrder) -> Self {
        match order.apply(&graph) {
            None => Self {
                topology: CachedTopology::Undirected(graph),
                to_original: None,
            },
            Some(r) => Self {
                topology: CachedTopology::Undirected(r.graph),
                to_original: Some(r.to_original),
            },
        }
    }

    /// Applies `order` to a freshly loaded digraph.
    pub fn new_directed(graph: DiGraph, order: VertexOrder) -> Self {
        match order.apply_directed(&graph) {
            None => Self {
                topology: CachedTopology::Directed(graph),
                to_original: None,
            },
            Some(r) => Self {
                topology: CachedTopology::Directed(r.graph),
                to_original: Some(r.to_original),
            },
        }
    }

    /// The symmetric CSR. Panics on a directed entry — keys segregate
    /// the two, so an undirected job never observes a [`DiGraph`].
    pub fn csr(&self) -> &CsrGraph {
        match &self.topology {
            CachedTopology::Undirected(g) => g,
            CachedTopology::Directed(_) => panic!("directed cache entry asked for a CSR"),
        }
    }

    /// The digraph. Panics on an undirected entry (see [`Self::csr`]).
    pub fn digraph(&self) -> &DiGraph {
        match &self.topology {
            CachedTopology::Directed(g) => g,
            CachedTopology::Undirected(_) => panic!("undirected cache entry asked for a digraph"),
        }
    }

    /// Translates an internal id back to the input's space.
    #[inline]
    pub fn original(&self, v: VertexId) -> VertexId {
        match &self.to_original {
            Some(map) => map[v as usize],
            None => v,
        }
    }

    /// Reorders a per-internal-vertex array into original-id indexing.
    pub fn original_indexing<T: Copy>(&self, values: &[T]) -> Vec<T> {
        match &self.to_original {
            None => values.to_vec(),
            Some(map) => {
                let mut out = values.to_vec();
                for (new, &old) in map.iter().enumerate() {
                    out[old as usize] = values[new];
                }
                out
            }
        }
    }

    /// Resident bytes: the adjacency plus the id map riding with it.
    pub fn memory_bytes(&self) -> usize {
        let adjacency = match &self.topology {
            CachedTopology::Undirected(g) => g.memory_bytes(),
            CachedTopology::Directed(g) => g.memory_bytes(),
        };
        adjacency
            + self
                .to_original
                .as_ref()
                .map_or(0, |m| m.len() * std::mem::size_of::<VertexId>())
    }
}

struct Entry {
    graph: Arc<LoadedGraph>,
    bytes: usize,
    /// Pinned entries are exempt from LRU eviction (named graphs
    /// registered with `"pin": true`).
    pinned: bool,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    /// Keys ordered least- → most-recently used.
    order: Vec<CacheKey>,
    total_bytes: usize,
}

pub struct GraphCache {
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

/// Whether a lookup was served from the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit,
    Miss,
}

impl CacheOutcome {
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

impl GraphCache {
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                order: Vec::new(),
                total_bytes: 0,
            }),
        }
    }

    /// Returns the graph for `key`, invoking `load` on a miss. The most
    /// recently inserted entry is never evicted, so a single graph
    /// larger than the whole budget is still served (and pushed out by
    /// the next insert).
    pub fn get_or_load(
        &self,
        key: &CacheKey,
        load: impl FnOnce() -> Result<LoadedGraph, String>,
    ) -> Result<(Arc<LoadedGraph>, CacheOutcome), String> {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(e) = inner.entries.get(key) {
                let g = Arc::clone(&e.graph);
                touch(&mut inner.order, key);
                return Ok((g, CacheOutcome::Hit));
            }
        }

        let graph = Arc::new(load()?);
        let bytes = graph.memory_bytes();

        let mut inner = self.inner.lock().unwrap();
        // A racing worker may have inserted meanwhile; keep its copy.
        if let Some(e) = inner.entries.get(key) {
            let g = Arc::clone(&e.graph);
            touch(&mut inner.order, key);
            return Ok((g, CacheOutcome::Miss));
        }
        inner.entries.insert(
            key.clone(),
            Entry {
                graph: Arc::clone(&graph),
                bytes,
                pinned: false,
            },
        );
        inner.order.push(key.clone());
        inner.total_bytes += bytes;
        self.evict(&mut inner);
        Ok((graph, CacheOutcome::Miss))
    }

    /// Evicts least-recently-used unpinned entries until the budget is
    /// met, never touching the newest insert.
    fn evict(&self, inner: &mut Inner) {
        let mut idx = 0;
        while inner.total_bytes > self.budget_bytes && idx + 1 < inner.order.len() {
            if inner.entries[&inner.order[idx]].pinned {
                idx += 1;
                continue;
            }
            let victim = inner.order.remove(idx);
            let e = inner.entries.remove(&victim).expect("order/map in sync");
            inner.total_bytes -= e.bytes;
        }
    }

    /// Marks an entry pinned (exempt from eviction) or unpinned.
    /// Returns whether the key was resident. Unpinning re-applies the
    /// byte budget immediately.
    pub fn pin(&self, key: &CacheKey, pinned: bool) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(e) = inner.entries.get_mut(key) else {
            return false;
        };
        e.pinned = pinned;
        if !pinned {
            self.evict(&mut inner);
        }
        true
    }

    /// Drops an entry regardless of pin state. Returns whether it was
    /// resident. In-flight jobs holding the `Arc` keep computing; the
    /// bytes just stop counting against the budget.
    pub fn remove(&self, key: &CacheKey) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(e) = inner.entries.remove(key) else {
            return false;
        };
        inner.total_bytes -= e.bytes;
        if let Some(pos) = inner.order.iter().position(|k| k == key) {
            inner.order.remove(pos);
        }
        true
    }

    /// Whether `key` is currently resident (no LRU touch).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.inner.lock().unwrap().entries.contains_key(key)
    }

    /// Resident bytes of one entry, if present (no LRU touch).
    pub fn entry_bytes(&self, key: &CacheKey) -> Option<usize> {
        self.inner.lock().unwrap().entries.get(key).map(|e| e.bytes)
    }

    /// Resident keys rendered for display, least- → most-recently used.
    pub fn keys_lru_order(&self) -> Vec<String> {
        self.inner
            .lock()
            .unwrap()
            .order
            .iter()
            .map(|k| k.to_string())
            .collect()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().total_bytes
    }
}

fn touch(order: &mut Vec<CacheKey>, key: &CacheKey) {
    if let Some(pos) = order.iter().position(|k| k == key) {
        let k = order.remove(pos);
        order.push(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::grid2d;

    fn sized_graph() -> LoadedGraph {
        LoadedGraph::new(grid2d(10, 10), VertexOrder::None)
    }

    fn key(reference: &str) -> CacheKey {
        CacheKey::new(reference, VertexOrder::None, false)
    }

    #[test]
    fn hit_after_miss_and_lru_eviction_order() {
        let one = sized_graph().memory_bytes();
        // Room for two graphs, not three.
        let cache = GraphCache::new(2 * one + one / 2);
        let load = || Ok(sized_graph());
        let (a, b, c) = (key("a"), key("b"), key("c"));

        assert_eq!(cache.get_or_load(&a, load).unwrap().1, CacheOutcome::Miss);
        assert_eq!(cache.get_or_load(&a, load).unwrap().1, CacheOutcome::Hit);
        assert_eq!(cache.get_or_load(&b, load).unwrap().1, CacheOutcome::Miss);
        // Touch "a" so "b" is the LRU entry when "c" forces eviction.
        assert_eq!(cache.get_or_load(&a, load).unwrap().1, CacheOutcome::Hit);
        assert_eq!(cache.get_or_load(&c, load).unwrap().1, CacheOutcome::Miss);
        assert_eq!(cache.keys_lru_order(), vec!["a", "c"]);
        assert_eq!(cache.get_or_load(&b, load).unwrap().1, CacheOutcome::Miss);
        // "b"'s insert evicted the then-LRU "a".
        assert_eq!(cache.keys_lru_order(), vec!["c", "b"]);
        assert!(cache.resident_bytes() <= 2 * one + one / 2);
    }

    #[test]
    fn single_oversized_graph_is_still_served() {
        let cache = GraphCache::new(1); // budget smaller than any graph
        let big = key("big");
        let (g, outcome) = cache.get_or_load(&big, || Ok(sized_graph())).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(g.csr().num_vertices(), 100);
        // It stays resident (never evict the newest entry) until the
        // next insert pushes it out.
        assert_eq!(cache.keys_lru_order(), vec!["big"]);
        cache
            .get_or_load(&key("next"), || Ok(sized_graph()))
            .unwrap();
        assert_eq!(cache.keys_lru_order(), vec!["next"]);
    }

    #[test]
    fn pinned_entries_survive_eviction_until_unpinned() {
        let one = sized_graph().memory_bytes();
        // Room for two graphs, not three.
        let cache = GraphCache::new(2 * one + one / 2);
        let load = || Ok(sized_graph());
        let (a, b, c, d) = (key("a"), key("b"), key("c"), key("d"));

        cache.get_or_load(&a, load).unwrap();
        assert!(cache.pin(&a, true));
        cache.get_or_load(&b, load).unwrap();
        // "a" is the LRU entry but pinned: "c"'s insert evicts "b".
        cache.get_or_load(&c, load).unwrap();
        assert_eq!(cache.keys_lru_order(), vec!["a", "c"]);
        // Unpinning alone keeps it (still under budget) ...
        assert!(cache.pin(&a, false));
        assert!(cache.contains(&a));
        // ... but the next insert now evicts it as plain LRU.
        cache.get_or_load(&d, load).unwrap();
        assert_eq!(cache.keys_lru_order(), vec!["c", "d"]);
        // Pinning an absent key reports false.
        assert!(!cache.pin(&b, true));
    }

    #[test]
    fn unpinning_over_budget_evicts_immediately() {
        let one = sized_graph().memory_bytes();
        let cache = GraphCache::new(one + one / 2); // room for one graph
        let load = || Ok(sized_graph());
        let (a, b) = (key("a"), key("b"));

        cache.get_or_load(&a, load).unwrap();
        cache.pin(&a, true);
        // Over budget, but "a" is pinned and "b" is the newest insert.
        cache.get_or_load(&b, load).unwrap();
        assert_eq!(cache.keys_lru_order(), vec!["a", "b"]);
        // Dropping the pin re-applies the budget on the spot.
        cache.pin(&a, false);
        assert_eq!(cache.keys_lru_order(), vec!["b"]);
        assert!(cache.resident_bytes() <= one + one / 2);
    }

    #[test]
    fn remove_drops_even_pinned_entries() {
        let cache = GraphCache::new(1 << 30);
        let a = key("a");
        cache.get_or_load(&a, || Ok(sized_graph())).unwrap();
        cache.pin(&a, true);
        assert_eq!(cache.entry_bytes(&a), Some(sized_graph().memory_bytes()));
        assert!(cache.remove(&a));
        assert!(!cache.contains(&a));
        assert_eq!(cache.entry_bytes(&a), None);
        assert_eq!(cache.resident_bytes(), 0);
        assert!(cache.keys_lru_order().is_empty());
        assert!(!cache.remove(&a));
    }

    #[test]
    fn hash_in_reference_cannot_collide_with_parameters() {
        // Under the old string-suffix scheme, a reference that ends in
        // "#directed" was indistinguishable from a directed load of the
        // prefix. The structured key keeps them distinct.
        let cache = GraphCache::new(1 << 30);
        let literal = key("path:/tmp/g#directed");
        let directed = CacheKey::new("path:/tmp/g", VertexOrder::None, true);
        assert_ne!(literal, directed);

        let load = || Ok(sized_graph());
        assert_eq!(
            cache.get_or_load(&literal, load).unwrap().1,
            CacheOutcome::Miss
        );
        // Same reference under a different order is a different entry.
        let ordered = CacheKey::new("path:/tmp/g#directed", VertexOrder::Degree, false);
        assert_eq!(
            cache.get_or_load(&ordered, load).unwrap().1,
            CacheOutcome::Miss
        );
        assert_eq!(
            cache.get_or_load(&literal, load).unwrap().1,
            CacheOutcome::Hit
        );
        // Display keeps the reference verbatim; parameters are suffixed
        // for humans only.
        assert_eq!(literal.to_string(), "path:/tmp/g#directed");
        assert_eq!(directed.to_string(), "path:/tmp/g directed");
        assert_eq!(ordered.to_string(), "path:/tmp/g#directed order=degree");
    }

    #[test]
    fn loaded_graph_relabels_and_translates_back() {
        use fdiam_graph::generators::star;
        let plain = LoadedGraph::new(star(10), VertexOrder::None);
        assert!(plain.to_original.is_none());
        assert_eq!(plain.original(7), 7);
        assert_eq!(plain.original_indexing(&[3u32, 1, 2]), vec![3, 1, 2]);

        let ordered = LoadedGraph::new(star(10), VertexOrder::Degree);
        let map = ordered.to_original.as_ref().expect("relabeled");
        assert_eq!(map.len(), 10);
        for v in 0..10u32 {
            assert_eq!(
                ordered.csr().degree(v),
                star(10).degree(ordered.original(v))
            );
        }
        // the id map's bytes count against the cache budget
        assert_eq!(
            ordered.memory_bytes(),
            ordered.csr().memory_bytes() + 10 * std::mem::size_of::<u32>()
        );
        // round-trip: internal values land at their original index
        let values: Vec<u32> = (0..10).map(|i| 100 + i).collect();
        let back = ordered.original_indexing(&values);
        for v in 0..10usize {
            assert_eq!(back[map[v] as usize], values[v]);
        }
    }

    #[test]
    fn directed_entries_relabel_and_count_both_sides() {
        use fdiam_graph::EdgeList;
        let mut el = EdgeList::new(4);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (3, 0)] {
            el.push(u, v);
        }
        let dg = DiGraph::from_edge_list(&el);
        let plain = LoadedGraph::new_directed(dg.clone(), VertexOrder::None);
        assert!(plain.to_original.is_none());
        assert_eq!(plain.digraph().num_arcs(), 4);
        // forward + transpose CSR both count against the budget
        assert_eq!(plain.memory_bytes(), dg.memory_bytes());

        let ordered = LoadedGraph::new_directed(dg.clone(), VertexOrder::Bfs);
        let g = ordered.digraph();
        for v in 0..4u32 {
            assert_eq!(g.out_degree(v), 1);
            // relabeling preserves arcs up to the id translation
            let w = g.out_neighbors(v)[0];
            assert!(dg.has_arc(ordered.original(v), ordered.original(w)));
        }
    }

    #[test]
    fn load_errors_are_propagated_and_not_cached() {
        let cache = GraphCache::new(1 << 20);
        let bad = key("bad");
        let err = cache
            .get_or_load(&bad, || Err("no such file".to_string()))
            .unwrap_err();
        assert_eq!(err, "no such file");
        assert!(cache.keys_lru_order().is_empty());
        // A later successful load under the same key works.
        cache.get_or_load(&bad, || Ok(sized_graph())).unwrap();
        assert_eq!(cache.keys_lru_order(), vec!["bad"]);
    }
}
