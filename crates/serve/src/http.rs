//! A deliberately small HTTP/1.1 subset over [`std::net::TcpStream`]:
//! just enough to read one request and write one `Connection: close`
//! response. No keep-alive, no chunked encoding, no TLS — the service
//! fronts a trusted network segment (or a reverse proxy that speaks
//! the rest of the protocol), matching the repo's dependency-free
//! precedent set by `fdiam-obs`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One parsed request: the head plus a fully buffered body.
pub struct Request {
    pub method: String,
    pub path: String,
    /// Header names lower-cased; values trimmed.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served.
pub enum HttpError {
    /// Syntactically broken head or body → 400.
    Malformed(String),
    /// Declared body larger than the configured cap → 413.
    BodyTooLarge { limit: usize },
    /// Body-carrying method without a `Content-Length` header → 411.
    /// Made deterministic rather than guessed-at: without a declared
    /// length the only alternatives are treating the body as empty
    /// (silently computing the wrong thing) or reading until EOF
    /// (hanging on keep-alive clients).
    LengthRequired,
    /// Transport error (peer vanished, read timeout): nothing to send.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::BodyTooLarge { limit } => write!(f, "body exceeds {limit} bytes"),
            HttpError::LengthRequired => {
                write!(f, "body-carrying request without content-length")
            }
            HttpError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Reads one request from `stream`. The caller keeps the stream for
/// writing the response (reads go through an internal buffered clone).
pub fn read_request(stream: &TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream.try_clone()?);

    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version '{version}'"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > 100 {
            return Err(HttpError::Malformed("too many headers".into()));
        }
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        // Body-carrying methods must declare a length up front; GETs
        // and the like legitimately have none.
        None if method == "POST" || method == "PUT" => return Err(HttpError::LengthRequired),
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length '{v}'")))?,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response. Errors are returned
/// (not panicked) so a vanished client can't take a worker down.
pub fn write_response(
    mut stream: &TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        read_request(&server_side, max_body)
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            b"POST /v1/diameter HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap_or_else(|_| panic!("parse failed"));
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/diameter");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.0\r\n\r\n", 1024)
            .unwrap_or_else(|_| panic!("parse failed"));
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_without_reading_it() {
        match round_trip(
            b"POST /v1/diameter HTTP/1.1\r\nContent-Length: 999999\r\n\r\n",
            1024,
        ) {
            Err(HttpError::BodyTooLarge { limit: 1024 }) => {}
            _ => panic!("expected BodyTooLarge"),
        }
    }

    #[test]
    fn post_without_content_length_is_length_required() {
        for raw in [
            &b"POST /v1/diameter HTTP/1.1\r\nHost: x\r\n\r\n"[..],
            b"PUT /v1/graphs/g HTTP/1.1\r\nHost: x\r\n\r\n",
        ] {
            match round_trip(raw, 1024) {
                Err(HttpError::LengthRequired) => {}
                _ => panic!(
                    "expected LengthRequired for {:?}",
                    String::from_utf8_lossy(raw)
                ),
            }
        }
        // An explicit zero length is fine — the client declared it.
        let req = round_trip(
            b"POST /v1/diameter HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
            1024,
        )
        .unwrap_or_else(|_| panic!("parse failed"));
        assert!(req.body.is_empty());
        // Body-less methods still need no header at all.
        assert!(round_trip(b"DELETE /v1/graphs/g HTTP/1.1\r\n\r\n", 1024).is_ok());
    }

    #[test]
    fn malformed_heads_are_malformed_errors() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"POST\r\n\r\n",
            b"POST / SPDY/9\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
        ] {
            match round_trip(raw, 1024) {
                Err(HttpError::Malformed(_)) => {}
                _ => panic!("expected Malformed for {:?}", String::from_utf8_lossy(raw)),
            }
        }
    }
}
