//! Bounded on-disk spool of tail-sampled flight captures.
//!
//! When a request finishes slow (past the configured latency threshold)
//! or on the deadline path, the worker dumps the flight recorder's
//! event slice for the request's time window and hands it here. Each
//! capture is one JSONL file: a `flight_capture` header line with the
//! request's identity, then the windowed ring dump verbatim — a file
//! `fdiam-trace flight`/`report` consume directly.
//!
//! The spool is bounded by entry count with drop-oldest semantics, the
//! same discipline as the ring it snapshots: capture files carry a
//! monotonically increasing sequence number in their name, and writing
//! a new capture evicts the oldest files beyond the cap. Sequence
//! numbering resumes across restarts by scanning the directory.

use fdiam_obs::json::{self, JsonObject, JsonValue};
use fdiam_obs::RunId;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

const PREFIX: &str = "capture-";
const SUFFIX: &str = ".jsonl";

/// One spooled capture's identity, parsed back from its header line
/// for `GET /v1/debug/slow` listings.
#[derive(Clone, Debug)]
pub struct SpoolEntry {
    /// File name within the spool directory (the fetch handle).
    pub name: String,
    pub run_id: String,
    pub endpoint: String,
    pub status: u64,
    /// Why the capture was taken: `"slow"` or `"deadline"`.
    pub reason: String,
    /// Request latency (admission to response) in microseconds.
    pub elapsed_us: u64,
    /// File size on disk.
    pub bytes: u64,
}

/// The bounded capture directory. Shared across workers behind one
/// mutex: captures are rare by construction (they are the tail), so
/// serializing writes costs nothing and keeps eviction race-free.
pub struct Spool {
    dir: PathBuf,
    max_entries: usize,
    next_seq: Mutex<u64>,
}

impl Spool {
    /// Opens (creating if needed) the spool directory. Sequence
    /// numbering continues after the highest existing capture.
    pub fn open(dir: PathBuf, max_entries: usize) -> io::Result<Spool> {
        fs::create_dir_all(&dir)?;
        let mut highest = 0u64;
        for name in list_names(&dir)? {
            if let Some(seq) = parse_seq(&name) {
                highest = highest.max(seq);
            }
        }
        Ok(Spool {
            dir,
            max_entries: max_entries.max(1),
            next_seq: Mutex::new(highest + 1),
        })
    }

    /// Persists one capture and enforces the entry cap. Returns the
    /// capture's file name.
    pub fn capture(
        &self,
        run: RunId,
        endpoint: &str,
        status: u16,
        reason: &str,
        elapsed: Duration,
        slice: &str,
    ) -> io::Result<String> {
        let mut next = self.next_seq.lock().unwrap();
        let seq = *next;
        *next += 1;
        let name = format!("{PREFIX}{seq:06}-{run}{SUFFIX}");
        let header = JsonObject::new()
            .str("type", "flight_capture")
            .str("run_id", &run.to_string())
            .str("endpoint", endpoint)
            .u64("status", u64::from(status))
            .str("reason", reason)
            .u64("elapsed_us", elapsed.as_micros() as u64)
            .finish();
        let mut f = fs::File::create(self.dir.join(&name))?;
        writeln!(f, "{header}")?;
        f.write_all(slice.as_bytes())?;
        f.flush()?;

        // Drop-oldest beyond the cap; the lexicographic name order is
        // the capture order (zero-padded sequence numbers).
        let names = list_names(&self.dir)?;
        if names.len() > self.max_entries {
            for old in &names[..names.len() - self.max_entries] {
                let _ = fs::remove_file(self.dir.join(old));
            }
        }
        Ok(name)
    }

    /// All retained captures, newest first, with their header metadata.
    pub fn list(&self) -> Vec<SpoolEntry> {
        let Ok(mut names) = list_names(&self.dir) else {
            return Vec::new();
        };
        names.reverse();
        names
            .into_iter()
            .filter_map(|name| self.entry(&name))
            .collect()
    }

    fn entry(&self, name: &str) -> Option<SpoolEntry> {
        let path = self.dir.join(name);
        let bytes = fs::metadata(&path).ok()?.len();
        let text = fs::read_to_string(&path).ok()?;
        let header = json::parse(text.lines().next()?).ok()?;
        let get = |key: &str| {
            header
                .get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or("?")
                .to_string()
        };
        Some(SpoolEntry {
            name: name.to_string(),
            run_id: get("run_id"),
            endpoint: get("endpoint"),
            status: header
                .get("status")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            reason: get("reason"),
            elapsed_us: header
                .get("elapsed_us")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            bytes,
        })
    }

    /// Reads one capture back by its listed name. Names that are not
    /// spool entries (path separators, wrong shape) read as `None`, so
    /// the HTTP layer cannot be walked out of the directory.
    pub fn read(&self, name: &str) -> Option<String> {
        if !name.starts_with(PREFIX)
            || !name.ends_with(SUFFIX)
            || name.contains('/')
            || name.contains('\\')
            || name.contains("..")
        {
            return None;
        }
        fs::read_to_string(self.dir.join(name)).ok()
    }
}

/// Capture file names in the directory, oldest first.
fn list_names(dir: &PathBuf) -> io::Result<Vec<String>> {
    let mut names: Vec<String> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with(PREFIX) && n.ends_with(SUFFIX))
        .collect();
    names.sort();
    Ok(names)
}

fn parse_seq(name: &str) -> Option<u64> {
    name.strip_prefix(PREFIX)?.split('-').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_spool(tag: &str, max: usize) -> Spool {
        let dir =
            std::env::temp_dir().join(format!("fdiam-spool-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Spool::open(dir, max).unwrap()
    }

    #[test]
    fn capture_roundtrips_header_and_slice() {
        let spool = temp_spool("roundtrip", 8);
        let name = spool
            .capture(
                RunId(0xab),
                "diameter",
                200,
                "slow",
                Duration::from_micros(1234),
                "{\"type\":\"progress\",\"ts_us\":1,\"active\":3,\"bound\":2}\n",
            )
            .unwrap();
        let entries = spool.list();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.name, name);
        assert_eq!(e.run_id, "00000000000000ab");
        assert_eq!(e.endpoint, "diameter");
        assert_eq!((e.status, e.elapsed_us), (200, 1234));
        assert_eq!(e.reason, "slow");

        let text = spool.read(&name).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().contains("\"flight_capture\""));
        assert!(lines.next().unwrap().contains("\"progress\""));
        let _ = fs::remove_dir_all(&spool.dir);
    }

    #[test]
    fn bound_evicts_oldest_and_seq_survives_reopen() {
        let spool = temp_spool("bound", 3);
        for i in 0..5u64 {
            spool
                .capture(RunId(i), "diameter", 504, "deadline", Duration::ZERO, "")
                .unwrap();
        }
        let entries = spool.list();
        assert_eq!(entries.len(), 3, "cap enforced");
        // Newest first: runs 4, 3, 2 survive; 0 and 1 were evicted.
        let runs: Vec<&str> = entries.iter().map(|e| e.run_id.as_str()).collect();
        assert_eq!(runs[0], "0000000000000004");
        assert_eq!(runs[2], "0000000000000002");

        let dir = spool.dir.clone();
        drop(spool);
        let reopened = Spool::open(dir.clone(), 3).unwrap();
        let name = reopened
            .capture(RunId(9), "batch", 200, "slow", Duration::ZERO, "")
            .unwrap();
        assert!(
            parse_seq(&name).unwrap() > 5,
            "sequence resumes past existing captures, got {name}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_rejects_traversal_shaped_names() {
        let spool = temp_spool("traversal", 2);
        assert!(spool.read("../etc/passwd").is_none());
        assert!(spool.read("capture-000001-x/../y.jsonl").is_none());
        assert!(spool.read("unrelated.txt").is_none());
        let _ = fs::remove_dir_all(&spool.dir);
    }
}
