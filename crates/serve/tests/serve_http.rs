//! Socket-level tests of `fdiam-serve`: a real `TcpStream` client
//! against a real bound server, covering the admission-control and
//! deadline semantics the ISSUE promises — 504 on expiry, 429 +
//! `Retry-After` shedding, LRU eviction order, and a graceful
//! shutdown that drains in-flight jobs.

mod common;

use common::{metrics_counter, post, request, wait_for_counter};
use fdiam_obs::json::{self, JsonValue};
use fdiam_serve::{AccessLog, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

#[test]
fn diameter_endpoint_matches_direct_run_and_caches() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let g = fdiam_cli::generate_graph("grid:30x30").unwrap();
    let expected = fdiam_core::run(&g, &fdiam_core::FdiamConfig::parallel())
        .result
        .diameter()
        .unwrap();

    let r = post(addr, "/v1/diameter", r#"{"spec": "grid:30x30"}"#);
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_u64("diameter"), u64::from(expected));
    assert_eq!(r.field_str("cache"), "miss");
    assert!(r
        .json()
        .get("connected")
        .and_then(JsonValue::as_bool)
        .unwrap());
    assert_eq!(r.field_u64("n"), 900);

    // Second hit on the same key is served from the cache; the serial
    // algorithm agrees with the parallel one.
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:30x30", "serial": true}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_u64("diameter"), u64::from(expected));
    assert_eq!(r.field_str("cache"), "hit");

    assert_eq!(metrics_counter(addr, "serve.cache_hits"), 1);
    assert!(
        metrics_counter(addr, "bfs.traversals") > 0,
        "runs feed the registry"
    );
    server.shutdown();
}

#[test]
fn eccentricities_endpoint_agrees_with_diameter() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // grid:1x50 is the 50-vertex path: diameter 49, radius ⌈49/2⌉.
    let body = r#"{"spec": "grid:1x50", "include_values": true}"#;
    let r = post(addr, "/v1/eccentricities", body);
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_u64("diameter"), 49);
    assert_eq!(r.field_u64("radius"), 25);
    let values = match r.json().get("eccentricities").cloned() {
        Some(JsonValue::Array(vs)) => vs,
        other => panic!("expected eccentricities array, got {other:?}"),
    };
    assert_eq!(values.len(), 50);
    assert_eq!(values[0].as_u64(), Some(49));

    let d = post(addr, "/v1/diameter", r#"{"spec": "grid:1x50"}"#);
    assert_eq!(d.field_u64("diameter"), 49);
    assert_eq!(
        d.field_str("cache"),
        "hit",
        "both endpoints share the cache"
    );
    server.shutdown();
}

#[test]
fn relabeled_requests_answer_in_original_ids_and_cache_separately() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // grid:1x20 is the 20-vertex path: ecc(v) = max(v, 19 - v) and the
    // only diametral pair is {0, 19}. Under "--order degree" the
    // kernels run on a relabeled CSR, so any leaked internal id would
    // break those identities.
    let body = r#"{"spec": "grid:1x20", "order": "degree", "include_values": true}"#;
    let r = post(addr, "/v1/eccentricities", body);
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_u64("diameter"), 19);
    let values = match r.json().get("eccentricities").cloned() {
        Some(JsonValue::Array(vs)) => vs,
        other => panic!("expected eccentricities array, got {other:?}"),
    };
    assert_eq!(values.len(), 20);
    for (v, e) in values.iter().enumerate() {
        let v = v as u64;
        assert_eq!(e.as_u64(), Some(v.max(19 - v)), "vertex {v}");
    }

    // Same spec + order → same cache entry; the diametral pair comes
    // back in original ids.
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:1x20", "order": "degree"}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_str("cache"), "hit");
    assert_eq!(r.field_u64("diameter"), 19);
    let mut pair: Vec<u64> = match r.json().get("diametral_pair").cloned() {
        Some(JsonValue::Array(vs)) => vs.iter().map(|v| v.as_u64().unwrap()).collect(),
        other => panic!("expected diametral_pair array, got {other:?}"),
    };
    pair.sort_unstable();
    assert_eq!(pair, vec![0, 19]);

    // Same spec, no order → a different CSR, a different cache entry.
    let r = post(addr, "/v1/diameter", r#"{"spec": "grid:1x20"}"#);
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_str("cache"), "miss");
    assert_eq!(r.field_u64("diameter"), 19);

    // Unknown orders are rejected up front.
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:1x20", "order": "hilbert"}"#,
    );
    assert_eq!(r.status, 400, "{}", r.body);
    let r = post(addr, "/v1/diameter", r#"{"spec": "grid:1x20", "order": 3}"#);
    assert_eq!(r.status, 400, "{}", r.body);

    server.shutdown();
}

#[test]
fn expired_deadline_is_answered_504_without_computing() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let t0 = Instant::now();
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:200x200", "timeout_secs": 0}"#,
    );
    let elapsed = t0.elapsed();
    assert_eq!(r.status, 504, "{}", r.body);
    assert!(
        elapsed < Duration::from_secs(2),
        "504 must come promptly, took {elapsed:?}"
    );
    assert_eq!(metrics_counter(addr, "serve.responses_deadline"), 1);
    // The graph was never loaded, let alone traversed.
    assert_eq!(metrics_counter(addr, "serve.cache_misses"), 0);
    server.shutdown();
}

#[test]
fn deadline_expiring_mid_job_is_answered_504() {
    let config = ServeConfig {
        allow_test_hooks: true,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // The job outlives its budget; the worker observes the token
    // mid-flight and gives up within the polling quantum.
    let t0 = Instant::now();
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:5x5", "timeout_secs": 0.05, "sleep_ms": 5000}"#,
    );
    assert_eq!(r.status, 504, "{}", r.body);
    assert!(t0.elapsed() < Duration::from_secs(2));
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        allow_test_hooks: true,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // A occupies the single worker …
    let a = std::thread::spawn(move || {
        post(
            addr,
            "/v1/diameter",
            r#"{"spec": "grid:2x2", "sleep_ms": 1500}"#,
        )
    });
    wait_for_counter(addr, "serve.jobs_dequeued", 1);
    // … B fills the queue of depth 1 …
    let b = std::thread::spawn(move || {
        post(
            addr,
            "/v1/diameter",
            r#"{"spec": "grid:2x2", "sleep_ms": 10}"#,
        )
    });
    wait_for_counter(addr, "serve.jobs_enqueued", 2);
    // … so C is shed immediately with 429 + Retry-After.
    let t0 = Instant::now();
    let c = post(addr, "/v1/diameter", r#"{"spec": "grid:2x2"}"#);
    assert_eq!(c.status, 429, "{}", c.body);
    // Retry-After is derived from the observed drain rate: integer
    // seconds, clamped to [1, 60].
    let retry_after: u64 = c
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is integer seconds");
    assert!((1..=60).contains(&retry_after), "got {retry_after}");
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "shedding is immediate"
    );
    assert_eq!(metrics_counter(addr, "serve.jobs_shed"), 1);

    // The admitted jobs still complete normally.
    assert_eq!(a.join().unwrap().status, 200);
    assert_eq!(b.join().unwrap().status, 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_and_queued_jobs() {
    let config = ServeConfig {
        workers: 1,
        queue_depth: 4,
        allow_test_hooks: true,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let a = std::thread::spawn(move || {
        post(
            addr,
            "/v1/diameter",
            r#"{"spec": "grid:3x3", "sleep_ms": 400}"#,
        )
    });
    wait_for_counter(addr, "serve.jobs_dequeued", 1);
    let b = std::thread::spawn(move || {
        post(
            addr,
            "/v1/diameter",
            r#"{"spec": "grid:3x3", "sleep_ms": 50}"#,
        )
    });
    wait_for_counter(addr, "serve.jobs_enqueued", 2);

    // Shutdown drains: both the in-flight A and the queued B get real
    // answers, and shutdown() only returns after they did.
    server.shutdown();
    assert_eq!(a.join().unwrap().status, 200);
    assert_eq!(b.join().unwrap().status, 200);

    // The listener is gone: new connections fail outright (or are
    // closed without a byte, depending on how fast the OS reaps).
    if let Ok(mut s) = TcpStream::connect(addr) {
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut buf = String::new();
        assert!(
            s.read_to_string(&mut buf).is_err() || buf.is_empty(),
            "server answered after shutdown: {buf:?}"
        );
    }
}

#[test]
fn lru_cache_evicts_in_recency_order_under_byte_budget() {
    use fdiam_graph::generators::grid2d;
    // Three ~equal graphs; budget admits any two but never all three.
    let sizes = [
        grid2d(20, 20).memory_bytes(),
        grid2d(4, 100).memory_bytes(),
        grid2d(2, 200).memory_bytes(),
    ];
    let total: usize = sizes.iter().sum();
    let budget = total - sizes.iter().min().unwrap() / 2;
    let config = ServeConfig {
        cache_bytes: budget,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let probe = |spec: &str| {
        let r = post(addr, "/v1/diameter", &format!(r#"{{"spec": "{spec}"}}"#));
        assert_eq!(r.status, 200, "{}", r.body);
        r.field_str("cache")
    };

    let (a, b, c) = ("grid:20x20", "grid:4x100", "grid:2x200");
    assert_eq!(probe(a), "miss");
    assert_eq!(probe(a), "hit");
    assert_eq!(probe(b), "miss"); // cache: [a, b]
    assert_eq!(probe(a), "hit"); //  cache: [b, a]
    assert_eq!(probe(c), "miss"); // evicts the LRU entry b → [a, c]
    assert_eq!(probe(b), "miss"); // evicts a → [c, b]
    assert_eq!(probe(c), "hit"); //  c survived both insertions
    server.shutdown();
}

#[test]
fn run_id_correlates_response_access_log_and_metrics() {
    let (access_log, log_buf) = AccessLog::buffer();
    let config = ServeConfig {
        access_log,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let r = post(addr, "/v1/diameter", r#"{"spec": "grid:10x10"}"#);
    assert_eq!(r.status, 200, "{}", r.body);
    let run_id = r.field_str("run_id");
    assert_eq!(run_id.len(), 16, "run id is 16 hex chars: {run_id}");
    assert!(run_id.chars().all(|c| c.is_ascii_hexdigit()));

    // The access-log line for this request carries the same id …
    let log = String::from_utf8(log_buf.lock().unwrap().clone()).unwrap();
    let line = log
        .lines()
        .find(|l| l.contains(&run_id))
        .unwrap_or_else(|| panic!("no access-log line with run {run_id} in {log}"));
    let entry = json::parse(line).expect("access log line is JSON");
    assert_eq!(
        entry.get("run_id").and_then(JsonValue::as_str),
        Some(&*run_id)
    );
    assert_eq!(
        entry.get("endpoint").and_then(JsonValue::as_str),
        Some("diameter")
    );
    assert_eq!(entry.get("status").and_then(JsonValue::as_u64), Some(200));
    assert_eq!(entry.get("cache").and_then(JsonValue::as_str), Some("miss"));
    assert_eq!(
        entry.get("deadline").and_then(JsonValue::as_str),
        Some("ok")
    );
    assert!(entry
        .get("queue_wait_us")
        .and_then(JsonValue::as_u64)
        .is_some());

    // … and so does the scraped metrics label.
    let m = request(addr, "GET", "/metrics", "");
    assert_eq!(m.status, 200);
    assert_eq!(
        m.header("content-type"),
        Some(fdiam_obs::PROMETHEUS_CONTENT_TYPE)
    );
    assert!(
        m.body.contains(&format!(
            "fdiam_serve_last_run_info{{run_id=\"{run_id}\"}} 1"
        )),
        "metrics lack the run-id label:\n{}",
        m.body
    );
    // The whole exposition passes the in-tree linter.
    let report = fdiam_obs::expo::lint(&m.body).expect("scraped /metrics lints clean");
    assert!(report.samples > 0);

    // The new run-telemetry gauges are exposed (and lint clean, above):
    // no run is in flight any more, and the last published snapshot was
    // the final zero-gap one.
    assert!(
        m.body.contains("fdiam_runs_in_flight 0"),
        "missing fdiam_runs_in_flight:\n{}",
        m.body
    );
    assert!(
        m.body.contains("fdiam_run_bounds_gap 0"),
        "missing fdiam_run_bounds_gap:\n{}",
        m.body
    );

    // The finished run is gone from the registry: 404, empty list.
    let d = request(addr, "GET", &format!("/v1/runs/{run_id}"), "");
    assert_eq!(d.status, 404, "{}", d.body);
    let l = request(addr, "GET", "/v1/runs", "");
    assert_eq!(l.status, 200);
    assert_eq!(l.field_u64("in_flight"), 0);
    server.shutdown();
}

#[test]
fn in_flight_run_is_observable_with_certified_bounds() {
    // The acceptance walkthrough: while a deliberately slow request
    // (a torus — F-Diam's worst case — computed serially) is in
    // flight, `GET /v1/runs` must show it with a live bounds snapshot
    // satisfying `lb ≤ final diameter ≤ ub`, and the run id must agree
    // across the runs endpoint, the response body, the access log, and
    // the metrics label. Once the response lands, the run vanishes.
    let (access_log, log_buf) = AccessLog::buffer();
    let config = ServeConfig {
        workers: 1,
        access_log,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Growing sizes: retry with a slower graph if the run finished
    // before a poll landed (fast machines, release profile).
    let mut observed = None;
    for spec in ["torus:60x60", "torus:90x90", "torus:120x120"] {
        let body = format!(r#"{{"spec": "{spec}", "serial": true}}"#);
        let handle = {
            let body = body.clone();
            std::thread::spawn(move || post(addr, "/v1/diameter", &body))
        };
        // Poll the runs endpoint until a snapshot shows up.
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut caught = None;
        while caught.is_none() && Instant::now() < deadline && !handle.is_finished() {
            let l = request(addr, "GET", "/v1/runs", "");
            assert_eq!(l.status, 200, "{}", l.body);
            if l.field_u64("in_flight") >= 1 && l.body.contains("\"latest\":{") {
                caught = Some(l);
            }
        }
        let response = handle.join().expect("request thread");
        assert_eq!(response.status, 200, "{}", response.body);
        if let Some(list) = caught {
            observed = Some((list, response));
            break;
        }
    }
    let (list, response) = observed.expect("never caught a run in flight");

    // The list shows exactly our run (single worker, single client).
    let run_id = {
        let needle = "\"run_id\":\"";
        let at = list.body.find(needle).expect("run_id in list") + needle.len();
        list.body[at..at + 16].to_string()
    };
    assert_eq!(response.field_str("run_id"), run_id, "{}", list.body);
    assert!(list.body.contains("\"algorithm\":\"fdiam-serial\""));

    // Snapshot bracketed the diameter the response then reported.
    // (One run in the list, so a raw-body scan for `latest.<key>` is
    // unambiguous.)
    let snap_of = |key: &str| -> u64 {
        let needle = format!("\"{key}\":");
        let at = list.body.find(&needle).unwrap() + needle.len();
        list.body[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    };
    let (lb, ub) = (snap_of("lb"), snap_of("ub"));
    let diameter = response.field_u64("diameter");
    assert!(lb <= ub, "lb {lb} > ub {ub}");
    assert!(
        lb <= diameter && diameter <= ub,
        "snapshot [{lb}, {ub}] does not bracket diameter {diameter}"
    );

    // Access log and metrics agree on the id.
    let log = String::from_utf8(log_buf.lock().unwrap().clone()).unwrap();
    assert!(
        log.lines().any(|l| l.contains(&run_id)),
        "no access-log line with run {run_id} in {log}"
    );
    let m = request(addr, "GET", "/metrics", "");
    assert!(m.body.contains(&format!(
        "fdiam_serve_last_run_info{{run_id=\"{run_id}\"}} 1"
    )));

    // The finished run is deregistered.
    let d = request(addr, "GET", &format!("/v1/runs/{run_id}"), "");
    assert_eq!(d.status, 404, "{}", d.body);
    server.shutdown();
}

#[test]
fn cancelled_run_leaves_no_registry_entry() {
    // A deadline that fires mid-compute emits run_start but never
    // run_end; the worker's explicit deregister must still clear the
    // registry, and the scrape-time gauge must read 0.
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "torus:80x80", "serial": true, "timeout_secs": 0.05}"#,
    );
    assert_eq!(r.status, 504, "{}", r.body);

    let l = request(addr, "GET", "/v1/runs", "");
    assert_eq!(l.field_u64("in_flight"), 0, "{}", l.body);
    let m = request(addr, "GET", "/metrics", "");
    assert!(
        m.body.contains("fdiam_runs_in_flight 0"),
        "gauge leaked:\n{}",
        m.body
    );
    server.shutdown();
}

#[test]
fn runs_endpoint_rejects_unknown_and_malformed_ids() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    for id in ["0123456789abcdef", "nope", "012345"] {
        let r = request(addr, "GET", &format!("/v1/runs/{id}"), "");
        assert_eq!(r.status, 404, "id '{id}' → {}", r.status);
    }
    let l = request(addr, "GET", "/v1/runs", "");
    assert_eq!(l.status, 200);
    assert_eq!(l.field_u64("in_flight"), 0);
    server.shutdown();
}

#[test]
fn directed_diameter_requests_are_served_and_cached_separately() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let dir = std::env::temp_dir().join("fdiam_serve_directed_test");
    std::fs::create_dir_all(&dir).unwrap();
    // A directed 6-cycle: one-way diameter 5; read undirected it's 3.
    let cyc = dir.join("cycle.txt");
    std::fs::write(&cyc, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n").unwrap();
    let cyc = cyc.to_string_lossy().into_owned();

    let body = format!(r#"{{"path": "{cyc}", "directed": true}}"#);
    let r = post(addr, "/v1/diameter", &body);
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_u64("diameter"), 5);
    assert_eq!(r.field_u64("radius"), 5);
    assert_eq!(r.field_u64("sccs"), 1);
    assert_eq!(r.field_str("cache"), "miss");
    assert!(r
        .json()
        .get("strongly_connected")
        .and_then(JsonValue::as_bool)
        .unwrap());

    // Same body again: served from the cache.
    let r = post(addr, "/v1/diameter", &body);
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_str("cache"), "hit");

    // The undirected read of the same file is a different cache entry
    // with the symmetrized answer.
    let und = format!(r#"{{"path": "{cyc}"}}"#);
    let r = post(addr, "/v1/diameter", &und);
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_str("cache"), "miss");
    assert_eq!(r.field_u64("diameter"), 3);

    // A DAG: infinite diameter surfaces as null, the radius stays
    // finite (vertex 0 reaches everything).
    let dag = dir.join("dag.txt");
    std::fs::write(&dag, "0 1\n1 2\n2 3\n").unwrap();
    let dag = dag.to_string_lossy().into_owned();
    let r = post(
        addr,
        "/v1/diameter",
        &format!(r#"{{"path": "{dag}", "directed": true}}"#),
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(
        r.body.contains("\"diameter\":null"),
        "diameter must be null: {}",
        r.body
    );
    assert_eq!(r.field_u64("radius"), 3);
    assert_eq!(r.field_u64("central_vertex"), 0);
    assert_eq!(r.field_u64("sccs"), 4);

    // directed composes with order; ids still leave in original space.
    let r = post(
        addr,
        "/v1/diameter",
        &format!(r#"{{"path": "{dag}", "directed": true, "order": "bfs"}}"#),
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_str("cache"), "miss");
    assert_eq!(r.field_u64("central_vertex"), 0);

    // Bad uses are rejected up front.
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:2x2", "directed": "yes"}"#,
    );
    assert_eq!(r.status, 400, "{}", r.body);
    let r = post(
        addr,
        "/v1/eccentricities",
        r#"{"spec": "grid:2x2", "directed": true}"#,
    );
    assert_eq!(r.status, 400, "{}", r.body);

    std::fs::remove_dir_all(&dir).ok();
    server.shutdown();
}

#[test]
fn bad_requests_are_400_not_500() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    for (path, body) in [
        ("/v1/diameter", "not json at all"),
        ("/v1/diameter", "{}"),
        ("/v1/diameter", r#"{"spec": "grid:2x2", "path": "x.gr"}"#),
        (
            "/v1/diameter",
            r#"{"spec": "grid:2x2", "timeout_secs": -1}"#,
        ),
        ("/v1/diameter", r#"{"spec": "grid:2x2", "sleep_ms": 5}"#), // hooks off
        ("/v1/diameter", r#"{"spec": "grid:oops"}"#),
        ("/v1/eccentricities", r#"{"path": "/no/such/file.gr"}"#),
    ] {
        let r = post(addr, path, body);
        assert_eq!(r.status, 400, "{path} {body} → {} {}", r.status, r.body);
        assert!(!r.field_str("error").is_empty());
    }

    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "DELETE", "/healthz", "").status, 405);

    let h = request(addr, "GET", "/healthz", "");
    assert_eq!(h.status, 200);
    assert_eq!(h.field_str("status"), "ok");
    server.shutdown();
}
