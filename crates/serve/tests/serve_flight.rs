//! Integration tests for the flight-recorder forensics stack: the
//! always-on ring behind `GET /v1/debug/flight`, tail-sampled captures
//! behind `GET /v1/debug/slow`, the panic post-mortem hook, the
//! `write_error` access-log outcome, and the `fdiam_build_info` gauge.
//! Round-trips go through the real `fdiam-trace` parsers — the dump
//! format and the analyzers are one contract.

mod common;

use common::{metrics_counter, post, request, wait_for_counter};
use fdiam_obs::json::{parse, JsonValue};
use fdiam_serve::{ServeConfig, Server};
use fdiam_trace::{flight_report, Trace};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fresh per-test scratch directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fdiam-flight-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Sends a POST and returns the raw stream without reading a response
/// — for requests that deliberately never get one (panics, early
/// hangups).
fn raw_post(addr: std::net::SocketAddr, path: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    let req = format!(
        "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(req.as_bytes()).unwrap();
    stream.flush().unwrap();
    stream
}

#[test]
fn flight_dump_round_trips_through_trace_tools() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let d = post(addr, "/v1/diameter", r#"{"spec": "grid:30x30"}"#);
    assert_eq!(d.status, 200, "{}", d.body);
    assert_eq!(d.field_u64("diameter"), 58);

    // The ring was recording without anyone asking: the dump carries
    // the run's events in fdiam-trace JSONL.
    let dump = request(addr, "GET", "/v1/debug/flight", "");
    assert_eq!(dump.status, 200);
    assert_eq!(
        dump.header("content-type"),
        Some("application/jsonl")
    );
    assert!(
        dump.body
            .lines()
            .any(|l| l.contains("\"type\":\"bfs_start\"")),
        "no BFS activity in the ring:\n{}",
        dump.body
    );

    // Round-trip 1: the gap-tolerant generic parser accepts the dump.
    let trace = Trace::parse(&dump.body).unwrap_or_else(|e| panic!("Trace::parse: {e}"));
    assert!(
        !trace.runs.is_empty(),
        "no runs reconstructed from the ring"
    );
    let report = trace.report();
    assert!(report.contains("run "), "{report}");

    // Round-trip 2: the flight analyzer accounts for every shard and
    // ranks traversals.
    let forensics = flight_report(&dump.body).unwrap();
    assert!(forensics.contains("flight dump:"), "{forensics}");
    assert!(forensics.contains("shard "), "{forensics}");
    assert!(
        !forensics.contains("MARKER MISMATCH") && !forensics.contains("unexplained"),
        "seq accounting broken on a live dump:\n{forensics}"
    );

    // With no spool configured the slow listing says so instead of 404ing.
    let slow = request(addr, "GET", "/v1/debug/slow", "");
    assert_eq!(slow.status, 200);
    assert_eq!(
        slow.json().get("enabled").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert_eq!(slow.field_u64("count"), 0);
    assert_eq!(request(addr, "GET", "/v1/debug/slow/nope", "").status, 404);
}

#[test]
fn deadline_and_slow_requests_tail_sample_into_spool() {
    let dir = temp_dir("spool");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            allow_test_hooks: true,
            spool_dir: Some(dir.clone()),
            slow_threshold: Some(Duration::from_millis(1)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A run that dies at its deadline spools its flight slice...
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:20x20", "timeout_secs": 0.05, "sleep_ms": 400}"#,
    );
    assert_eq!(r.status, 504, "{}", r.body);

    // ...and a run that finishes but blows the latency threshold spools
    // as "slow".
    let ok = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:20x20", "sleep_ms": 60}"#,
    );
    assert_eq!(ok.status, 200, "{}", ok.body);

    let list = request(addr, "GET", "/v1/debug/slow", "");
    assert_eq!(list.status, 200);
    assert_eq!(
        list.json().get("enabled").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(list.field_u64("count"), 2, "{}", list.body);
    let captures = match list.json().get("captures") {
        Some(JsonValue::Array(items)) => items.clone(),
        other => panic!("captures: {other:?}"),
    };
    // Newest first: the slow 200 capture, then the deadline 504.
    let reason = |c: &JsonValue| {
        c.get("reason")
            .and_then(JsonValue::as_str)
            .unwrap()
            .to_string()
    };
    let status = |c: &JsonValue| c.get("status").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(
        (reason(&captures[0]).as_str(), status(&captures[0])),
        ("slow", 200)
    );
    assert_eq!(
        (reason(&captures[1]).as_str(), status(&captures[1])),
        ("deadline", 504)
    );

    // Each capture fetches by name and renders through the analyzer.
    for c in &captures {
        let name = c.get("name").and_then(JsonValue::as_str).unwrap();
        let body = request(addr, "GET", &format!("/v1/debug/slow/{name}"), "");
        assert_eq!(body.status, 200, "{name}");
        let first = parse(body.body.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("type").and_then(JsonValue::as_str),
            Some("flight_capture")
        );
        let forensics = flight_report(&body.body).unwrap();
        assert!(forensics.contains("capture: run "), "{forensics}");
    }

    // The per-reason counter moved once each, under its labeled name.
    assert_eq!(metrics_counter(addr, "flight.captures{reason=deadline}"), 1);
    assert_eq!(metrics_counter(addr, "flight.captures{reason=slow}"), 1);
    let prom = request(addr, "GET", "/metrics", "").body;
    assert!(
        prom.contains("fdiam_flight_captures_total{reason=\"deadline\"} 1"),
        "{prom}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_leaves_a_parseable_post_mortem_naming_the_run() {
    let dir = temp_dir("panic");
    let path = dir.join("post-mortem.jsonl");
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            allow_test_hooks: true,
            post_mortem_path: Some(path.clone()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // The panicking worker never answers; tolerate the hangup.
    let mut stream = raw_post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:10x10", "panic": true}"#,
    );
    let mut sink = Vec::new();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.read_to_end(&mut sink);

    // The process panic hook writes the post-mortem as the worker dies.
    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        match std::fs::read_to_string(&path) {
            Ok(t) if t.contains("post_mortem") => break t,
            _ if Instant::now() > deadline => panic!("no post-mortem at {}", path.display()),
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    };

    // Header names the panic; the snapshot names the in-flight run the
    // worker died holding.
    let header = parse(text.lines().next().unwrap()).unwrap();
    assert_eq!(
        header.get("type").and_then(JsonValue::as_str),
        Some("post_mortem")
    );
    let message = header
        .get("message")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert!(message.contains("induced worker panic"), "{message}");
    let run_id = message.split("run=").nth(1).unwrap().trim().to_string();
    let in_flight = text
        .lines()
        .map(|l| parse(l).unwrap())
        .find(|v| v.get("type").and_then(JsonValue::as_str) == Some("in_flight_run"))
        .unwrap_or_else(|| panic!("no in_flight_run line in\n{text}"));
    assert_eq!(
        in_flight.get("run_id").and_then(JsonValue::as_str),
        Some(run_id.as_str()),
        "{text}"
    );
    assert_eq!(
        in_flight.get("algorithm").and_then(JsonValue::as_str),
        Some("panic_test")
    );

    // The whole file renders through the analyzer...
    let forensics = flight_report(&text).unwrap();
    assert!(forensics.contains("post-mortem: thread"), "{forensics}");
    assert!(
        forensics.contains("in-flight at panic: run "),
        "{forensics}"
    );
    // ...and the generic parser skips the metadata lines without complaint.
    Trace::parse(&text).unwrap_or_else(|e| panic!("Trace::parse: {e}"));

    // The surviving worker keeps serving.
    let d = post(addr, "/v1/diameter", r#"{"spec": "grid:10x10"}"#);
    assert_eq!(d.status, 200, "{}", d.body);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_up_client_surfaces_as_write_error_not_silent_success() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            allow_test_hooks: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // A batch big enough that its response (~180 KiB) cannot fit the
    // socket send buffer in one write — the mid-body write must observe
    // the peer reset. The sleep gives the client's FIN time to land
    // before the server starts writing.
    let mut body = String::from(r#"{"spec": "grid:30x30", "sleep_ms": 200, "queries": ["#);
    for i in 0..4096 {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(r#"{{"type": "ecc", "source": {}}}"#, i % 900));
    }
    body.push_str("]}");
    let stream = raw_post(addr, "/v1/batch", &body);
    drop(stream); // hang up while the worker is still asleep

    wait_for_counter(addr, "serve.write_errors", 1);
    assert!(request(addr, "GET", "/metrics", "")
        .body
        .contains("fdiam_serve_write_errors_total 1"),);
}

#[test]
fn build_info_gauge_reports_provenance() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let prom = request(addr, "GET", "/metrics", "").body;
    let line = prom
        .lines()
        .find(|l| l.starts_with("fdiam_build_info{"))
        .unwrap_or_else(|| panic!("no fdiam_build_info in\n{prom}"));
    for label in ["rev=\"", "rustc=\"", "profile=\""] {
        assert!(line.contains(label), "{line}");
    }
    assert!(line.ends_with(" 1"), "{line}");
}
