//! Socket-level test helpers shared by the `fdiam-serve` integration
//! suites: a minimal HTTP/1.1 client over `TcpStream` plus metrics
//! polling against the summary exposition.

// Each integration-test binary compiles this module separately and
// uses a different subset of it.
#![allow(dead_code)]

use fdiam_obs::json::{self, JsonValue};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn json(&self) -> JsonValue {
        json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON body: {e}\n{}", self.body))
    }

    pub fn field_u64(&self, key: &str) -> u64 {
        self.json()
            .get(key)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("no u64 field '{key}' in {}", self.body))
    }

    pub fn field_str(&self, key: &str) -> String {
        self.json()
            .get(key)
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("no string field '{key}' in {}", self.body))
            .to_string()
    }
}

pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

pub fn parse_response(raw: &str) -> Response {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

pub fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    request(addr, "POST", path, body)
}

/// Reads the named counter out of the legacy summary rendering at
/// `GET /metrics?format=summary` (rendered as `name<padding> value`).
pub fn metrics_counter(addr: SocketAddr, name: &str) -> u64 {
    let text = request(addr, "GET", "/metrics?format=summary", "").body;
    text.lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Polls `/metrics` until `name` reaches `want` (the acceptor stays
/// responsive while workers are busy, which is itself part of the
/// design under test).
pub fn wait_for_counter(addr: SocketAddr, name: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if metrics_counter(addr, name) >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!(
        "{name} never reached {want} (now {})",
        metrics_counter(addr, name)
    );
}
