//! Integration tests for the "real traffic" serving features: the
//! named-graph registry, request coalescing, batch queries, anytime
//! certified bounds, and the structured cache key's handling of
//! hostile path bytes. Each test boots a real server on an ephemeral
//! port and speaks HTTP over `TcpStream`.

mod common;

use common::{metrics_counter, post, request, wait_for_counter};
use fdiam_obs::json::JsonValue;
use fdiam_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// `GET /v1/runs` → the `in_flight` count.
fn runs_in_flight(addr: std::net::SocketAddr) -> u64 {
    request(addr, "GET", "/v1/runs", "").field_u64("in_flight")
}

#[test]
fn named_graph_registry_lifecycle() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // Register with preload (the default) + pin: the graph is resident
    // before the first query ever arrives.
    let r = request(
        addr,
        "PUT",
        "/v1/graphs/campus",
        r#"{"spec": "grid:20x30", "pin": true}"#,
    );
    assert_eq!(r.status, 201, "{}", r.body);
    assert_eq!(r.field_str("name"), "campus");
    assert_eq!(r.field_str("reference"), "spec:grid:20x30");
    let j = r.json();
    assert_eq!(j.get("pinned").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(j.get("resident").and_then(JsonValue::as_bool), Some(true));
    assert!(r.field_u64("resident_bytes") > 0);

    let list = request(addr, "GET", "/v1/graphs", "");
    assert_eq!(list.status, 200);
    assert_eq!(list.field_u64("count"), 1);
    assert!(list.body.contains("campus"), "{}", list.body);

    // Querying by name hits the preloaded entry — zero cold misses.
    let d = post(addr, "/v1/diameter", r#"{"graph": "campus"}"#);
    assert_eq!(d.status, 200, "{}", d.body);
    assert_eq!(d.field_u64("diameter"), 48); // open 20×30 grid: 19 + 29
    assert_eq!(d.field_str("cache"), "hit");
    // The preload happened on the PUT path, not the query path: the
    // query-path miss counter never moves.
    assert_eq!(metrics_counter(addr, "serve.cache_misses"), 0);
    assert_eq!(metrics_counter(addr, "serve.cache_hits"), 1);

    // Per-name stats tracked the routed request.
    let detail = request(addr, "GET", "/v1/graphs/campus", "");
    assert_eq!(detail.status, 200);
    assert_eq!(detail.field_u64("requests"), 1);
    assert_eq!(detail.field_u64("hits"), 1);
    assert_eq!(detail.field_u64("misses"), 0);

    // The registry gauge is visible under its mangled Prometheus name.
    let prom = request(addr, "GET", "/metrics", "").body;
    let gauge = prom
        .lines()
        .find(|l| l.starts_with("fdiam_registry_graphs"))
        .unwrap_or_else(|| panic!("no fdiam_registry_graphs in\n{prom}"));
    assert_eq!(
        gauge.split_whitespace().last().and_then(|v| v.parse().ok()),
        Some(1.0)
    );
    assert!(
        prom.lines()
            .any(|l| l.starts_with("fdiam_coalesced_requests_total")),
        "coalescing counter must be registered even at zero:\n{prom}"
    );

    // A name and an inline reference in the same request is ambiguous.
    let r = post(
        addr,
        "/v1/diameter",
        r#"{"graph": "campus", "spec": "grid:2x2"}"#,
    );
    assert_eq!(r.status, 400, "{}", r.body);
    // Unknown names fail fast, before any queueing.
    let r = post(addr, "/v1/diameter", r#"{"graph": "ghost"}"#);
    assert_eq!(r.status, 400, "{}", r.body);
    // Path segments that are not valid names are rejected.
    let r = request(addr, "PUT", "/v1/graphs/a/b", r#"{"spec": "grid:2x2"}"#);
    assert_eq!(r.status, 400, "{}", r.body);

    // Re-registering the same name replaces it: 200, not 201.
    let r = request(
        addr,
        "PUT",
        "/v1/graphs/campus",
        r#"{"spec": "grid:10x10"}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_str("reference"), "spec:grid:10x10");
    let d = post(addr, "/v1/diameter", r#"{"graph": "campus"}"#);
    assert_eq!(d.field_u64("diameter"), 18);

    // Deleting evicts the resident bytes (nothing else references them).
    let r = request(addr, "DELETE", "/v1/graphs/campus", "");
    assert_eq!(r.status, 200, "{}", r.body);
    let j = r.json();
    assert_eq!(j.get("removed").and_then(JsonValue::as_str), Some("campus"));
    assert_eq!(j.get("evicted").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(request(addr, "DELETE", "/v1/graphs/campus", "").status, 404);
    assert_eq!(request(addr, "GET", "/v1/graphs/campus", "").status, 404);
    assert_eq!(
        post(addr, "/v1/diameter", r#"{"graph": "campus"}"#).status,
        400
    );

    server.shutdown();
}

#[test]
fn literal_hash_in_path_is_taken_verbatim() {
    // Regression: the old cache keyed graphs by a string with `#order=`
    // / `#directed` suffixes, so a file whose *name* contains `#` could
    // collide with another entry's parameter-suffixed key. The
    // structured key takes the reference verbatim.
    let dir = std::env::temp_dir().join(format!("fdiam-traffic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chain#directed.el");
    std::fs::write(&path, "0 1\n1 2\n2 3\n3 4\n4 5\n").unwrap();
    let path = path.to_str().unwrap().to_string();

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // Undirected: the 6-vertex path graph, diameter 5 — only correct if
    // the path was not truncated at the `#`.
    let r = post(addr, "/v1/diameter", &format!(r#"{{"path": "{path}"}}"#));
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_u64("diameter"), 5);
    assert_eq!(r.field_str("cache"), "miss");

    // The same file as a digraph: one-way arcs, not strongly connected,
    // so the directed diameter is null — and it is a *separate* cache
    // entry, not a collision with the undirected one.
    let r = post(
        addr,
        "/v1/diameter",
        &format!(r#"{{"path": "{path}", "directed": true}}"#),
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(matches!(r.json().get("diameter"), Some(JsonValue::Null)));
    assert_eq!(r.field_str("cache"), "miss");

    // A third key: same file, degree order.
    let r = post(
        addr,
        "/v1/diameter",
        &format!(r#"{{"path": "{path}", "order": "degree"}}"#),
    );
    assert_eq!(r.field_u64("diameter"), 5);
    assert_eq!(r.field_str("cache"), "miss");
    assert_eq!(metrics_counter(addr, "serve.cache_misses"), 3);

    // And the original key is still resident.
    let r = post(addr, "/v1/diameter", &format!(r#"{{"path": "{path}"}}"#));
    assert_eq!(r.field_str("cache"), "hit");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coalescing_storm_shares_one_run() {
    let config = ServeConfig {
        workers: 2,
        queue_depth: 16,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // The leader must still be mid-compute when the followers are
    // dequeued, so retry on progressively slower (torus = F-Diam's
    // vertex-transitive worst case) specs until the timing holds.
    // Sized so a debug-build serial run takes whole seconds — long
    // enough for the storm to land, short enough for the followers'
    // client read timeout.
    for spec in ["torus:48x48", "torus:72x72", "torus:96x96"] {
        let base_ok = metrics_counter(addr, "serve.responses_ok");
        let base_dequeued = metrics_counter(addr, "serve.jobs_dequeued");
        let base_coalesced = metrics_counter(addr, "coalesced_requests");
        let base_misses = metrics_counter(addr, "serve.cache_misses");
        let body = format!(r#"{{"spec": "{spec}", "serial": true}}"#);

        let leader = {
            let body = body.clone();
            std::thread::spawn(move || post(addr, "/v1/diameter", &body))
        };
        // Wait for the leader's run to register (or finish, on a
        // machine too fast for this spec — then try the next one).
        let t0 = Instant::now();
        let observed_in_flight = loop {
            if runs_in_flight(addr) >= 1 {
                break true;
            }
            if metrics_counter(addr, "serve.responses_ok") > base_ok {
                break false;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "leader neither registered nor finished"
            );
            std::thread::sleep(Duration::from_millis(2));
        };

        let followers: Vec<_> = (0..4)
            .map(|_| {
                let body = body.clone();
                std::thread::spawn(move || post(addr, "/v1/diameter", &body))
            })
            .collect();
        wait_for_counter(addr, "serve.jobs_dequeued", base_dequeued + 5);
        // Coalesced followers park on the leader's flight: the runs
        // endpoint never shows more than the single shared run.
        assert!(runs_in_flight(addr) <= 1);

        let responses: Vec<_> = std::iter::once(leader)
            .chain(followers)
            .map(|t| t.join().unwrap())
            .collect();
        for r in &responses {
            assert_eq!(r.status, 200, "{}", r.body);
        }
        let run_ids: Vec<_> = responses.iter().map(|r| r.field_str("run_id")).collect();
        let all_same = run_ids.iter().all(|id| *id == run_ids[0]);
        if !(observed_in_flight && all_same) {
            continue; // leader finished before the storm landed; go bigger
        }

        // One BFS campaign answered all five requests.
        assert_eq!(
            metrics_counter(addr, "coalesced_requests") - base_coalesced,
            4
        );
        assert_eq!(metrics_counter(addr, "serve.cache_misses") - base_misses, 1);
        let g = fdiam_cli::generate_graph(spec.strip_prefix("spec:").unwrap_or(spec))
            .unwrap_or_else(|_| panic!("bad spec {spec}"));
        let expected = fdiam_core::run(&g, &fdiam_core::FdiamConfig::serial());
        for r in &responses {
            assert_eq!(
                r.field_u64("diameter"),
                u64::from(expected.result.diameter().unwrap())
            );
            assert_eq!(
                r.field_u64("traversals") as usize,
                expected.stats.ecc_computations,
                "coalesced responses describe the leader's single serial run"
            );
        }
        assert_eq!(runs_in_flight(addr), 0);
        server.shutdown();
        return;
    }
    panic!("leader finished before followers arrived on every spec size");
}

/// Runs one anytime request and returns the response, or `None` if the
/// run completed inside the deadline (machine too fast for this size).
fn try_anytime(addr: std::net::SocketAddr, body: &str) -> Option<common::Response> {
    let r = post(addr, "/v1/diameter", body);
    assert_ne!(
        r.status, 504,
        "anytime deadline with zero certified BFS: {}",
        r.body
    );
    assert_eq!(r.status, 200, "{}", r.body);
    match r.json().get("anytime").and_then(JsonValue::as_bool) {
        Some(true) => Some(r),
        _ => None, // completed — the body is a normal diameter answer
    }
}

fn assert_anytime_bracket(r: &common::Response, true_diameter: u64, n: u64) {
    let j = r.json();
    assert_eq!(j.get("complete").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(r.field_str("status"), "deadline_expired");
    assert_eq!(r.field_str("phase"), "cancelled");
    let (lb, ub) = (r.field_u64("lb"), r.field_u64("ub"));
    assert!(lb >= 1, "a completed BFS certifies a non-trivial lb");
    assert!(
        lb <= true_diameter && true_diameter <= ub,
        "certified bracket [{lb}, {ub}] must contain the true diameter {true_diameter}"
    );
    assert_eq!(r.field_u64("gap"), ub - lb);
    assert!(r.field_u64("bfs_count") >= 1);
    assert_eq!(r.field_u64("n"), n);
    assert_eq!(r.field_str("run_id").len(), 16);
}

#[test]
fn anytime_deadline_returns_certified_bounds() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // Anchor the closed form this test leans on: an S×S torus (S even)
    // has diameter exactly S.
    let g = fdiam_cli::generate_graph("torus:30x30").unwrap();
    assert_eq!(
        fdiam_core::run(&g, &fdiam_core::FdiamConfig::serial())
            .result
            .diameter(),
        Some(30)
    );

    for s in [160u64, 220, 280] {
        let body = format!(
            r#"{{"spec": "torus:{s}x{s}", "serial": true, "timeout_secs": 0.4, "anytime": true}}"#
        );
        let Some(r) = try_anytime(addr, &body) else {
            continue; // the run beat a 0.4 s deadline; go bigger
        };
        assert_anytime_bracket(&r, s, s * s);
        // The reaped run is gone: anytime responses don't leak registry
        // entries.
        assert_eq!(runs_in_flight(addr), 0);
        server.shutdown();
        return;
    }
    panic!("every torus size finished inside a 0.4 s deadline");
}

#[test]
fn anytime_directed_deadline_returns_certified_bounds() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // A generator spec loads bidirected, so the directed diameter of
    // torus:SxS equals the undirected one: S.
    for s in [140u64, 190, 240] {
        let body = format!(
            r#"{{"spec": "torus:{s}x{s}", "directed": true, "serial": true, "timeout_secs": 0.5, "anytime": true}}"#
        );
        let Some(r) = try_anytime(addr, &body) else {
            continue;
        };
        assert_anytime_bracket(&r, s, s * s);
        assert_eq!(runs_in_flight(addr), 0);
        server.shutdown();
        return;
    }
    panic!("every directed torus size finished inside a 0.5 s deadline");
}

#[test]
fn batch_amortizes_queries_over_one_graph_access() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // Reference eccentricities from the serial kernel on the unordered
    // graph — batch answers must be in original-id space even though
    // the server computes on a degree-relabeled CSR.
    let g = fdiam_cli::generate_graph("grid:7x9").unwrap();
    let mut marks = fdiam_bfs::VisitMarks::new(g.num_vertices());
    let ecc = |v: u32, marks: &mut fdiam_bfs::VisitMarks| -> u64 {
        u64::from(fdiam_bfs::bfs_eccentricity_serial(&g, v, marks).eccentricity)
    };
    let (e0, e62, e31) = (ecc(0, &mut marks), ecc(62, &mut marks), ecc(31, &mut marks));
    assert_eq!(e0, 14); // corner of the open 7×9 grid: 6 + 8

    let r = post(
        addr,
        "/v1/batch",
        r#"{"spec": "grid:7x9", "order": "degree", "serial": true, "queries": [
            {"type": "ecc", "source": 0},
            {"type": "ecc", "source": 62},
            {"type": "diameter"},
            {"type": "ecc", "source": 0},
            {"type": "ecc", "source": 31}
        ]}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.field_u64("queries"), 5);
    assert_eq!(r.field_u64("unique_sources"), 3, "duplicate source deduped");
    assert_eq!(r.field_u64("ecc_bfs_waves"), 1, "3 lanes fit one bp64 wave");
    assert!(r.field_u64("diameter_traversals") >= 1);

    let results = match r.json().get("results").cloned() {
        Some(JsonValue::Array(rs)) => rs,
        other => panic!("expected results array, got {other:?}"),
    };
    assert_eq!(results.len(), 5, "one result per query, in request order");
    let ecc_of = |r: &JsonValue| {
        (
            r.get("source").and_then(JsonValue::as_u64).unwrap(),
            r.get("eccentricity").and_then(JsonValue::as_u64).unwrap(),
        )
    };
    assert_eq!(ecc_of(&results[0]), (0, e0));
    assert_eq!(ecc_of(&results[1]), (62, e62));
    assert_eq!(
        results[2].get("diameter").and_then(JsonValue::as_u64),
        Some(14)
    );
    assert_eq!(
        results[2].get("connected").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(ecc_of(&results[3]), (0, e0));
    assert_eq!(ecc_of(&results[4]), (31, e31));

    // All five queries cost exactly one cache load.
    assert_eq!(metrics_counter(addr, "serve.cache_misses"), 1);

    // Malformed batches are rejected up front.
    let bad = post(
        addr,
        "/v1/batch",
        r#"{"spec": "grid:7x9", "queries": [{"type": "ecc", "source": 63}]}"#,
    );
    assert_eq!(bad.status, 400, "{}", bad.body);
    let bad = post(addr, "/v1/batch", r#"{"spec": "grid:7x9", "queries": []}"#);
    assert_eq!(bad.status, 400, "{}", bad.body);
    let bad = post(
        addr,
        "/v1/batch",
        r#"{"spec": "grid:7x9", "anytime": true, "queries": [{"type": "diameter"}]}"#,
    );
    assert_eq!(
        bad.status, 400,
        "anytime has no batch semantics: {}",
        bad.body
    );
    let bad = post(
        addr,
        "/v1/diameter",
        r#"{"spec": "grid:7x7", "queries": [{"type": "diameter"}]}"#,
    );
    assert_eq!(
        bad.status, 400,
        "queries only belong to /v1/batch: {}",
        bad.body
    );

    server.shutdown();
}

#[test]
fn post_without_content_length_is_411_on_the_wire() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /v1/diameter HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 411"),
        "length-less POST must draw 411, got {raw:?}"
    );

    server.shutdown();
}
