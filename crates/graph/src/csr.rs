//! Compressed sparse row (CSR) graph representation.
//!
//! The paper targets undirected, unweighted, sparse graphs and stores
//! them in CSR form (§2): every undirected edge `{u, v}` appears as the
//! two directed arcs `u → v` and `v → u`. `row_offsets` has `n + 1`
//! entries; the neighbors of vertex `v` are
//! `col_indices[row_offsets[v] .. row_offsets[v + 1]]`.

use serde::{Deserialize, Serialize};

/// Vertex identifier. `u32` comfortably covers the paper's largest
/// input (50.9 M vertices) while halving memory traffic versus `usize`.
pub type VertexId = u32;

/// An undirected, unweighted graph in compressed sparse row form.
///
/// Invariants (checked by [`CsrGraph::validate`]):
/// * `row_offsets.len() == num_vertices() + 1`
/// * `row_offsets` is non-decreasing and ends at `col_indices.len()`
/// * every entry of `col_indices` is `< num_vertices()`
///
/// Symmetry (every arc having a reverse arc) is an invariant of graphs
/// built through [`crate::builder::EdgeList::to_undirected_csr`] and all
/// generators; [`CsrGraph::is_symmetric`] checks it explicitly.
///
/// ```
/// use fdiam_graph::EdgeList;
/// let g = EdgeList::from_undirected(3, &[(0, 1), (1, 2)]).to_undirected_csr();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_symmetric());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    row_offsets: Vec<usize>,
    col_indices: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays violate the CSR invariants.
    pub fn from_parts(row_offsets: Vec<usize>, col_indices: Vec<VertexId>) -> Self {
        let g = Self {
            row_offsets,
            col_indices,
        };
        g.validate().expect("invalid CSR arrays");
        g
    }

    /// Builds a graph from CSR arrays without checking invariants.
    ///
    /// Intended for trusted construction paths (the builder and the
    /// binary reader validate separately). Unlike `unsafe` memory
    /// tricks, a violated invariant here only causes panics later, not
    /// UB, so this is a plain function.
    pub(crate) fn from_parts_unchecked(
        row_offsets: Vec<usize>,
        col_indices: Vec<VertexId>,
    ) -> Self {
        Self {
            row_offsets,
            col_indices,
        }
    }

    /// The empty graph on `n` vertices (no edges).
    pub fn empty(n: usize) -> Self {
        Self {
            row_offsets: vec![0; n + 1],
            col_indices: Vec::new(),
        }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed arcs stored. For an undirected graph this is
    /// `2m`; it matches the "edges (including back edges)" column of the
    /// paper's Table 1.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.col_indices.len()
    }

    /// Number of undirected edges `m` (arc count halved; self-loops, if
    /// present, count once).
    pub fn num_undirected_edges(&self) -> usize {
        let self_loops = (0..self.num_vertices() as VertexId)
            .map(|v| self.neighbors(v).iter().filter(|&&n| n == v).count())
            .sum::<usize>();
        (self.num_arcs() - self_loops) / 2 + self_loops
    }

    /// Average degree (arcs per vertex), the metric reported in Table 1.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_arcs() as f64 / self.num_vertices() as f64
    }

    /// Out-degree of `v` (== degree, since the graph is symmetric).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.row_offsets[v + 1] - self.row_offsets[v]
    }

    /// Neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col_indices[self.row_offsets[v]..self.row_offsets[v + 1]]
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all directed arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The vertex with the largest degree, ties broken by lowest id.
    /// This is the paper's starting vertex `u` (§3): high-degree
    /// vertices tend to be centrally located, which maximizes the
    /// effectiveness of the first Winnow call.
    ///
    /// Returns `None` for a graph with no vertices.
    pub fn max_degree_vertex(&self) -> Option<VertexId> {
        (0..self.num_vertices() as VertexId).max_by_key(|&v| (self.degree(v), std::cmp::Reverse(v)))
    }

    /// Largest degree in the graph (Table 1's "max degree").
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Raw CSR row offsets (`n + 1` entries).
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// Raw CSR column indices (`2m` entries).
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col_indices
    }

    /// Checks the structural CSR invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_offsets.is_empty() {
            return Err("row_offsets must have at least one entry".into());
        }
        if self.row_offsets[0] != 0 {
            return Err("row_offsets must start at 0".into());
        }
        if *self.row_offsets.last().unwrap() != self.col_indices.len() {
            return Err(format!(
                "row_offsets must end at col_indices.len() = {}, got {}",
                self.col_indices.len(),
                self.row_offsets.last().unwrap()
            ));
        }
        if self.row_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("row_offsets must be non-decreasing".into());
        }
        let n = self.num_vertices() as VertexId;
        if let Some(&bad) = self.col_indices.iter().find(|&&c| c >= n) {
            return Err(format!("col index {bad} out of range (n = {n})"));
        }
        Ok(())
    }

    /// True if every arc `u → v` has a matching reverse arc `v → u`,
    /// i.e. the CSR encodes an undirected graph.
    pub fn is_symmetric(&self) -> bool {
        self.arcs().all(|(u, v)| self.has_arc(v, u))
    }

    /// True if an arc `u → v` exists. Linear scan of `u`'s neighbor
    /// list; intended for tests and validation, not hot paths.
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).contains(&v)
    }

    /// True if any self-loop `v → v` exists.
    pub fn has_self_loops(&self) -> bool {
        self.vertices().any(|v| self.neighbors(v).contains(&v))
    }

    /// Number of vertices with degree zero. Such vertices have
    /// eccentricity 0 and are reported separately in the paper's
    /// Table 4 ("Degree-0 Vertices").
    pub fn num_isolated_vertices(&self) -> usize {
        self.vertices().filter(|&v| self.degree(v) == 0).count()
    }

    /// Estimated heap memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_offsets.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;

    fn triangle() -> CsrGraph {
        EdgeList::from_undirected(3, &[(0, 1), (1, 2), (0, 2)]).to_undirected_csr()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.num_undirected_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.num_isolated_vertices(), 5);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.max_degree_vertex(), None);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn triangle_basic_properties() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_undirected_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted_and_correct() {
        let g = triangle();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn max_degree_vertex_prefers_lowest_id_on_tie() {
        let g = triangle();
        assert_eq!(g.max_degree_vertex(), Some(0));
    }

    #[test]
    fn max_degree_vertex_finds_hub() {
        // star: center 0 with 4 leaves
        let g = EdgeList::from_undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).to_undirected_csr();
        assert_eq!(g.max_degree_vertex(), Some(0));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn arcs_iterator_yields_both_directions() {
        let g = EdgeList::from_undirected(2, &[(0, 1)]).to_undirected_csr();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn validate_rejects_bad_offsets() {
        let g = CsrGraph {
            row_offsets: vec![0, 2, 1],
            col_indices: vec![0],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_index() {
        let g = CsrGraph {
            row_offsets: vec![0, 1],
            col_indices: vec![7],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_tail() {
        let g = CsrGraph {
            row_offsets: vec![0, 0],
            col_indices: vec![0],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn from_parts_panics_on_invalid() {
        CsrGraph::from_parts(vec![0, 3], vec![0]);
    }

    #[test]
    fn has_arc_and_symmetry() {
        let g = triangle();
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(1, 0));
        assert!(!g.has_arc(0, 0));
    }

    #[test]
    fn self_loop_counted_once_in_undirected_edges() {
        // one self loop stored as a single arc by from_parts
        let g = CsrGraph::from_parts(vec![0, 1], vec![0]);
        assert!(g.has_self_loops());
        assert_eq!(g.num_undirected_edges(), 1);
    }

    #[test]
    fn memory_bytes_reasonable() {
        let g = triangle();
        assert_eq!(
            g.memory_bytes(),
            4 * std::mem::size_of::<usize>() + 6 * std::mem::size_of::<VertexId>()
        );
    }
}
