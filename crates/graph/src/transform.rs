//! Graph transformations: induced subgraphs, relabeling, isolated-vertex
//! removal, disjoint union (used to build disconnected test inputs), and
//! deterministic edge orientation (undirected → directed test inputs).

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use crate::digraph::DiGraph;

/// Subgraph induced by `members` (which must contain distinct, valid
/// ids). Vertex `members[i]` becomes new vertex `i`.
pub fn induced_subgraph(g: &CsrGraph, members: &[VertexId]) -> CsrGraph {
    let mut new_id: Vec<u32> = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in members.iter().enumerate() {
        assert!(
            new_id[v as usize] == u32::MAX,
            "duplicate member vertex {v}"
        );
        new_id[v as usize] = i as u32;
    }
    let mut el = EdgeList::new(members.len());
    for (i, &v) in members.iter().enumerate() {
        for &w in g.neighbors(v) {
            let nw = new_id[w as usize];
            // add each retained edge once (from the lower new id)
            if nw != u32::MAX && (i as u32) < nw {
                el.push(i as VertexId, nw);
            }
        }
    }
    el.to_undirected_csr()
}

/// Relabels vertices: new vertex `i` is old vertex `perm[i]`
/// (`perm` must be a permutation of `0..n`).
pub fn permute(g: &CsrGraph, perm: &[VertexId]) -> CsrGraph {
    assert_eq!(perm.len(), g.num_vertices(), "perm length must equal n");
    induced_subgraph(g, perm)
}

/// Removes all degree-0 vertices, compacting ids. Returns the new graph
/// and the mapping `new id → original id`.
pub fn remove_isolated(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let members: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    (induced_subgraph(g, &members), members)
}

/// Disjoint union of two graphs; the second graph's ids are shifted by
/// `a.num_vertices()`. Useful for constructing disconnected inputs.
pub fn disjoint_union(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    let shift = a.num_vertices() as VertexId;
    let mut el = EdgeList::with_capacity(
        a.num_vertices() + b.num_vertices(),
        (a.num_arcs() + b.num_arcs()) / 2,
    );
    for (u, v) in a.arcs() {
        if u < v {
            el.push(u, v);
        }
    }
    for (u, v) in b.arcs() {
        if u < v {
            el.push(u + shift, v + shift);
        }
    }
    el.to_undirected_csr()
}

/// Adds `k` isolated vertices to the end of the id space.
pub fn with_isolated_vertices(g: &CsrGraph, k: usize) -> CsrGraph {
    let mut el = EdgeList::with_capacity(g.num_vertices() + k, g.num_arcs() / 2);
    for (u, v) in g.arcs() {
        if u < v {
            el.push(u, v);
        }
    }
    el.to_undirected_csr()
}

/// Attaches a pendant path of `len` new vertices to `v`:
/// `v — n — n+1 — … — n+len−1` where `n` is the old vertex count.
///
/// If `v` has maximum eccentricity within its component, the
/// component's diameter grows by exactly `len` (the metamorphic-testing
/// lemma used by `fdiam-testkit`): the new tail is `len` further from
/// everything `v` was farthest from, and the pendant path creates no
/// shortcuts.
///
/// # Panics
/// Panics if `v` is out of range.
pub fn with_pendant_path(g: &CsrGraph, v: VertexId, len: usize) -> CsrGraph {
    let n = g.num_vertices();
    assert!((v as usize) < n, "vertex {v} out of range (n = {n})");
    let mut el = EdgeList::with_capacity(n + len, g.num_arcs() / 2 + len);
    for (u, w) in g.arcs() {
        if u < w {
            el.push(u, w);
        }
    }
    let mut prev = v;
    for i in 0..len {
        let next = (n + i) as VertexId;
        el.push(prev, next);
        prev = next;
    }
    el.to_undirected_csr()
}

/// Adds one new vertex (id `n`) adjacent to every existing vertex.
///
/// The result is always connected; its diameter is 0 for an empty
/// input, 1 if the input was complete, and exactly 2 otherwise (any
/// two old vertices are now at distance ≤ 2 through the hub, and any
/// non-adjacent old pair is at distance exactly 2).
pub fn with_universal_vertex(g: &CsrGraph) -> CsrGraph {
    let n = g.num_vertices();
    let mut el = EdgeList::with_capacity(n + 1, g.num_arcs() / 2 + n);
    for (u, w) in g.arcs() {
        if u < w {
            el.push(u, w);
        }
    }
    let hub = n as VertexId;
    for v in 0..n as VertexId {
        el.push(v, hub);
    }
    el.to_undirected_csr()
}

/// SplitMix64 — the tiny seeded hash behind [`orient`]. Dependency-free
/// and stable across platforms, so orientations are reproducible
/// everywhere the generators are.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically orients an undirected graph into a [`DiGraph`].
///
/// Each undirected edge `{u, v}` (taken once, from the lower id)
/// independently becomes, with a seeded per-edge coin:
/// * **both** arcs `u → v` and `v → u` with probability
///   `bidirectional_pct / 100` — bidirectional edges are what gives the
///   result non-trivial strongly connected components;
/// * otherwise a **single** arc, direction chosen by a second coin.
///
/// `bidirectional_pct = 100` reproduces the undirected graph (the
/// result [`DiGraph::is_symmetric`]); `0` yields a pure orientation
/// (acyclic for the id-ordered coin only by chance, not by design).
/// The same `(graph, pct, seed)` triple always yields the same digraph.
pub fn orient(g: &CsrGraph, bidirectional_pct: u32, seed: u64) -> DiGraph {
    assert!(bidirectional_pct <= 100, "percentage must be ≤ 100");
    let mut el = EdgeList::with_capacity(g.num_vertices(), g.num_arcs());
    for (u, v) in g.arcs() {
        if u >= v {
            continue; // each undirected edge once; self-loops dropped anyway
        }
        let h = splitmix64(seed ^ ((u as u64) << 32 | v as u64));
        if (h % 100) < bidirectional_pct as u64 {
            el.push(u, v);
            el.push(v, u);
        } else if (h >> 32) & 1 == 0 {
            el.push(u, v);
        } else {
            el.push(v, u);
        }
    }
    DiGraph::from_edge_list(&el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path, star};

    #[test]
    fn induced_subgraph_of_path() {
        let g = path(5);
        // keep 1-2-3 → path of 3
        let sub = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_undirected_edges(), 2);
        assert_eq!(sub.neighbors(1), &[0, 2]);
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        let g = star(5);
        let sub = induced_subgraph(&g, &[1, 2, 3]); // leaves only
        assert_eq!(sub.num_arcs(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        induced_subgraph(&path(4), &[0, 0]);
    }

    #[test]
    fn permute_preserves_structure() {
        let g = path(4);
        let p = permute(&g, &[3, 2, 1, 0]);
        assert_eq!(p.num_undirected_edges(), 3);
        // reversed path is still a path: endpoints have degree 1
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(3), 1);
        assert_eq!(p.neighbors(1), &[0, 2]);
    }

    #[test]
    fn remove_isolated_works() {
        let g = with_isolated_vertices(&path(3), 4);
        assert_eq!(g.num_vertices(), 7);
        let (h, map) = remove_isolated(&g);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        assert_eq!(h.num_undirected_edges(), 2);
    }

    #[test]
    fn disjoint_union_counts() {
        let g = disjoint_union(&path(3), &cycle(4));
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_undirected_edges(), 2 + 4);
        assert!(g.has_arc(3, 4));
        assert!(!g.has_arc(2, 3));
    }

    #[test]
    fn union_with_empty() {
        let g = disjoint_union(&path(3), &CsrGraph::empty(2));
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_isolated_vertices(), 2);
    }

    #[test]
    fn pendant_path_extends_a_path() {
        // path(4) with 3 more hops off the far endpoint = path(7)
        let g = with_pendant_path(&path(4), 3, 3);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_undirected_edges(), 6);
        assert_eq!(g.degree(6), 1);
        assert_eq!(g.neighbors(3), &[2, 4]);
        assert_eq!(crate::test_oracle_diameter(&g), 6);
    }

    #[test]
    fn pendant_path_zero_len_is_identity() {
        let g = cycle(5);
        assert_eq!(with_pendant_path(&g, 2, 0), g);
    }

    #[test]
    fn pendant_path_onto_isolated_vertex() {
        let g = with_pendant_path(&CsrGraph::empty(2), 1, 4);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(0), 0);
        assert_eq!(crate::test_oracle_diameter(&g), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pendant_path_rejects_bad_vertex() {
        with_pendant_path(&path(3), 3, 1);
    }

    #[test]
    fn universal_vertex_caps_diameter_at_two() {
        let g = with_universal_vertex(&path(9));
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 9);
        assert_eq!(crate::test_oracle_diameter(&g), 2);
    }

    #[test]
    fn universal_vertex_connects_components() {
        let g = with_universal_vertex(&disjoint_union(&path(3), &path(2)));
        use crate::components::ConnectedComponents;
        assert!(ConnectedComponents::compute(&g).is_connected());
        assert_eq!(crate::test_oracle_diameter(&g), 2);
    }

    #[test]
    fn universal_vertex_on_complete_stays_complete() {
        let g = with_universal_vertex(&crate::generators::complete(4));
        assert_eq!(crate::test_oracle_diameter(&g), 1);
        assert_eq!(g.num_undirected_edges(), 10); // K5
    }

    #[test]
    fn universal_vertex_on_empty_is_single_vertex() {
        let g = with_universal_vertex(&CsrGraph::empty(0));
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn orient_is_deterministic_and_valid() {
        let g = crate::generators::erdos_renyi_gnm(60, 120, 7);
        let a = orient(&g, 30, 42);
        let b = orient(&g, 30, 42);
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
        // every original edge survives in at least one direction
        for (u, v) in g.arcs() {
            if u < v {
                assert!(a.has_arc(u, v) || a.has_arc(v, u), "lost edge {u}-{v}");
            }
        }
        // different seeds give different orientations on a real graph
        assert_ne!(a, orient(&g, 30, 43));
    }

    #[test]
    fn orient_extremes() {
        let g = cycle(8);
        let all_bi = orient(&g, 100, 1);
        assert!(all_bi.is_symmetric());
        assert_eq!(all_bi.num_arcs(), g.num_arcs());
        let none_bi = orient(&g, 0, 1);
        assert_eq!(none_bi.num_arcs(), g.num_arcs() / 2);
        assert!(none_bi.validate().is_ok());
    }
}
