//! Connected components.
//!
//! The diameter of a disconnected graph is infinite; the paper's code
//! flags this and reports the largest eccentricity over all connected
//! components (§1, §5). This module provides a serial union-find and a
//! rayon label-propagation implementation, plus largest-component
//! extraction used by examples and the harness.

use crate::csr::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Component labelling of a graph.
#[derive(Clone, Debug)]
pub struct ConnectedComponents {
    /// `comp[v]` = component id of `v` (ids are the smallest vertex id
    /// in the component, then compacted to `0..num_components`).
    comp: Vec<u32>,
    /// `sizes[c]` = number of vertices in component `c`.
    sizes: Vec<usize>,
}

impl ConnectedComponents {
    /// Serial union-find with path halving and union by attachment to
    /// the smaller root id (canonical labels).
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut parent: Vec<u32> = (0..n as u32).collect();

        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }

        for u in g.vertices() {
            for &v in g.neighbors(u) {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                if ru != rv {
                    // attach the larger root id under the smaller one so the
                    // final label of each component is its minimum vertex id
                    let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                    parent[hi as usize] = lo;
                }
            }
        }
        let mut comp: Vec<u32> = (0..n as u32).map(|v| find(&mut parent, v)).collect();
        Self::compact(&mut comp)
    }

    /// Parallel label propagation: every vertex repeatedly adopts the
    /// minimum label in its closed neighborhood until a fixed point.
    /// Produces the identical labelling to [`Self::compute`].
    pub fn compute_parallel(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
        loop {
            let changed = (0..n as u32)
                .into_par_iter()
                .map(|u| {
                    let mut min = labels[u as usize].load(Ordering::Relaxed);
                    for &v in g.neighbors(u) {
                        min = min.min(labels[v as usize].load(Ordering::Relaxed));
                    }
                    if min < labels[u as usize].load(Ordering::Relaxed) {
                        labels[u as usize].store(min, Ordering::Relaxed);
                        true
                    } else {
                        false
                    }
                })
                .reduce(|| false, |a, b| a || b);
            if !changed {
                break;
            }
        }
        // Pointer-jump to the label root: label propagation converges to
        // labels that are themselves fixed points, i.e. label[l] == l for
        // every used label, so one pass suffices; keep jumping defensively.
        let mut comp: Vec<u32> = labels.into_iter().map(AtomicU32::into_inner).collect();
        for v in 0..n {
            let mut l = comp[v];
            while comp[l as usize] != l {
                l = comp[l as usize];
            }
            comp[v] = l;
        }
        Self::compact(&mut comp)
    }

    /// Renumbers raw root labels to `0..k` (ordered by first occurrence,
    /// i.e. by smallest member id) and tallies sizes.
    fn compact(comp: &mut [u32]) -> Self {
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut sizes: Vec<usize> = Vec::new();
        for label in comp.iter_mut() {
            let next = remap.len() as u32;
            let c = *remap.entry(*label).or_insert_with(|| {
                sizes.push(0);
                next
            });
            sizes[c as usize] += 1;
            *label = c;
        }
        Self {
            comp: comp.to_vec(),
            sizes,
        }
    }

    /// Number of connected components (isolated vertices count).
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of vertex `v`.
    #[inline]
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.comp[v as usize]
    }

    /// Sizes of all components, indexed by component id.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Id of the largest component (ties → lowest id).
    pub fn largest_component(&self) -> Option<u32> {
        (0..self.sizes.len() as u32).max_by_key(|&c| (self.sizes[c as usize], std::cmp::Reverse(c)))
    }

    /// True if the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        self.num_components() == 1
    }

    /// Full labelling slice.
    pub fn labels(&self) -> &[u32] {
        &self.comp
    }
}

/// Extracts the subgraph induced by the largest connected component.
/// Returns the subgraph and the mapping `new id → original id`.
pub fn largest_component_subgraph(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let cc = ConnectedComponents::compute(g);
    let Some(target) = cc.largest_component() else {
        return (CsrGraph::empty(0), Vec::new());
    };
    let members: Vec<VertexId> = g
        .vertices()
        .filter(|&v| cc.component_of(v) == target)
        .collect();
    let sub = crate::transform::induced_subgraph(g, &members);
    (sub, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;
    use crate::generators::{cycle, path};

    fn two_triangles_and_isolated() -> CsrGraph {
        // {0,1,2} triangle, {3,4,5} triangle, {6} isolated
        EdgeList::from_undirected(7, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
            .to_undirected_csr()
    }

    #[test]
    fn single_component() {
        let g = path(10);
        let cc = ConnectedComponents::compute(&g);
        assert_eq!(cc.num_components(), 1);
        assert!(cc.is_connected());
        assert_eq!(cc.sizes(), &[10]);
    }

    #[test]
    fn multiple_components() {
        let g = two_triangles_and_isolated();
        let cc = ConnectedComponents::compute(&g);
        assert_eq!(cc.num_components(), 3);
        assert_eq!(cc.component_of(0), cc.component_of(2));
        assert_ne!(cc.component_of(0), cc.component_of(3));
        assert_eq!(cc.sizes(), &[3, 3, 1]);
    }

    #[test]
    fn empty_graph_components() {
        let cc = ConnectedComponents::compute(&CsrGraph::empty(0));
        assert_eq!(cc.num_components(), 0);
        assert!(!cc.is_connected());
        assert_eq!(cc.largest_component(), None);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let cc = ConnectedComponents::compute(&CsrGraph::empty(4));
        assert_eq!(cc.num_components(), 4);
    }

    #[test]
    fn parallel_matches_serial() {
        for g in [
            two_triangles_and_isolated(),
            path(50),
            cycle(17),
            crate::generators::erdos_renyi_gnm(200, 150, 3),
            crate::generators::rmat(8, 2, crate::generators::RmatProbabilities::LONESTAR, 5),
        ] {
            let a = ConnectedComponents::compute(&g);
            let b = ConnectedComponents::compute_parallel(&g);
            assert_eq!(a.labels(), b.labels());
            assert_eq!(a.sizes(), b.sizes());
        }
    }

    #[test]
    fn largest_component_selection() {
        // component {0..4} path (5 vertices) vs triangle {5,6,7}
        let g =
            EdgeList::from_undirected(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7), (5, 7)])
                .to_undirected_csr();
        let cc = ConnectedComponents::compute(&g);
        assert_eq!(cc.largest_component(), Some(0));
        let (sub, map) = largest_component_subgraph(&g);
        assert_eq!(sub.num_vertices(), 5);
        assert_eq!(map, vec![0, 1, 2, 3, 4]);
        assert_eq!(sub.num_undirected_edges(), 4);
    }

    #[test]
    fn largest_component_of_empty() {
        let (sub, map) = largest_component_subgraph(&CsrGraph::empty(0));
        assert_eq!(sub.num_vertices(), 0);
        assert!(map.is_empty());
    }
}
