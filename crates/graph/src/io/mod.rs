//! Graph readers and writers.
//!
//! The paper's inputs come from four collections in three text formats
//! plus binary CSR dumps:
//!
//! * [`edgelist`] — SNAP-style whitespace edge lists (`# comments`).
//! * [`dimacs`] — DIMACS-9 shortest-path format (`p sp n m` / `a u v w`),
//!   the format of the `USA-road-d.*` inputs.
//! * [`mtx`] — Matrix Market coordinate patterns, the SuiteSparse format.
//! * [`binfmt`] — a compact little-endian binary CSR dump for fast
//!   reloading of generated benchmark inputs.
//!
//! All readers produce symmetrized, deduplicated, loop-free
//! [`crate::CsrGraph`]s, matching the paper's treatment of every input
//! as undirected ("each undirected edge is represented by two directed
//! edges", §5).

pub mod binfmt;
pub mod dimacs;
pub mod edgelist;
pub mod mtx;

use std::fmt;

/// Errors produced by the text readers.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content, with a line number (1-based) where known.
    Parse { line: usize, message: String },
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

pub(crate) fn parse_err(line: usize, message: impl Into<String>) -> GraphIoError {
    GraphIoError::Parse {
        line,
        message: message.into(),
    }
}
