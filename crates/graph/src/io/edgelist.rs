//! SNAP-style whitespace-separated edge lists.
//!
//! Format: one `u v` pair per line; lines starting with `#` (or `%`)
//! are comments; blank lines are ignored. Vertex ids need not be
//! contiguous — the vertex count is `max id + 1` unless a larger count
//! is supplied.

use super::{parse_err, GraphIoError};
use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use crate::digraph::DiGraph;
use std::io::{BufRead, Write};

/// Shared parse loop: one `u v` pair per line into an [`EdgeList`] on
/// `max(max id + 1, min_vertices)` vertices.
fn read_pairs<R: BufRead>(reader: R, min_vertices: usize) -> Result<EdgeList, GraphIoError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: i64 = -1;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing source vertex"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad source vertex: {e}")))?;
        let v: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing target vertex"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad target vertex: {e}")))?;
        max_id = max_id.max(u as i64).max(v as i64);
        edges.push((u, v));
    }
    let n = ((max_id + 1) as usize).max(min_vertices);
    let mut el = EdgeList::with_capacity(n, edges.len());
    for (u, v) in edges {
        el.push(u, v);
    }
    Ok(el)
}

/// Reads an edge list, producing an undirected graph on
/// `max(max id + 1, min_vertices)` vertices.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    min_vertices: usize,
) -> Result<CsrGraph, GraphIoError> {
    Ok(read_pairs(reader, min_vertices)?.to_undirected_csr())
}

/// Reads the same format as [`read_edge_list`] but keeps each `u v`
/// line as a single directed arc (no symmetrization; duplicates and
/// self-loops are dropped by the [`DiGraph`] builder).
pub fn read_directed_edge_list<R: BufRead>(
    reader: R,
    min_vertices: usize,
) -> Result<DiGraph, GraphIoError> {
    Ok(DiGraph::from_edge_list(&read_pairs(reader, min_vertices)?))
}

/// Writes the graph as an edge list (each undirected edge once, from
/// the lower id, preceded by a `#` header recording n and m).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# undirected graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_undirected_edges()
    )?;
    for (u, v) in g.arcs() {
        if u <= v {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

/// Convenience: read from a file path.
pub fn read_edge_list_file(
    path: impl AsRef<std::path::Path>,
    min_vertices: usize,
) -> Result<CsrGraph, GraphIoError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(f), min_vertices)
}

/// Convenience: [`read_directed_edge_list`] from a file path.
pub fn read_directed_edge_list_file(
    path: impl AsRef<std::path::Path>,
    min_vertices: usize,
) -> Result<DiGraph, GraphIoError> {
    let f = std::fs::File::open(path)?;
    read_directed_edge_list(std::io::BufReader::new(f), min_vertices)
}

/// Convenience: write to a file path.
pub fn write_edge_list_file(
    g: &CsrGraph,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{path, star};

    #[test]
    fn roundtrip() {
        let g = star(6);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..], 0).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# comment\n% also comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g, path(3));
    }

    #[test]
    fn min_vertices_pads_isolated() {
        let g = read_edge_list("0 1\n".as_bytes(), 5).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_isolated_vertices(), 3);
    }

    #[test]
    fn duplicate_and_reverse_edges_collapse() {
        let g = read_edge_list("0 1\n1 0\n0 1\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_undirected_edges(), 1);
    }

    #[test]
    fn directed_reader_keeps_arc_orientation() {
        let g = read_directed_edge_list("# arcs\n0 1\n1 2\n2 0\n0 1\n1 1\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 3, "duplicate arc and self-loop dropped");
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert!(g.has_arc(2, 0));
        let padded = read_directed_edge_list("0 1\n".as_bytes(), 4).unwrap();
        assert_eq!(padded.num_vertices(), 4);
        let err = read_directed_edge_list("0 x\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_missing_endpoint() {
        let err = read_edge_list("42\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphIoError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn extra_columns_ignored() {
        // some SNAP files carry weights/timestamps in extra columns
        let g = read_edge_list("0 1 17 2020\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_undirected_edges(), 1);
    }
}
