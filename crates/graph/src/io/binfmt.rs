//! Compact binary CSR format for fast reload of generated inputs.
//!
//! Layout (all little-endian, via the `bytes` crate):
//!
//! ```text
//! magic   "FDIA"            4 bytes
//! version u32               currently 1
//! n       u64               vertex count
//! arcs    u64               directed arc count
//! offsets (n + 1) × u64
//! cols    arcs × u32
//! ```

use super::GraphIoError;
use crate::csr::{CsrGraph, VertexId};
use bytes::{Buf, BufMut};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"FDIA";
const VERSION: u32 = 1;

/// Serializes a graph to the binary CSR format.
pub fn write_binary<W: Write>(g: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(4 + 4 + 8 + 8);
    header.put_slice(MAGIC);
    header.put_u32_le(VERSION);
    header.put_u64_le(g.num_vertices() as u64);
    header.put_u64_le(g.num_arcs() as u64);
    writer.write_all(&header)?;

    let mut buf = Vec::with_capacity(8 * 1024);
    for &off in g.row_offsets() {
        buf.put_u64_le(off as u64);
        if buf.len() >= 8 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    for &c in g.col_indices() {
        buf.put_u32_le(c);
        if buf.len() >= 8 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Deserializes a graph from the binary CSR format, validating all
/// structural invariants.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, GraphIoError> {
    let mut header = [0u8; 4 + 4 + 8 + 8];
    reader.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(super::parse_err(0, "bad magic (not an FDIA file)"));
    }
    let version = h.get_u32_le();
    if version != VERSION {
        return Err(super::parse_err(
            0,
            format!("unsupported version {version}"),
        ));
    }
    let n = h.get_u64_le() as usize;
    let arcs = h.get_u64_le() as usize;
    // Vertex ids are u32, so any valid file satisfies these; a corrupt
    // header fails here instead of in an oversized multiplication below.
    if n > u32::MAX as usize || arcs > 1usize << 40 {
        return Err(super::parse_err(
            0,
            format!("implausible header: n={n} arcs={arcs}"),
        ));
    }

    // Read in bounded chunks so a corrupt header cannot trigger a huge
    // up-front allocation: a truncated stream fails with an I/O error
    // after at most one chunk of over-allocation.
    let offsets_raw = read_exactly(&mut reader, (n + 1) * 8)?;
    let mut o = &offsets_raw[..];
    let row_offsets: Vec<usize> = (0..=n).map(|_| o.get_u64_le() as usize).collect();
    drop(offsets_raw);

    let cols_raw = read_exactly(&mut reader, arcs * 4)?;
    let mut c = &cols_raw[..];
    let col_indices: Vec<VertexId> = (0..arcs).map(|_| c.get_u32_le()).collect();
    drop(cols_raw);

    let g = CsrGraph::from_parts_unchecked(row_offsets, col_indices);
    g.validate().map_err(|m| super::parse_err(0, m))?;
    Ok(g)
}

/// Reads exactly `total` bytes in 1 MiB chunks; errors (instead of
/// aborting on allocation failure) when the stream is shorter than a
/// corrupt header claims.
fn read_exactly<R: Read>(reader: &mut R, total: usize) -> Result<Vec<u8>, GraphIoError> {
    const CHUNK: usize = 1 << 20;
    let mut buf = Vec::new();
    let mut remaining = total;
    while remaining > 0 {
        let step = remaining.min(CHUNK);
        let start = buf.len();
        buf.resize(start + step, 0);
        reader.read_exact(&mut buf[start..])?;
        remaining -= step;
    }
    Ok(buf)
}

/// Convenience: write to a file path.
pub fn write_binary_file(g: &CsrGraph, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_binary(g, std::io::BufWriter::new(f))
}

/// Convenience: read from a file path.
pub fn read_binary_file(path: impl AsRef<std::path::Path>) -> Result<CsrGraph, GraphIoError> {
    let f = std::fs::File::open(path)?;
    read_binary(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::generators::{barabasi_albert, grid2d, path};

    #[test]
    fn roundtrip() {
        for g in [
            path(10),
            grid2d(4, 7),
            barabasi_albert(200, 3, 1),
            CsrGraph::empty(5),
            CsrGraph::empty(0),
        ] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            assert_eq!(read_binary(&buf[..]).unwrap(), g);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&path(3), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_binary(&path(3), &mut buf).unwrap();
        buf[4] = 99;
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let mut buf = Vec::new();
        write_binary(&path(5), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn rejects_corrupt_offsets() {
        let mut buf = Vec::new();
        write_binary(&path(3), &mut buf).unwrap();
        // corrupt the first offset (must be 0)
        buf[24] = 0xFF;
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fdiam_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.fdia");
        let g = grid2d(5, 5);
        write_binary_file(&g, &p).unwrap();
        assert_eq!(read_binary_file(&p).unwrap(), g);
        std::fs::remove_file(&p).ok();
    }
}
