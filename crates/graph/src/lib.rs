//! # fdiam-graph
//!
//! Graph substrate for the F-Diam diameter library.
//!
//! This crate provides everything the diameter algorithms need from a
//! graph library:
//!
//! * [`CsrGraph`] — an undirected, unweighted graph in compressed
//!   sparse row (CSR) form, the representation used by the paper
//!   (each undirected edge is stored as two directed arcs).
//! * [`DiGraph`] — a directed graph as a forward + transposed CSR
//!   pair, so every undirected BFS kernel runs unchanged on either
//!   traversal direction (the transpose is the bottom-up direction).
//! * [`builder`] — edge-list accumulation and O(n + m) CSR
//!   construction with symmetrization / deduplication options.
//! * [`generators`] — deterministic synthetic graph generators covering
//!   every topology class in the paper's Table 1 (grids, RMAT /
//!   Kronecker, power-law preferential attachment, small-world,
//!   road-like, random geometric, and a zoo of elementary shapes).
//! * [`io`] — readers/writers for SNAP edge lists, DIMACS-9 `.gr`,
//!   Matrix Market `.mtx`, and a compact binary CSR format.
//! * [`components`] — connected components (serial union-find and
//!   parallel label propagation) plus largest-component extraction.
//! * [`transform`] — subgraph extraction, vertex relabeling,
//!   isolated-vertex removal.
//! * [`analysis`] — degree statistics and other cheap topology probes.
//!
//! All generators take explicit seeds and are fully deterministic so
//! that every experiment in the benchmark harness is reproducible.

pub mod analysis;
pub mod builder;
pub mod components;
pub mod csr;
pub mod digraph;
pub mod generators;
pub mod io;
pub mod order;
pub mod transform;

pub use builder::{BuildOptions, EdgeList};
pub use components::ConnectedComponents;
pub use csr::{CsrGraph, VertexId};
pub use digraph::DiGraph;
pub use order::{DiRelabeling, Relabeling, VertexOrder};

/// Test-only diameter oracle (largest eccentricity over all
/// components) by plain BFS from every vertex. Quadratic; fixtures only.
#[cfg(test)]
pub(crate) fn test_oracle_diameter(g: &CsrGraph) -> u32 {
    let n = g.num_vertices();
    let mut best = 0u32;
    let mut dist = vec![u32::MAX; n];
    let mut frontier = Vec::new();
    for s in g.vertices() {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[s as usize] = 0;
        frontier.clear();
        frontier.push(s);
        let mut level = 0;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &nb in g.neighbors(v) {
                    if dist[nb as usize] == u32::MAX {
                        dist[nb as usize] = level;
                        next.push(nb);
                    }
                }
            }
            if !next.is_empty() {
                best = best.max(level);
            }
            frontier = next;
        }
    }
    best
}
