//! Peripheral "whiskers": degree-1 tendrils attached to a core graph.
//!
//! Pure preferential-attachment graphs have diameter barely above their
//! average distance, but real-world networks (co-purchase, citation,
//! web) carry long thin tendrils on their periphery — their diameter
//! (25–45 in the paper's Table 1) is several times the typical
//! distance, realized between tendril tips. Those tendrils are also
//! exactly the degree-1/degree-2 structure the paper's Chain Processing
//! targets, and they make the `⌊diam/2⌋` Winnow ball swallow the entire
//! core (Table 4's >99 % rows). [`attach_whiskers`] grafts that
//! structure onto any core graph.

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use rand::Rng;

/// Attaches `count` path-shaped whiskers to distinct random non-isolated
/// vertices of `g`. The first two whiskers get exactly `max_len` (so
/// the resulting diameter reliably lands near `2·max_len + core
/// distance`); the rest follow the skew of real networks — 80 % are
/// stubs of length 1–2, 20 % uniform in `3..=max_len`. New vertices are
/// appended after the existing id range.
///
/// # Panics
/// Panics if `count > 0` and the core has no edges, or `max_len == 0`
/// while `count > 0`.
pub fn attach_whiskers(g: &CsrGraph, count: usize, max_len: usize, seed: u64) -> CsrGraph {
    if count == 0 {
        return g.clone();
    }
    assert!(max_len >= 1, "whiskers need positive length");
    let candidates: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    assert!(
        !candidates.is_empty(),
        "cannot attach whiskers to an edgeless core"
    );
    let mut rng = super::rng(seed);

    // Plan the whiskers first to know the final vertex count.
    let lengths: Vec<usize> = (0..count)
        .map(|i| {
            if i < 2 {
                max_len
            } else if max_len <= 2 || rng.gen::<f64>() < 0.8 {
                rng.gen_range(1..=2.min(max_len))
            } else {
                rng.gen_range(3..=max_len)
            }
        })
        .collect();
    let extra: usize = lengths.iter().sum();
    let n = g.num_vertices();

    let mut el = EdgeList::with_capacity(n + extra, g.num_arcs() / 2 + extra);
    for (u, v) in g.arcs() {
        if u <= v {
            el.push(u, v);
        }
    }
    let mut next = n as VertexId;
    for &len in &lengths {
        let mut attach = candidates[rng.gen_range(0..candidates.len())];
        for _ in 0..len {
            el.push(attach, next);
            attach = next;
            next += 1;
        }
    }
    el.to_undirected_csr()
}

/// Attaches `count` peripheral *tendrils* to distinct random
/// non-isolated vertices of `g` — the periphery model behind the
/// benchmark suite's power-law analogues.
///
/// 80 % of the tendrils are single pendant vertices (the degree-1
/// stubs real networks have in abundance; their length-1 chains cost
/// Chain Processing one radius-1 Eliminate each). The rest — including
/// the first two, which always get the full `max_depth` — are *diamond
/// chains*: `k ≤ max_depth` diamonds `prev → {xᵢ, yᵢ} → tᵢ`, adding
/// `2k` hops of distance with every internal vertex of degree ≥ 2, so
/// they stretch the diameter to ≈ `4·max_depth + core distance` without
/// creating the long degree-2 chains that would make Chain Processing
/// eliminate half the graph per tendril.
pub fn attach_tendrils(g: &CsrGraph, count: usize, max_depth: usize, seed: u64) -> CsrGraph {
    if count == 0 {
        return g.clone();
    }
    assert!(max_depth >= 1, "tendrils need positive depth");
    let candidates: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    assert!(
        !candidates.is_empty(),
        "cannot attach tendrils to an edgeless core"
    );
    let mut rng = super::rng(seed);

    // Plan: depth 0 = pendant stub; depth k ≥ 1 = diamond chain.
    let depths: Vec<usize> = (0..count)
        .map(|i| {
            if i < 2 {
                max_depth
            } else if rng.gen::<f64>() < 0.8 {
                0
            } else {
                rng.gen_range(1..=max_depth)
            }
        })
        .collect();
    let extra: usize = depths.iter().map(|&k| if k == 0 { 1 } else { 3 * k }).sum();
    let n = g.num_vertices();

    let mut el = EdgeList::with_capacity(n + extra, g.num_arcs() / 2 + 2 * extra);
    for (u, v) in g.arcs() {
        if u <= v {
            el.push(u, v);
        }
    }
    let mut next = n as VertexId;
    for &depth in &depths {
        let attach = candidates[rng.gen_range(0..candidates.len())];
        if depth == 0 {
            el.push(attach, next);
            next += 1;
            continue;
        }
        let mut prev = attach;
        for _ in 0..depth {
            let (x, y, t) = (next, next + 1, next + 2);
            next += 3;
            el.push(prev, x);
            el.push(prev, y);
            el.push(x, t);
            el.push(y, t);
            prev = t;
        }
    }
    el.to_undirected_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::num_degree1_vertices;
    use crate::components::ConnectedComponents;
    use crate::generators::{barabasi_albert, complete};

    #[test]
    fn counts_add_up() {
        let core = complete(10);
        let g = attach_whiskers(&core, 4, 3, 1);
        assert!(g.num_vertices() > 10 && g.num_vertices() <= 10 + 12);
        assert_eq!(
            g.num_undirected_edges(),
            45 + (g.num_vertices() - 10),
            "each whisker vertex adds exactly one edge"
        );
    }

    #[test]
    fn zero_whiskers_is_identity() {
        let core = complete(5);
        assert_eq!(attach_whiskers(&core, 0, 7, 3), core);
    }

    #[test]
    fn stays_connected() {
        let core = barabasi_albert(200, 3, 2);
        let g = attach_whiskers(&core, 10, 5, 7);
        assert!(ConnectedComponents::compute(&g).is_connected());
    }

    #[test]
    fn creates_degree1_periphery() {
        let core = complete(20); // no degree-1 vertices
        let g = attach_whiskers(&core, 6, 4, 5);
        assert_eq!(num_degree1_vertices(&core), 0);
        assert_eq!(num_degree1_vertices(&g), 6, "one tip per whisker");
    }

    #[test]
    fn stretches_diameter_to_about_twice_max_len() {
        let core = complete(50); // core diameter 1
        let g = attach_whiskers(&core, 8, 10, 11);
        let d = crate::test_oracle_diameter(&g);
        // two full-length whiskers → diameter within [2·10, 2·10 + 3]
        assert!((20..=23).contains(&d), "diameter {d}");
    }

    #[test]
    fn deterministic() {
        let core = barabasi_albert(100, 2, 0);
        assert_eq!(
            attach_whiskers(&core, 5, 6, 9),
            attach_whiskers(&core, 5, 6, 9)
        );
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn rejects_edgeless_core() {
        attach_whiskers(&crate::CsrGraph::empty(5), 2, 3, 0);
    }

    #[test]
    fn tendrils_stretch_diameter_without_degree2_chains() {
        let core = complete(40); // core diameter 1
        let g = attach_tendrils(&core, 10, 5, 3);
        let d = crate::test_oracle_diameter(&g);
        // two depth-5 diamond chains: 10 + 10 + core ∈ [20, 23]
        assert!((20..=23).contains(&d), "diameter {d}");
        // a diamond tendril's tip has degree 2; walking from any
        // degree-1 stub must stop immediately at its junction — assert
        // that no degree-1 vertex sits on a chain longer than 1
        for v in g.vertices().filter(|&v| g.degree(v) == 1) {
            let junction = g.neighbors(v)[0];
            assert_ne!(g.degree(junction), 2, "stub {v} starts a long chain");
        }
    }

    #[test]
    fn tendrils_connected_and_deterministic() {
        let core = barabasi_albert(300, 4, 1);
        let g = attach_tendrils(&core, 12, 4, 9);
        assert!(ConnectedComponents::compute(&g).is_connected());
        assert_eq!(g, attach_tendrils(&core, 12, 4, 9));
    }

    #[test]
    fn tendrils_mostly_stubs() {
        let core = complete(30);
        let g = attach_tendrils(&core, 100, 6, 4);
        let stubs = num_degree1_vertices(&g);
        assert!(
            (60..=95).contains(&stubs),
            "expected ~80% stubs, got {stubs}"
        );
    }

    #[test]
    fn zero_tendrils_is_identity() {
        let core = complete(5);
        assert_eq!(attach_tendrils(&core, 0, 7, 3), core);
    }
}
