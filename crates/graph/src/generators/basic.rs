//! Elementary graph shapes with analytically known diameters.
//!
//! These are the primary correctness fixtures: a path of `n` vertices
//! has diameter `n − 1`, a cycle has `⌊n/2⌋`, a star has 2, and so on.
//! They also exercise the corner cases of F-Diam's stages (Chain
//! Processing on paths and caterpillars, Winnow on stars, Eliminate on
//! lollipops).

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};

/// Path graph `0 − 1 − … − (n−1)`. Diameter `n − 1` (0 for `n ≤ 1`).
pub fn path(n: usize) -> CsrGraph {
    let mut el = EdgeList::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        el.push(v as VertexId - 1, v as VertexId);
    }
    el.to_undirected_csr()
}

/// Cycle graph on `n ≥ 3` vertices. Diameter `⌊n/2⌋`.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut el = EdgeList::with_capacity(n, n);
    for v in 0..n {
        el.push(v as VertexId, ((v + 1) % n) as VertexId);
    }
    el.to_undirected_csr()
}

/// Star graph: vertex 0 joined to `n − 1` leaves. Diameter 2 for
/// `n ≥ 3`, 1 for `n == 2`, 0 otherwise.
pub fn star(n: usize) -> CsrGraph {
    let mut el = EdgeList::with_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        el.push(0, v as VertexId);
    }
    el.to_undirected_csr()
}

/// Complete graph `K_n`. Diameter 1 for `n ≥ 2`.
pub fn complete(n: usize) -> CsrGraph {
    let mut el = EdgeList::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            el.push(u as VertexId, v as VertexId);
        }
    }
    el.to_undirected_csr()
}

/// Complete `branch`-ary tree of the given `depth` (root at depth 0).
/// Diameter `2 · depth`.
///
/// # Panics
/// Panics if `branch == 0`.
pub fn balanced_tree(branch: usize, depth: usize) -> CsrGraph {
    assert!(branch > 0, "branching factor must be positive");
    // number of vertices: sum_{i=0..=depth} branch^i
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= branch;
        n += level;
    }
    let mut el = EdgeList::with_capacity(n, n - 1);
    // children of vertex v are branch*v + 1 ..= branch*v + branch
    for v in 1..n {
        let parent = (v - 1) / branch;
        el.push(parent as VertexId, v as VertexId);
    }
    el.to_undirected_csr()
}

/// Complete binary tree of the given depth. Diameter `2 · depth`.
pub fn binary_tree(depth: usize) -> CsrGraph {
    balanced_tree(2, depth)
}

/// Caterpillar: a spine path of `spine` vertices with `legs` degree-1
/// leaves attached to every spine vertex. Diameter `spine + 1` for
/// `spine ≥ 2, legs ≥ 1`. A stress test for Chain Processing, which
/// targets exactly such degree-1 periphery.
pub fn caterpillar(spine: usize, legs: usize) -> CsrGraph {
    let n = spine + spine * legs;
    let mut el = EdgeList::with_capacity(n, n.saturating_sub(1));
    for v in 1..spine {
        el.push(v as VertexId - 1, v as VertexId);
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            el.push(s as VertexId, next as VertexId);
            next += 1;
        }
    }
    el.to_undirected_csr()
}

/// Lollipop: clique `K_{clique}` joined by a bridge to a path of
/// `tail` vertices. Diameter `tail + 1` for `clique ≥ 2, tail ≥ 1`
/// (clique vertex → far end of tail). Exercises the interaction of a
/// dense core (where Winnow thrives) with a long chain.
pub fn lollipop(clique: usize, tail: usize) -> CsrGraph {
    assert!(clique >= 1);
    let n = clique + tail;
    let mut el = EdgeList::with_capacity(n, clique * clique / 2 + tail);
    for u in 0..clique {
        for v in (u + 1)..clique {
            el.push(u as VertexId, v as VertexId);
        }
    }
    // attach tail to clique vertex 0
    let mut prev = 0 as VertexId;
    for t in 0..tail {
        let v = (clique + t) as VertexId;
        el.push(prev, v);
        prev = v;
    }
    el.to_undirected_csr()
}

/// Barbell: two cliques `K_k` joined by a path of `bridge` intermediate
/// vertices. Diameter `bridge + 3` for `k ≥ 2` (leaf of one clique to
/// leaf of the other).
pub fn barbell(k: usize, bridge: usize) -> CsrGraph {
    assert!(k >= 2);
    let n = 2 * k + bridge;
    let mut el = EdgeList::with_capacity(n, k * k + bridge + 1);
    for u in 0..k {
        for v in (u + 1)..k {
            el.push(u as VertexId, v as VertexId);
            el.push((k + u) as VertexId, (k + v) as VertexId);
        }
    }
    // path from clique-A vertex 0 through bridge vertices to clique-B vertex k
    let mut prev = 0 as VertexId;
    for b in 0..bridge {
        let v = (2 * k + b) as VertexId;
        el.push(prev, v);
        prev = v;
    }
    el.push(prev, k as VertexId);
    el.to_undirected_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_undirected_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn path_degenerate() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_arcs(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_undirected_edges(), 6);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    #[should_panic]
    fn cycle_too_small() {
        cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!((1..10).all(|v| g.degree(v) == 1));
        assert_eq!(g.max_degree_vertex(), Some(0));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_undirected_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn balanced_tree_counts() {
        let g = balanced_tree(3, 2); // 1 + 3 + 9 = 13 vertices
        assert_eq!(g.num_vertices(), 13);
        assert_eq!(g.num_undirected_edges(), 12);
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(3); // 15 vertices
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_undirected_edges(), 14);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_undirected_edges(), 11);
        // spine interior vertex: 2 spine + 2 legs
        assert_eq!(g.degree(1), 4);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_undirected_edges(), 6 + 3);
        assert_eq!(g.degree(4), 2); // first tail vertex
        assert_eq!(g.degree(6), 1); // tail tip
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(3, 2);
        assert_eq!(g.num_vertices(), 8);
        // 2 triangles (3 edges each) + 3 bridge edges
        assert_eq!(g.num_undirected_edges(), 9);
    }

    #[test]
    fn all_basic_generators_symmetric() {
        for g in [
            path(6),
            cycle(5),
            star(7),
            complete(4),
            balanced_tree(2, 3),
            caterpillar(3, 2),
            lollipop(3, 2),
            barbell(3, 1),
        ] {
            assert!(g.is_symmetric());
            assert!(!g.has_self_loops());
            assert!(g.validate().is_ok());
        }
    }
}
