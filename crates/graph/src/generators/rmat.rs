//! RMAT / Kronecker recursive-matrix graph generator.
//!
//! Analogue of the paper's `rmat16.sym`, `rmat22.sym` (Lonestar) and
//! `kron_g500-logn21` inputs. Edges are placed by recursively choosing
//! a quadrant of the adjacency matrix with probabilities `(a, b, c, d)`
//! and then symmetrized. Kronecker/Graph500 uses the standard
//! `(0.57, 0.19, 0.19, 0.05)` parameters and leaves isolated vertices
//! in place — the paper's kron input has 26 % degree-0 vertices
//! (Table 4), which Table 4's "Degree-0 Vertices" column depends on.

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use rand::Rng;

/// Quadrant probabilities for the recursive descent. Must sum to ≈ 1.
#[derive(Clone, Copy, Debug)]
pub struct RmatProbabilities {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl RmatProbabilities {
    /// Classic RMAT parameters used by the Lonestar generator family.
    pub const LONESTAR: Self = Self {
        a: 0.45,
        b: 0.22,
        c: 0.22,
        d: 0.11,
    };

    /// GTgraph R-MAT defaults (a=0.45, b=c=0.15, d=0.25) — the
    /// generator behind many published `rmat*.sym` inputs. The heavier
    /// far-corner block `d` produces a sparser deep periphery and a
    /// larger diameter than the Lonestar parameters.
    pub const GTGRAPH: Self = Self {
        a: 0.45,
        b: 0.15,
        c: 0.15,
        d: 0.25,
    };

    /// Graph500 Kronecker parameters.
    pub const GRAPH500: Self = Self {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-6,
            "RMAT probabilities must sum to 1 (got {s})"
        );
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0);
    }
}

/// Generates an undirected RMAT graph with `2^scale` vertices and
/// `edge_factor · 2^scale` edge attempts (duplicates and self-loops are
/// dropped, so the final count is somewhat lower — same behaviour as
/// the reference generators).
pub fn rmat(scale: u32, edge_factor: usize, probs: RmatProbabilities, seed: u64) -> CsrGraph {
    probs.validate();
    assert!(scale < 31, "scale too large for u32 vertex ids");
    let n = 1usize << scale;
    let attempts = edge_factor * n;
    let mut rng = super::rng(seed);
    let mut el = EdgeList::with_capacity(n, attempts);

    // Noise on the quadrant probabilities per level (±10 %), as in the
    // Graph500 reference implementation, to avoid strict self-similarity.
    for _ in 0..attempts {
        let (mut u, mut v) = (0usize, 0usize);
        for level in 0..scale {
            let bit = 1usize << (scale - 1 - level);
            let noise = |p: f64, r: &mut rand_chacha::ChaCha8Rng| p * (0.9 + 0.2 * r.gen::<f64>());
            let (a, b, c, d) = (
                noise(probs.a, &mut rng),
                noise(probs.b, &mut rng),
                noise(probs.c, &mut rng),
                noise(probs.d, &mut rng),
            );
            let total = a + b + c + d;
            let x = rng.gen::<f64>() * total;
            if x < a {
                // top-left: no bits set
            } else if x < a + b {
                v |= bit;
            } else if x < a + b + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        if u != v {
            el.push(u as VertexId, v as VertexId);
        }
    }
    el.to_undirected_csr()
}

/// Graph500 Kronecker graph: `2^scale` vertices, `edge_factor · 2^scale`
/// edge attempts with the Graph500 quadrant probabilities. The analogue
/// of `kron_g500-logn21` (scale 21, edge factor ≈ 43 after
/// symmetrization in the paper's Table 1).
pub fn kronecker_graph500(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, edge_factor, RmatProbabilities::GRAPH500, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_basic_shape() {
        let g = rmat(10, 8, RmatProbabilities::LONESTAR, 42);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_undirected_edges() > 2000);
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
    }

    #[test]
    fn rmat_deterministic() {
        let a = rmat(8, 4, RmatProbabilities::LONESTAR, 7);
        let b = rmat(8, 4, RmatProbabilities::LONESTAR, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_seed_changes_graph() {
        let a = rmat(8, 4, RmatProbabilities::LONESTAR, 7);
        let b = rmat(8, 4, RmatProbabilities::LONESTAR, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn kronecker_has_isolated_vertices_and_hubs() {
        let g = kronecker_graph500(12, 16, 1);
        // Kronecker graphs are famously skewed: isolated vertices and
        // high-degree hubs must both appear (Table 4 / Table 1 shape).
        assert!(g.num_isolated_vertices() > 0, "expected isolated vertices");
        assert!(
            g.max_degree() > 20 * g.avg_degree() as usize,
            "expected a hub: max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(
            4,
            2,
            RmatProbabilities {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }
}
