//! Random geometric graphs (unit-square disk graphs).
//!
//! Analogue of the paper's `delaunay_n24` triangulation input: planar-ish,
//! bounded degree, moderate-to-large diameter (`Θ(1/r)`). Uses a uniform
//! cell grid so neighbor search is O(n) expected rather than O(n²).

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use rand::Rng;

/// Random geometric graph: `n` points uniform in the unit square,
/// edges between pairs at Euclidean distance ≤ `radius`.
///
/// For connectivity with high probability choose
/// `radius ≳ √(ln n / (π n))`; the `delaunay` analogue in the benchmark
/// suite uses `1.8 · √(1/n)` which gives average degree ≈ π·1.8² ≈ 10
/// before boundary effects.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> CsrGraph {
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = super::rng(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    // Cell grid with cell side ≥ radius: all neighbors of a point lie in
    // its own or the 8 adjacent cells.
    let cells_per_side = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((p.1 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        cy * cells_per_side + cx
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in pts.iter().enumerate() {
        buckets[cell_of(p)].push(i as u32);
    }

    let r2 = radius * radius;
    let mut el = EdgeList::new(n);
    for cy in 0..cells_per_side {
        for cx in 0..cells_per_side {
            let here = &buckets[cy * cells_per_side + cx];
            // pairs within the cell
            for (a, &i) in here.iter().enumerate() {
                for &j in &here[a + 1..] {
                    if dist2(pts[i as usize], pts[j as usize]) <= r2 {
                        el.push(i as VertexId, j as VertexId);
                    }
                }
            }
            // pairs with forward-adjacent cells (avoid double visits)
            for (dx, dy) in [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)] {
                let nx = cx as isize + dx;
                let ny = cy as isize + dy;
                if nx < 0
                    || ny < 0
                    || nx as usize >= cells_per_side
                    || ny as usize >= cells_per_side
                {
                    continue;
                }
                let there = &buckets[ny as usize * cells_per_side + nx as usize];
                for &i in here {
                    for &j in there {
                        if dist2(pts[i as usize], pts[j as usize]) <= r2 {
                            el.push(i as VertexId, j as VertexId);
                        }
                    }
                }
            }
        }
    }
    el.to_undirected_csr()
}

#[inline]
fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force O(n²) reference for the cell-grid implementation.
    fn reference(n: usize, radius: f64, seed: u64) -> CsrGraph {
        let mut rng = crate::generators::rng(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let mut el = EdgeList::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if dist2(pts[i], pts[j]) <= radius * radius {
                    el.push(i as VertexId, j as VertexId);
                }
            }
        }
        el.to_undirected_csr()
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..3 {
            let fast = random_geometric(200, 0.15, seed);
            let slow = reference(200, 0.15, seed);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn large_radius_near_complete() {
        let g = random_geometric(30, 1.0, 0);
        // unit square diagonal is √2 > 1, so not guaranteed complete,
        // but it must be dense
        assert!(g.num_undirected_edges() > 30 * 20 / 2 / 2);
    }

    #[test]
    fn small_radius_sparse() {
        let g = random_geometric(1000, 0.01, 0);
        assert!(g.avg_degree() < 2.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_geometric(300, 0.1, 4), random_geometric(300, 0.1, 4));
    }

    #[test]
    fn moderate_radius_mostly_connected_and_bounded_degree() {
        let g = random_geometric(2000, 0.06, 2);
        assert!(g.max_degree() < 60);
        assert!(g.num_undirected_edges() > 2000);
    }
}
