//! Regular 2-D grid graphs (analogue of the paper's `2d-2e20.sym`
//! Lonestar input: 4-regular interior, diameter `rows + cols − 2`).

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};

/// `rows × cols` 4-neighbor grid. Diameter `rows + cols − 2`.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut el = EdgeList::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                el.push(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                el.push(id(r, c), id(r + 1, c));
            }
        }
    }
    el.to_undirected_csr()
}

/// `rows × cols` grid with wrap-around (torus). Diameter
/// `⌊rows/2⌋ + ⌊cols/2⌋`. All vertices have equal eccentricity — the
/// paper's worst case for F-Diam (§4.6), useful for adversarial tests.
///
/// # Panics
/// Panics if either dimension is < 3 (wrap edges would duplicate).
pub fn grid2d_torus(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions ≥ 3");
    let n = rows * cols;
    let mut el = EdgeList::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            el.push(id(r, c), id(r, (c + 1) % cols));
            el.push(id(r, c), id((r + 1) % rows, c));
        }
    }
    el.to_undirected_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.num_undirected_edges(), 17);
        // corner degree 2, edge degree 3, interior degree 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(5), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn grid_single_row_is_path() {
        let g = grid2d(1, 5);
        assert_eq!(g.num_undirected_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn grid_single_cell() {
        let g = grid2d(1, 1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_arcs(), 0);
    }

    #[test]
    fn torus_is_regular() {
        let g = grid2d_torus(4, 5);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_undirected_edges(), 2 * 20);
    }

    #[test]
    #[should_panic]
    fn torus_rejects_small_dims() {
        grid2d_torus(2, 5);
    }
}
