//! Barabási–Albert preferential attachment.
//!
//! Produces connected power-law graphs — the analogue class for the
//! paper's social / citation / co-purchase / web inputs (`amazon0601`,
//! `as-skitter`, `citationCiteSeer`, `cit-Patents`, `coPapersDBLP`,
//! `in-2004`, `soc-LiveJournal1`, `internet`). These are the "small
//! world" graphs with low diameters and high maximum degrees on which
//! the paper reports Winnow to be most effective (§6.1).

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use rand::Rng;

/// Barabási–Albert graph: starts from a small clique of `m + 1`
/// vertices, then each new vertex attaches to `m` existing vertices
/// chosen with probability proportional to their current degree
/// (implemented with the classic repeated-endpoint urn).
///
/// The result is connected, has `≈ m·n` edges, a power-law degree
/// distribution, and a small diameter (`O(log n / log log n)`).
///
/// # Panics
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be ≥ 1");
    assert!(n > m, "need at least m + 1 vertices");
    let mut rng = super::rng(seed);
    let mut el = EdgeList::with_capacity(n, n * m);
    // Urn of edge endpoints: picking a uniform element is equivalent to
    // degree-proportional vertex sampling.
    let mut urn: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed clique on vertices 0..=m.
    for u in 0..=m {
        for v in (u + 1)..=m {
            el.push(u as VertexId, v as VertexId);
            urn.push(u as VertexId);
            urn.push(v as VertexId);
        }
    }

    let mut targets: Vec<VertexId> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        targets.clear();
        // sample m distinct targets from the urn
        while targets.len() < m {
            let t = urn[rng.gen_range(0..urn.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            el.push(v as VertexId, t);
            urn.push(v as VertexId);
            urn.push(t);
        }
    }
    el.to_undirected_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ConnectedComponents;

    #[test]
    fn ba_shape() {
        let g = barabasi_albert(1000, 3, 42);
        assert_eq!(g.num_vertices(), 1000);
        // m(n - m - 1) + clique edges
        assert_eq!(g.num_undirected_edges(), 3 * (1000 - 4) + 6);
        assert!(g.is_symmetric());
    }

    #[test]
    fn ba_connected() {
        let g = barabasi_albert(500, 2, 7);
        let cc = ConnectedComponents::compute(&g);
        assert_eq!(cc.num_components(), 1);
    }

    #[test]
    fn ba_power_law_hub() {
        let g = barabasi_albert(5000, 4, 1);
        // hub should strongly exceed the average degree
        assert!(g.max_degree() > 8 * g.avg_degree() as usize);
    }

    #[test]
    fn ba_deterministic() {
        assert_eq!(barabasi_albert(300, 2, 5), barabasi_albert(300, 2, 5));
        assert_ne!(barabasi_albert(300, 2, 5), barabasi_albert(300, 2, 6));
    }

    #[test]
    fn ba_minimum_size() {
        let g = barabasi_albert(2, 1, 0);
        assert_eq!(g.num_undirected_edges(), 1);
    }

    #[test]
    #[should_panic]
    fn ba_rejects_zero_m() {
        barabasi_albert(10, 0, 0);
    }
}
