//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 17 graphs spanning five topology classes:
//! regular grids, road networks, triangulations, power-law "small
//! world" graphs (social / citation / web), and RMAT / Kronecker
//! graphs. Each class has a generator here; the benchmark suite
//! (`fdiam-bench::suite`) instantiates scaled analogues of every paper
//! input from them.
//!
//! All generators are deterministic given their seed (ChaCha8 RNG) and
//! produce undirected, deduplicated, loop-free [`crate::CsrGraph`]s.

mod ba;
mod basic;
mod er;
mod geometric;
mod grid;
mod rmat;
mod road;
mod whiskers;
mod ws;

pub use ba::barabasi_albert;
pub use basic::{
    balanced_tree, barbell, binary_tree, caterpillar, complete, cycle, lollipop, path, star,
};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use geometric::random_geometric;
pub use grid::{grid2d, grid2d_torus};
pub use rmat::{kronecker_graph500, rmat, RmatProbabilities};
pub use road::{road_like, road_network};
pub use whiskers::{attach_tendrils, attach_whiskers};
pub use ws::watts_strogatz;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Constructs the deterministic RNG used by every generator.
pub(crate) fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
