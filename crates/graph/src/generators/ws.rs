//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice with random rewiring — interpolates between the
//! high-diameter regular regime and the low-diameter random regime.
//! Used in tests to probe the crossover behaviour of the diameter
//! algorithms between the paper's road-map-like and small-world-like
//! input classes.

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use rand::Rng;

/// Watts–Strogatz graph: ring of `n` vertices, each joined to its `k`
/// nearest neighbors (`k` even), every edge rewired to a uniform random
/// endpoint with probability `beta`.
///
/// # Panics
/// Panics if `k` is odd, `k < 2`, or `k ≥ n`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    #[allow(clippy::manual_is_multiple_of)] // is_multiple_of needs rustc ≥ 1.87, MSRV is 1.85
    let even = k % 2 == 0;
    assert!(k >= 2 && even, "k must be even and ≥ 2");
    assert!(k < n, "k must be < n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = super::rng(seed);
    let mut el = EdgeList::with_capacity(n, n * k / 2);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                // rewire: keep u, choose a random new endpoint ≠ u
                let mut w = rng.gen_range(0..n);
                while w == u {
                    w = rng.gen_range(0..n);
                }
                el.push(u as VertexId, w as VertexId);
            } else {
                el.push(u as VertexId, v as VertexId);
            }
        }
    }
    el.to_undirected_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rewiring_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 0);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_undirected_edges(), 40);
    }

    #[test]
    fn rewiring_changes_structure() {
        let regular = watts_strogatz(100, 4, 0.0, 1);
        let rewired = watts_strogatz(100, 4, 0.5, 1);
        assert_ne!(regular, rewired);
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(50, 6, 0.3, 2), watts_strogatz(50, 6, 0.3, 2));
    }

    #[test]
    #[should_panic]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 0);
    }
}
