//! Road-network-like graphs.
//!
//! Analogue of the paper's `europe_osm`, `USA-road-d.NY`, and
//! `USA-road-d.USA` DIMACS inputs: average degree ≈ 2–3, tiny maximum
//! degree, and an enormous diameter (up to 30 102 in Table 1). Road
//! maps are essentially noisy planar grids, so we build a random
//! spanning tree of a √n × √n grid (guaranteeing connectivity and a
//! long, winding diameter) and then add back a fraction of the
//! remaining grid edges as cross streets.

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Road-like graph on ~`n` vertices (rounded to a full grid).
///
/// `extra` ∈ [0, 1] is the fraction of non-tree grid edges added back:
/// `0.0` gives a pure random spanning tree (avg degree < 2, maximal
/// diameter), `1.0` gives the full grid. The paper's road inputs sit
/// around avg degree 2.1–2.8, i.e. `extra` ≈ 0.05–0.2.
pub fn road_like(n: usize, extra: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&extra), "extra must be in [0, 1]");
    let side = (n as f64).sqrt().round().max(1.0) as usize;
    let (rows, cols) = (side, side.max(n / side.max(1)));
    let nv = rows * cols;
    let mut rng = super::rng(seed);

    let id = |r: usize, c: usize| (r * cols + c) as u32;
    // All grid edges.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(2 * nv);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    edges.shuffle(&mut rng);

    // Kruskal-style random spanning tree over the shuffled grid edges.
    let mut parent: Vec<u32> = (0..nv as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut el = EdgeList::with_capacity(nv, nv);
    let mut leftover: Vec<(u32, u32)> = Vec::new();
    for (u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            el.push(u as VertexId, v as VertexId);
        } else {
            leftover.push((u, v));
        }
    }

    // Add back a fraction of the non-tree edges ("cross streets").
    let keep = (leftover.len() as f64 * extra).round() as usize;
    // `leftover` inherits the shuffle order, so a prefix is a uniform sample.
    for &(u, v) in leftover.iter().take(keep) {
        el.push(u as VertexId, v as VertexId);
    }
    el.to_undirected_csr()
}

/// Road network with polyline chains, the structure of real road data:
/// a connected sub-grid of *intersections* whose edges are subdivided
/// into chains of degree-2 vertices (road segments between
/// intersections are polylines in OSM/DIMACS data — that is why
/// `europe_osm` averages degree 2.1 while being anything but a tree).
///
/// Hop distances stay proportional to geometric distances, so the
/// `⌊diam/2⌋` Winnow ball is a round Manhattan diamond exactly as on
/// the paper's road inputs, instead of the skinny ball a random
/// spanning tree produces.
///
/// * `n` — approximate final vertex count.
/// * `extra` — fraction of non-tree grid edges kept (road-grid density;
///   0 = tree of roads, 1 = full grid of roads).
/// * `avg_subdiv` — average number of segments per road (≥ 1); each
///   road is split into `1..=2·avg_subdiv − 1` segments uniformly.
pub fn road_network(n: usize, extra: f64, avg_subdiv: usize, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&extra));
    assert!(avg_subdiv >= 1);
    // Final count ≈ base² + kept_edges·(avg_subdiv − 1), with
    // kept_edges ≈ base²·(1 + extra). Solve for the base side.
    let per_vertex = 1.0 + (1.0 + extra) * (avg_subdiv as f64 - 1.0);
    let side = ((n as f64 / per_vertex).sqrt().round() as usize).max(2);
    let base = road_like(side * side, extra, seed);
    if avg_subdiv == 1 {
        return base;
    }
    let mut rng = super::rng(seed ^ 0x5EED);
    let nb = base.num_vertices();
    let mut el = EdgeList::new(nb);
    let mut next = nb as u32;
    let mut chains: Vec<(VertexId, VertexId, usize)> = Vec::new();
    for (u, v) in base.arcs() {
        if u < v {
            let segments = rng.gen_range(1..=(2 * avg_subdiv - 1));
            chains.push((u, v, segments));
        }
    }
    let total_new: usize = chains.iter().map(|&(_, _, s)| s - 1).sum();
    el.ensure_vertices(nb + total_new);
    for (u, v, segments) in chains {
        let mut prev = u;
        for _ in 0..(segments - 1) {
            el.push(prev, next);
            prev = next;
            next += 1;
        }
        el.push(prev, v);
    }
    el.to_undirected_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::ConnectedComponents;

    #[test]
    fn road_connected() {
        let g = road_like(900, 0.1, 11);
        assert_eq!(ConnectedComponents::compute(&g).num_components(), 1);
    }

    #[test]
    fn road_low_degree() {
        let g = road_like(2500, 0.1, 3);
        assert!(g.avg_degree() < 3.0, "avg degree {}", g.avg_degree());
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn pure_tree_has_n_minus_1_edges() {
        let g = road_like(400, 0.0, 5);
        assert_eq!(g.num_undirected_edges(), g.num_vertices() - 1);
    }

    #[test]
    fn full_extra_gives_full_grid() {
        let g = road_like(100, 1.0, 5);
        // 10×10 grid: 2·10·9 = 180 edges
        assert_eq!(g.num_undirected_edges(), 180);
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_like(500, 0.2, 9), road_like(500, 0.2, 9));
        assert_ne!(road_like(500, 0.2, 9), road_like(500, 0.2, 10));
    }

    #[test]
    fn road_network_connected_and_low_degree() {
        let g = road_network(3000, 0.3, 3, 5);
        assert_eq!(ConnectedComponents::compute(&g).num_components(), 1);
        assert!(g.avg_degree() < 3.0, "avg degree {}", g.avg_degree());
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn road_network_hits_target_size() {
        for (n, extra, k) in [(2000, 0.2, 2), (5000, 0.4, 4)] {
            let g = road_network(n, extra, k, 1);
            let ratio = g.num_vertices() as f64 / n as f64;
            assert!(
                (0.6..1.5).contains(&ratio),
                "n={} got {}",
                n,
                g.num_vertices()
            );
        }
    }

    #[test]
    fn road_network_mostly_degree2_when_heavily_subdivided() {
        let g = road_network(4000, 0.3, 4, 2);
        let deg2 = g.vertices().filter(|&v| g.degree(v) == 2).count();
        assert!(
            deg2 * 10 > g.num_vertices() * 6,
            "expected most vertices on polylines: {} of {}",
            deg2,
            g.num_vertices()
        );
    }

    #[test]
    fn road_network_subdiv1_is_road_like() {
        assert_eq!(road_network(900, 0.1, 1, 7), road_like(900, 0.1, 7));
    }

    #[test]
    fn road_network_deterministic() {
        assert_eq!(road_network(1500, 0.3, 3, 4), road_network(1500, 0.3, 3, 4));
    }
}
