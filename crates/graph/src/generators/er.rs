//! Erdős–Rényi random graphs (`G(n, m)` and `G(n, p)`).
//!
//! Used as neutral random baselines in tests and property checks; not a
//! direct analogue of any paper input but invaluable as an unbiased
//! correctness workload.

use crate::builder::EdgeList;
use crate::csr::{CsrGraph, VertexId};
use rand::Rng;

/// `G(n, m)`: exactly `m` distinct undirected edges chosen uniformly
/// (rejection sampling; requires `m` ≤ the number of possible edges).
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "too many edges requested: {m} > {max_edges}"
    );
    let mut rng = super::rng(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut el = EdgeList::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            el.push(key.0, key.1);
        }
    }
    el.to_undirected_csr()
}

/// `G(n, p)`: every possible edge included independently with
/// probability `p`. O(n²) sampling — intended for small test graphs.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut rng = super::rng(seed);
    let mut el = EdgeList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                el.push(u as VertexId, v as VertexId);
            }
        }
    }
    el.to_undirected_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, 3);
        assert_eq!(g.num_undirected_edges(), 250);
        assert!(g.is_symmetric());
        assert!(!g.has_self_loops());
    }

    #[test]
    fn gnm_full_graph() {
        let g = erdos_renyi_gnm(5, 10, 0);
        assert_eq!(g.num_undirected_edges(), 10);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn gnm_rejects_overfull() {
        erdos_renyi_gnm(4, 7, 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, 1).num_arcs(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).num_undirected_edges(), 45);
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(erdos_renyi_gnp(50, 0.1, 9), erdos_renyi_gnp(50, 0.1, 9));
    }
}
