//! Edge-list accumulation and O(n + m) CSR construction.
//!
//! All generators and readers funnel through [`EdgeList`], which
//! symmetrizes, deduplicates, and counting-sorts the edges into a
//! [`CsrGraph`]. Neighbor lists come out sorted by vertex id, which the
//! bottom-up BFS exploits for early exit and which makes graph equality
//! canonical.

use crate::csr::{CsrGraph, VertexId};

/// Options controlling [`EdgeList::to_csr_with`].
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Add the reverse of every arc before building (undirected
    /// semantics, the default for this library).
    pub symmetrize: bool,
    /// Remove duplicate arcs.
    pub dedup: bool,
    /// Remove self-loops `v → v`.
    pub remove_self_loops: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            symmetrize: true,
            dedup: true,
            remove_self_loops: true,
        }
    }
}

/// A growable list of arcs plus a vertex count.
///
/// The vertex count may exceed the largest endpoint (trailing isolated
/// vertices are legal — the paper's Kronecker inputs have up to 26 % of
/// them, see Table 4).
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    num_vertices: usize,
    arcs: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// New empty list over `n` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            arcs: Vec::new(),
        }
    }

    /// New empty list over `n` vertices with room for `cap` arcs.
    pub fn with_capacity(num_vertices: usize, cap: usize) -> Self {
        Self {
            num_vertices,
            arcs: Vec::with_capacity(cap),
        }
    }

    /// Builds a list from undirected edges (each pair added once; the
    /// reverse direction is added during CSR construction).
    pub fn from_undirected(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut el = Self::with_capacity(num_vertices, edges.len());
        for &(u, v) in edges {
            el.push(u, v);
        }
        el
    }

    /// Adds an arc `u → v`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range (n = {})",
            self.num_vertices
        );
        self.arcs.push((u, v));
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of arcs currently stored.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Grows the vertex count (never shrinks).
    pub fn ensure_vertices(&mut self, n: usize) {
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Builds an undirected CSR graph: symmetrized, deduplicated, and
    /// with self-loops removed. This is the construction used by every
    /// generator and reader in this library.
    pub fn to_undirected_csr(&self) -> CsrGraph {
        self.to_csr_with(BuildOptions::default())
    }

    /// Builds a CSR graph with explicit options.
    pub fn to_csr_with(&self, opts: BuildOptions) -> CsrGraph {
        let n = self.num_vertices;
        let mut work: Vec<(VertexId, VertexId)> =
            Vec::with_capacity(self.arcs.len() * if opts.symmetrize { 2 } else { 1 });
        for &(u, v) in &self.arcs {
            if opts.remove_self_loops && u == v {
                continue;
            }
            work.push((u, v));
            if opts.symmetrize && u != v {
                work.push((v, u));
            }
        }

        // Counting sort by source vertex. After the prefix sum,
        // `offsets[v]` is the start of row `v` and `offsets[n]` the total,
        // i.e. `offsets` is exactly the CSR row-offset array.
        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &work {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cols = vec![0 as VertexId; work.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in &work {
            let c = &mut cursor[u as usize];
            cols[*c] = v;
            *c += 1;
        }
        drop(work);

        // Per-row sort (+ optional dedup), rebuilding offsets if dedup
        // shrinks rows.
        if opts.dedup {
            let mut new_cols = Vec::with_capacity(cols.len());
            let mut new_offsets = Vec::with_capacity(n + 1);
            new_offsets.push(0usize);
            for v in 0..n {
                let row = &mut cols[offsets[v]..offsets[v + 1]];
                row.sort_unstable();
                let mut prev: Option<VertexId> = None;
                for &x in row.iter() {
                    if prev != Some(x) {
                        new_cols.push(x);
                        prev = Some(x);
                    }
                }
                new_offsets.push(new_cols.len());
            }
            CsrGraph::from_parts_unchecked(new_offsets, new_cols)
        } else {
            for v in 0..n {
                cols[offsets[v]..offsets[v + 1]].sort_unstable();
            }
            CsrGraph::from_parts_unchecked(offsets, cols)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_undirected_build() {
        let g = EdgeList::from_undirected(4, &[(0, 1), (1, 2), (2, 3)]).to_undirected_csr();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.is_symmetric());
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = EdgeList::from_undirected(3, &[(0, 1), (0, 1), (1, 0), (1, 2)]).to_undirected_csr();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.num_undirected_edges(), 2);
    }

    #[test]
    fn self_loops_removed_by_default() {
        let g = EdgeList::from_undirected(2, &[(0, 0), (0, 1), (1, 1)]).to_undirected_csr();
        assert!(!g.has_self_loops());
        assert_eq!(g.num_undirected_edges(), 1);
    }

    #[test]
    fn self_loops_kept_when_requested() {
        let el = EdgeList::from_undirected(2, &[(0, 0), (0, 1)]);
        let g = el.to_csr_with(BuildOptions {
            remove_self_loops: false,
            ..Default::default()
        });
        assert!(g.has_self_loops());
        // loop stored once (symmetrize skips u == v), edge stored twice
        assert_eq!(g.num_arcs(), 3);
    }

    #[test]
    fn directed_build_without_symmetrize() {
        let el = EdgeList::from_undirected(3, &[(0, 1), (1, 2)]);
        let g = el.to_csr_with(BuildOptions {
            symmetrize: false,
            ..Default::default()
        });
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(1) == [2]);
        assert!(g.neighbors(2).is_empty());
        assert!(!g.is_symmetric());
    }

    #[test]
    fn no_dedup_keeps_parallel_edges() {
        let el = EdgeList::from_undirected(2, &[(0, 1), (0, 1)]);
        let g = el.to_csr_with(BuildOptions {
            dedup: false,
            ..Default::default()
        });
        assert_eq!(g.neighbors(0), &[1, 1]);
        assert_eq!(g.num_arcs(), 4);
    }

    #[test]
    fn trailing_isolated_vertices_preserved() {
        let g = EdgeList::from_undirected(10, &[(0, 1)]).to_undirected_csr();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_isolated_vertices(), 8);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = EdgeList::from_undirected(5, &[(0, 4), (0, 2), (0, 3), (0, 1)]).to_undirected_csr();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut el = EdgeList::new(2);
        el.push(0, 2);
    }

    #[test]
    fn ensure_vertices_grows_only() {
        let mut el = EdgeList::new(3);
        el.ensure_vertices(10);
        assert_eq!(el.num_vertices(), 10);
        el.ensure_vertices(5);
        assert_eq!(el.num_vertices(), 10);
    }

    #[test]
    fn empty_edge_list_builds_empty_graph() {
        let g = EdgeList::new(4).to_undirected_csr();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 0);
    }
}
