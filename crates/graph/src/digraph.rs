//! Directed graphs as a forward + transposed CSR pair.
//!
//! The diameter algorithms need both traversal directions of a digraph:
//! forward BFS for `d(v, ·)` and BFS on the transpose for `d(·, v)`.
//! [`DiGraph`] therefore stores the arc set twice — once as a forward
//! [`CsrGraph`] and once transposed — so each direction is a plain CSR
//! scan and every undirected kernel (serial BFS, the bit-parallel
//! 64-lane engine, the hybrid bottom-up machinery) runs unchanged on
//! either side. The transpose *is* the bottom-up direction: a
//! bottom-up step over the forward graph asks "which in-neighbors are
//! on the frontier", and the in-neighbor lists are exactly the
//! transpose's rows.
//!
//! Both sides are built through [`crate::builder::EdgeList`] with
//! `symmetrize: false` (deduplicated, self-loops removed, rows sorted),
//! so `DiGraph` equality is canonical just like [`CsrGraph`] equality.

use crate::builder::{BuildOptions, EdgeList};
use crate::csr::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Build options shared by every `DiGraph` construction path: keep the
/// arcs directed, deduplicate, drop self-loops (they never change any
/// distance).
fn directed_options() -> BuildOptions {
    BuildOptions {
        symmetrize: false,
        dedup: true,
        remove_self_loops: true,
    }
}

/// An undirected-kernel-compatible digraph: the forward CSR and its
/// transpose, kept in lockstep.
///
/// Invariants (checked by [`DiGraph::validate`]):
/// * both sides pass [`CsrGraph::validate`]
/// * equal vertex counts and equal arc counts
/// * `u → v` is a forward arc iff `v → u` is a transpose arc
///
/// ```
/// use fdiam_graph::{DiGraph, EdgeList};
/// let mut el = EdgeList::new(3);
/// el.push(0, 1);
/// el.push(1, 2);
/// let g = DiGraph::from_edge_list(&el);
/// assert_eq!(g.out_neighbors(1), &[2]);
/// assert_eq!(g.in_neighbors(1), &[0]);
/// assert_eq!(g.num_arcs(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    forward: CsrGraph,
    transpose: CsrGraph,
}

impl DiGraph {
    /// Builds a digraph from an arc list: the forward side directly,
    /// the transpose from the reversed arcs, both through the same
    /// dedup/self-loop pipeline.
    ///
    /// # Panics
    /// Panics if the two builds disagree on arc counts — they cannot
    /// for any input (reversal is a bijection on the deduplicated
    /// loop-free arc set), so a panic here flags builder corruption.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let forward = el.to_csr_with(directed_options());
        Self::from_csr(forward)
    }

    /// Wraps an existing directed CSR, computing its transpose. The
    /// input must already be deduplicated and self-loop-free (any CSR
    /// from [`EdgeList::to_csr_with`] with the directed options, or any
    /// undirected `CsrGraph`, qualifies); duplicates or loops are
    /// removed, which would break the arc-count invariant and panic.
    pub fn from_csr(forward: CsrGraph) -> Self {
        let mut rev = EdgeList::with_capacity(forward.num_vertices(), forward.num_arcs());
        for (u, v) in forward.arcs() {
            rev.push(v, u);
        }
        let transpose = rev.to_csr_with(directed_options());
        assert_eq!(
            forward.num_arcs(),
            transpose.num_arcs(),
            "transpose arc count mismatch: input CSR had duplicates or self-loops"
        );
        Self { forward, transpose }
    }

    /// Views an undirected graph as a digraph (every edge becomes an
    /// arc pair, so forward == transpose). Directed algorithms then
    /// agree with their undirected counterparts on connected inputs.
    pub fn from_undirected(g: &CsrGraph) -> Self {
        debug_assert!(g.is_symmetric(), "from_undirected needs a symmetric CSR");
        Self {
            forward: g.clone(),
            transpose: g.clone(),
        }
    }

    /// The empty digraph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            forward: CsrGraph::empty(n),
            transpose: CsrGraph::empty(n),
        }
    }

    /// The forward CSR (`out_neighbors` rows).
    #[inline]
    pub fn forward(&self) -> &CsrGraph {
        &self.forward
    }

    /// The transposed CSR (`in_neighbors` rows).
    #[inline]
    pub fn transpose(&self) -> &CsrGraph {
        &self.transpose
    }

    /// The reverse digraph (forward and transpose swapped). O(1) moves,
    /// no rebuild.
    pub fn transposed(self) -> Self {
        Self {
            forward: self.transpose,
            transpose: self.forward,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.forward.num_vertices()
    }

    /// Number of directed arcs (each stored twice internally: once per
    /// side).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.forward.num_arcs()
    }

    /// Out-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.forward.neighbors(v)
    }

    /// In-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.transpose.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.forward.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.transpose.degree(v)
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.forward.vertices()
    }

    /// True if the arc `u → v` exists.
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.forward.has_arc(u, v)
    }

    /// True if every arc also exists reversed — the digraph is an
    /// undirected graph in disguise (forward == transpose).
    pub fn is_symmetric(&self) -> bool {
        self.forward == self.transpose
    }

    /// Relabels vertices on both sides with the same permutation
    /// (`perm[i]` = original id of new vertex `i`), keeping the
    /// forward/transpose pairing intact.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute(&self, perm: &[VertexId]) -> Self {
        let n = self.num_vertices();
        assert_eq!(perm.len(), n, "perm length must equal n");
        let mut to_new: Vec<VertexId> = vec![VertexId::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(
                to_new[old as usize] == VertexId::MAX,
                "duplicate vertex {old} in permutation"
            );
            to_new[old as usize] = new as VertexId;
        }
        let mut el = EdgeList::with_capacity(n, self.num_arcs());
        for (u, v) in self.forward.arcs() {
            el.push(to_new[u as usize], to_new[v as usize]);
        }
        Self::from_edge_list(&el)
    }

    /// Checks the structural invariants of the pair.
    pub fn validate(&self) -> Result<(), String> {
        self.forward.validate()?;
        self.transpose.validate()?;
        if self.forward.num_vertices() != self.transpose.num_vertices() {
            return Err(format!(
                "vertex count mismatch: forward {} vs transpose {}",
                self.forward.num_vertices(),
                self.transpose.num_vertices()
            ));
        }
        if self.forward.num_arcs() != self.transpose.num_arcs() {
            return Err(format!(
                "arc count mismatch: forward {} vs transpose {}",
                self.forward.num_arcs(),
                self.transpose.num_arcs()
            ));
        }
        for (u, v) in self.forward.arcs() {
            if !self.transpose.has_arc(v, u) {
                return Err(format!("forward arc {u} → {v} missing from transpose"));
            }
        }
        Ok(())
    }

    /// Estimated heap memory footprint in bytes (both sides).
    pub fn memory_bytes(&self) -> usize {
        self.forward.memory_bytes() + self.transpose.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_cycle() -> DiGraph {
        // 0 → 1 → 2 → 0
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        DiGraph::from_edge_list(&el)
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_cycle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 3);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(2), 1);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert!(g.validate().is_ok());
        assert!(!g.is_symmetric());
    }

    #[test]
    fn dedup_and_self_loops() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(0, 1);
        el.push(1, 1);
        el.push(1, 2);
        let g = DiGraph::from_edge_list(&el);
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(1), &[0]);
    }

    #[test]
    fn transpose_round_trip_is_identity() {
        let g = triangle_cycle();
        let back = g.clone().transposed().transposed();
        assert_eq!(back, g);
        // transposing swaps in/out
        let t = g.clone().transposed();
        assert_eq!(t.out_neighbors(0), g.in_neighbors(0));
        assert_eq!(t.num_arcs(), g.num_arcs());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn from_csr_matches_edge_list_build() {
        let mut el = EdgeList::new(5);
        for &(u, v) in &[(0, 3), (3, 1), (1, 0), (2, 4)] {
            el.push(u, v);
        }
        let a = DiGraph::from_edge_list(&el);
        let b = DiGraph::from_csr(a.forward().clone());
        assert_eq!(a, b);
    }

    #[test]
    fn from_undirected_is_symmetric() {
        let g = EdgeList::from_undirected(4, &[(0, 1), (1, 2), (2, 3)]).to_undirected_csr();
        let d = DiGraph::from_undirected(&g);
        assert!(d.is_symmetric());
        assert!(d.validate().is_ok());
        assert_eq!(d.num_arcs(), g.num_arcs());
        assert_eq!(d.out_neighbors(1), d.in_neighbors(1));
    }

    #[test]
    fn empty_digraph() {
        let g = DiGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 0);
        assert!(g.validate().is_ok());
        assert!(g.is_symmetric());
        let z = DiGraph::empty(0);
        assert_eq!(z.num_vertices(), 0);
    }

    #[test]
    fn permute_preserves_structure() {
        let g = triangle_cycle();
        let p = g.permute(&[2, 0, 1]); // new 0 = old 2, new 1 = old 0, new 2 = old 1
        assert_eq!(p.num_arcs(), 3);
        // old arc 2 → 0 becomes new arc 0 → 1
        assert!(p.has_arc(0, 1));
        assert!(p.validate().is_ok());
        // permuting back restores the original
        assert_eq!(p.permute(&[1, 2, 0]), g);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn permute_rejects_non_permutation() {
        triangle_cycle().permute(&[0, 0, 1]);
    }

    #[test]
    fn serde_round_trip_via_clone_eq() {
        // Serialize derives compile; equality is canonical.
        let g = triangle_cycle();
        assert_eq!(g, g.clone());
    }
}
