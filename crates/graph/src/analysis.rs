//! Cheap topology statistics: degree histograms and the summary row
//! printed for each input in the paper's Table 1.

use crate::csr::CsrGraph;

/// Summary statistics matching the columns of the paper's Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    pub vertices: usize,
    /// Directed arc count (Table 1 counts "edges (including back edges)").
    pub arcs: usize,
    pub avg_degree: f64,
    pub max_degree: usize,
    pub isolated_vertices: usize,
    pub num_components: usize,
}

impl GraphSummary {
    pub fn compute(g: &CsrGraph) -> Self {
        let cc = crate::components::ConnectedComponents::compute(g);
        Self {
            vertices: g.num_vertices(),
            arcs: g.num_arcs(),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            isolated_vertices: g.num_isolated_vertices(),
            num_components: cc.num_components(),
        }
    }
}

/// Histogram of vertex degrees: `hist[d]` = number of vertices of
/// degree `d` (length `max_degree + 1`; empty for the empty graph).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Count of degree-1 vertices — the entry points for the paper's Chain
/// Processing stage (§4.3).
pub fn num_degree1_vertices(g: &CsrGraph) -> usize {
    g.vertices().filter(|&v| g.degree(v) == 1).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{caterpillar, path, star};
    use crate::transform::with_isolated_vertices;

    #[test]
    fn summary_of_star() {
        let s = GraphSummary::compute(&star(5));
        assert_eq!(s.vertices, 5);
        assert_eq!(s.arcs, 8);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.isolated_vertices, 0);
        assert_eq!(s.num_components, 1);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_of_path() {
        let h = degree_histogram(&path(5));
        assert_eq!(h, vec![0, 2, 3]);
    }

    #[test]
    fn histogram_empty_graph() {
        assert!(degree_histogram(&CsrGraph::empty(0)).is_empty());
        assert_eq!(degree_histogram(&CsrGraph::empty(3)), vec![3]);
    }

    #[test]
    fn degree1_count() {
        assert_eq!(num_degree1_vertices(&path(6)), 2);
        // caterpillar(3, 2): all 6 legs have degree 1, spine vertices ≥ 3
        assert_eq!(num_degree1_vertices(&caterpillar(3, 2)), 6);
    }

    #[test]
    fn summary_counts_isolated() {
        let g = with_isolated_vertices(&path(3), 2);
        let s = GraphSummary::compute(&g);
        assert_eq!(s.isolated_vertices, 2);
        assert_eq!(s.num_components, 3);
    }
}
