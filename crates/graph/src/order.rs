//! Load-time vertex relabeling (ROADMAP item 4's second half).
//!
//! The bit-parallel and bottom-up BFS kernels scan per-vertex words
//! (visited lanes, frontier bitmap chunks) in id order, so cache
//! behaviour depends on how ids correlate with traversal locality:
//!
//! * **degree order** — hubs first. Power-law graphs concentrate most
//!   arcs on a few vertices; packing them into the lowest ids keeps the
//!   hot lane/bitmap words in the first cache lines a sweep touches.
//! * **BFS order** — ids follow breadth-first discovery from the
//!   max-degree vertex. Consecutive ids are then mostly within one BFS
//!   level of each other, so any level-synchronous frontier occupies a
//!   contiguous run of words (grids and road networks benefit most).
//!
//! A relabeling is a *view* for the compute kernels only: every
//! user-facing id (farthest vertices, diametral pairs, per-vertex
//! eccentricity arrays, trace events) must be translated back through
//! [`Relabeling::to_original`] so callers never observe internal ids.

use crate::csr::{CsrGraph, VertexId};
use crate::digraph::DiGraph;
use crate::transform::permute;

/// Which load-time relabeling pass to run (`--order` in the CLI,
/// `"order"` in fdiam-serve request bodies).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VertexOrder {
    /// Keep original ids (no pass, no extra memory).
    #[default]
    None,
    /// Degree-descending, ties by ascending original id.
    Degree,
    /// Breadth-first discovery order from the max-degree vertex.
    Bfs,
}

impl VertexOrder {
    /// Parses a `--order` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(VertexOrder::None),
            "degree" => Ok(VertexOrder::Degree),
            "bfs" => Ok(VertexOrder::Bfs),
            other => Err(format!(
                "unknown order '{other}' (expected none, degree, bfs)"
            )),
        }
    }

    /// The canonical spelling, matching [`VertexOrder::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            VertexOrder::None => "none",
            VertexOrder::Degree => "degree",
            VertexOrder::Bfs => "bfs",
        }
    }

    /// Runs the relabeling pass; `None` for [`VertexOrder::None`] so
    /// the common case costs neither a copy nor a map.
    pub fn apply(self, g: &CsrGraph) -> Option<Relabeling> {
        match self {
            VertexOrder::None => None,
            VertexOrder::Degree => Some(relabel(g, degree_order(g))),
            VertexOrder::Bfs => Some(relabel(g, bfs_order(g))),
        }
    }

    /// Directed counterpart of [`VertexOrder::apply`]: the permutation
    /// is derived from the **forward** CSR (out-degree order / forward
    /// BFS discovery) and applied to both sides of the pair, so the
    /// forward/transpose coupling survives the relabeling.
    pub fn apply_directed(self, g: &DiGraph) -> Option<DiRelabeling> {
        let perm = match self {
            VertexOrder::None => return None,
            VertexOrder::Degree => degree_order(g.forward()),
            VertexOrder::Bfs => bfs_order(g.forward()),
        };
        let graph = g.permute(&perm);
        let mut to_new = vec![0 as VertexId; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            to_new[old as usize] = new as VertexId;
        }
        Some(DiRelabeling {
            graph,
            to_original: perm,
            to_new,
        })
    }
}

/// A remapped digraph plus both direction maps — the directed analogue
/// of [`Relabeling`]: kernels run on [`DiRelabeling::graph`], results
/// are translated back with [`DiRelabeling::original`].
#[derive(Clone, Debug)]
pub struct DiRelabeling {
    /// The digraph with vertices renamed: new vertex `i` is original
    /// vertex `to_original[i]` on both sides.
    pub graph: DiGraph,
    /// `new id → original id`.
    pub to_original: Vec<VertexId>,
    /// `original id → new id` (inverse of `to_original`).
    pub to_new: Vec<VertexId>,
}

impl DiRelabeling {
    /// Translates an internal (relabeled) id back to the original id.
    #[inline]
    pub fn original(&self, v: VertexId) -> VertexId {
        self.to_original[v as usize]
    }

    /// Reorders a per-internal-vertex array into original-id indexing:
    /// `out[original id] = values[internal id]`.
    pub fn to_original_indexing<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.to_original.len());
        let mut out = values.to_vec();
        for (new, &old) in self.to_original.iter().enumerate() {
            out[old as usize] = values[new];
        }
        out
    }
}

/// A remapped graph plus both direction maps. Kernels run on
/// [`Relabeling::graph`]; results are translated back with
/// [`Relabeling::original`] before anything leaves the process.
#[derive(Clone, Debug)]
pub struct Relabeling {
    /// The graph with vertices renamed: new vertex `i` is original
    /// vertex `to_original[i]`.
    pub graph: CsrGraph,
    /// `new id → original id` (the permutation the pass produced).
    pub to_original: Vec<VertexId>,
    /// `original id → new id` (inverse of `to_original`).
    pub to_new: Vec<VertexId>,
}

impl Relabeling {
    /// Translates an internal (relabeled) id back to the original id.
    #[inline]
    pub fn original(&self, v: VertexId) -> VertexId {
        self.to_original[v as usize]
    }

    /// Reorders a per-internal-vertex array into original-id indexing:
    /// `out[original id] = values[internal id]`.
    pub fn to_original_indexing<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.to_original.len());
        let mut out = values.to_vec();
        for (new, &old) in self.to_original.iter().enumerate() {
            out[old as usize] = values[new];
        }
        out
    }
}

/// Builds the relabeled graph and inverse map from a permutation
/// (`perm[i]` = original id of new vertex `i`).
fn relabel(g: &CsrGraph, perm: Vec<VertexId>) -> Relabeling {
    let graph = permute(g, &perm);
    let mut to_new = vec![0 as VertexId; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        to_new[old as usize] = new as VertexId;
    }
    Relabeling {
        graph,
        to_original: perm,
        to_new,
    }
}

/// Degree-descending permutation, ties broken by ascending original id
/// (deterministic across platforms — stable sort on an already-ordered
/// id range).
pub fn degree_order(g: &CsrGraph) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = g.vertices().collect();
    perm.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    perm
}

/// Breadth-first discovery permutation: levels from the max-degree
/// vertex, neighbors in CSR (ascending-id) order; every further
/// component starts at its lowest-id unvisited vertex. Deterministic
/// and total — isolated vertices appear where their id falls.
pub fn bfs_order(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut perm = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let start_root = |root: VertexId, seen: &mut Vec<bool>, perm: &mut Vec<VertexId>| {
        if !seen[root as usize] {
            seen[root as usize] = true;
            perm.push(root);
        }
    };
    if let Some(hub) = g.max_degree_vertex() {
        start_root(hub, &mut seen, &mut perm);
        queue.push_back(hub);
    }
    let mut scan = 0 as VertexId;
    loop {
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    perm.push(w);
                    queue.push_back(w);
                }
            }
        }
        // Next unvisited vertex roots the next component.
        while (scan as usize) < n && seen[scan as usize] {
            scan += 1;
        }
        if (scan as usize) >= n {
            break;
        }
        start_root(scan, &mut seen, &mut perm);
        queue.push_back(scan);
    }
    debug_assert_eq!(perm.len(), n);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, grid2d, path, star};
    use crate::transform::with_isolated_vertices;

    fn is_permutation(perm: &[VertexId], n: usize) -> bool {
        let mut seen = vec![false; n];
        perm.len() == n
            && perm.iter().all(|&v| {
                let slot = &mut seen[v as usize];
                !std::mem::replace(slot, true)
            })
    }

    #[test]
    fn parse_roundtrip_and_errors() {
        for o in [VertexOrder::None, VertexOrder::Degree, VertexOrder::Bfs] {
            assert_eq!(VertexOrder::parse(o.as_str()), Ok(o));
        }
        assert!(VertexOrder::parse("hilbert").is_err());
    }

    #[test]
    fn none_is_free() {
        assert!(VertexOrder::None.apply(&path(5)).is_none());
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = star(10); // 10 vertices: hub 0 plus nine leaves
        let perm = degree_order(&g);
        assert!(is_permutation(&perm, g.num_vertices()));
        assert_eq!(perm[0], 0);
        // ties (all leaves share degree 1) stay in ascending id order
        assert_eq!(&perm[1..], &(1..=9).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn bfs_order_is_level_contiguous() {
        let g = grid2d(4, 6);
        let perm = bfs_order(&g);
        assert!(is_permutation(&perm, g.num_vertices()));
        // In the relabeled graph, BFS levels from vertex 0 must be
        // non-decreasing in id — the defining property of a BFS order.
        let r = VertexOrder::Bfs.apply(&g).unwrap();
        let mut level = vec![u32::MAX; g.num_vertices()];
        level[0] = 0;
        let mut frontier = vec![0 as VertexId];
        let mut d = 0;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in r.graph.neighbors(v) {
                    if level[w as usize] == u32::MAX {
                        level[w as usize] = d;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        for pair in level.windows(2) {
            assert!(pair[0] <= pair[1], "levels not monotone in id: {level:?}");
        }
    }

    #[test]
    fn bfs_order_covers_disconnected_and_isolated() {
        let g = with_isolated_vertices(&star(4), 3);
        let perm = bfs_order(&g);
        assert!(is_permutation(&perm, g.num_vertices()));
        let d = degree_order(&g);
        assert!(is_permutation(&d, g.num_vertices()));
    }

    #[test]
    fn maps_are_mutual_inverses_and_preserve_structure() {
        for g in [grid2d(5, 5), barabasi_albert(120, 4, 3), path(1)] {
            for order in [VertexOrder::Degree, VertexOrder::Bfs] {
                let r = order.apply(&g).unwrap();
                assert_eq!(r.graph.num_vertices(), g.num_vertices());
                assert_eq!(r.graph.num_arcs(), g.num_arcs());
                for v in g.vertices() {
                    assert_eq!(r.to_new[r.to_original[v as usize] as usize], v);
                    // degree is invariant under relabeling
                    assert_eq!(r.graph.degree(v), g.degree(r.original(v)));
                }
                // every relabeled arc maps back to an original arc
                for (u, v) in r.graph.arcs() {
                    assert!(g.has_arc(r.original(u), r.original(v)));
                }
            }
        }
    }

    #[test]
    fn to_original_indexing_permutes_values_back() {
        let g = star(4);
        let r = VertexOrder::Degree.apply(&g).unwrap();
        // internal values = internal ids; back-permuted they must equal
        // each original vertex's internal id.
        let values: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let back = r.to_original_indexing(&values);
        for v in g.vertices() {
            assert_eq!(back[v as usize], r.to_new[v as usize]);
        }
    }

    #[test]
    fn directed_relabeling_preserves_arcs_and_pairing() {
        let g = crate::transform::orient(&barabasi_albert(80, 3, 2), 40, 9);
        for order in [VertexOrder::Degree, VertexOrder::Bfs] {
            let r = order.apply_directed(&g).unwrap();
            assert!(r.graph.validate().is_ok());
            assert_eq!(r.graph.num_arcs(), g.num_arcs());
            for v in g.vertices() {
                assert_eq!(r.to_new[r.to_original[v as usize] as usize], v);
                assert_eq!(r.graph.out_degree(v), g.out_degree(r.original(v)));
                assert_eq!(r.graph.in_degree(v), g.in_degree(r.original(v)));
            }
            for (u, v) in r.graph.forward().arcs() {
                assert!(g.has_arc(r.original(u), r.original(v)));
            }
        }
        assert!(VertexOrder::None.apply_directed(&g).is_none());
    }

    #[test]
    fn directed_degree_order_uses_out_degree() {
        // star oriented outward: hub has out-degree 9, leaves 0
        let mut el = crate::builder::EdgeList::new(10);
        for v in 1..10 {
            el.push(0, v);
        }
        let g = crate::digraph::DiGraph::from_edge_list(&el);
        let r = VertexOrder::Degree.apply_directed(&g).unwrap();
        assert_eq!(r.to_original[0], 0, "hub first under out-degree order");
    }

    #[test]
    fn empty_graph_orders() {
        let g = CsrGraph::empty(0);
        assert!(bfs_order(&g).is_empty());
        assert!(degree_order(&g).is_empty());
        let r = VertexOrder::Degree.apply(&g).unwrap();
        assert_eq!(r.graph.num_vertices(), 0);
    }
}
