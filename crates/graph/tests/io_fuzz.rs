//! Fuzz-style robustness: every reader must return `Err` (never panic,
//! never allocate unboundedly) on arbitrary byte soup, and round-trip
//! any graph the builder can produce.

use fdiam_graph::io::{binfmt, dimacs, edgelist, mtx};
use fdiam_graph::EdgeList;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic any reader.
    #[test]
    fn readers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = edgelist::read_edge_list(&bytes[..], 0);
        let _ = dimacs::read_dimacs(&bytes[..]);
        let _ = mtx::read_mtx(&bytes[..]);
        let _ = binfmt::read_binary(&bytes[..]);
    }

    /// Corrupting any single byte of a valid binary file either still
    /// yields a structurally valid graph or a clean error — no panic.
    #[test]
    fn binfmt_single_byte_corruption(pos_seed in any::<u64>(), flip in 1u8..=255) {
        let g = EdgeList::from_undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
            .to_undirected_csr();
        let mut buf = Vec::new();
        binfmt::write_binary(&g, &mut buf).unwrap();
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= flip;
        if let Ok(h) = binfmt::read_binary(&buf[..]) {
            prop_assert!(h.validate().is_ok());
        }
    }

    /// Any graph the builder produces round-trips through every text
    /// format (given the vertex-count hint for edge lists).
    #[test]
    fn all_formats_roundtrip_arbitrary_graphs(
        n in 1usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = EdgeList::from_undirected(n, &edges).to_undirected_csr();

        let mut buf = Vec::new();
        edgelist::write_edge_list(&g, &mut buf).unwrap();
        prop_assert_eq!(edgelist::read_edge_list(&buf[..], n).unwrap(), g.clone());

        buf.clear();
        dimacs::write_dimacs(&g, &mut buf).unwrap();
        prop_assert_eq!(dimacs::read_dimacs(&buf[..]).unwrap(), g.clone());

        buf.clear();
        mtx::write_mtx(&g, &mut buf).unwrap();
        prop_assert_eq!(mtx::read_mtx(&buf[..]).unwrap(), g.clone());

        buf.clear();
        binfmt::write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(binfmt::read_binary(&buf[..]).unwrap(), g);
    }
}
