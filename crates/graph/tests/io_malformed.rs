//! Deterministic malformed-input coverage for every reader — each
//! error path named by the issue (truncated files, bad headers,
//! self-loops, duplicate edges) asserted explicitly, plus the
//! four-format round-trip chain re-verified against the independent
//! testkit oracle instead of the library's own equality.

use fdiam_graph::io::{binfmt, dimacs, edgelist, mtx, GraphIoError};
use fdiam_graph::EdgeList;
use fdiam_testkit::Oracle;

/// Asserts `r` is a parse error and its message mentions `needle`.
fn expect_parse<T: std::fmt::Debug>(r: Result<T, GraphIoError>, needle: &str) {
    match r {
        Err(GraphIoError::Parse { message, .. }) => assert!(
            message.contains(needle),
            "error message {message:?} does not mention {needle:?}"
        ),
        other => panic!("expected parse error about {needle:?}, got {other:?}"),
    }
}

#[test]
fn dimacs_error_paths() {
    expect_parse(
        dimacs::read_dimacs("a 1 2 1\n".as_bytes()),
        "before problem",
    );
    expect_parse(
        dimacs::read_dimacs("p sp 3 1\np sp 3 1\n".as_bytes()),
        "duplicate problem",
    );
    expect_parse(dimacs::read_dimacs("p tour 3 1\n".as_bytes()), "kind");
    expect_parse(dimacs::read_dimacs("p sp x 1\n".as_bytes()), "vertex count");
    // DIMACS ids are 1-based: 0 is out of range, as is > n.
    expect_parse(
        dimacs::read_dimacs("p sp 3 1\na 0 2 1\n".as_bytes()),
        "out of range",
    );
    expect_parse(
        dimacs::read_dimacs("p sp 3 1\na 1 4 1\n".as_bytes()),
        "out of range",
    );
    expect_parse(dimacs::read_dimacs("q sp 3 1\n".as_bytes()), "unknown line");
    expect_parse(dimacs::read_dimacs("".as_bytes()), "missing problem");
}

#[test]
fn mtx_error_paths() {
    expect_parse(mtx::read_mtx("".as_bytes()), "empty");
    expect_parse(
        mtx::read_mtx("%%NotMatrixMarket matrix coordinate pattern general\n1 1 0\n".as_bytes()),
        "header",
    );
    expect_parse(
        mtx::read_mtx("%%MatrixMarket matrix array real general\n1 1\n".as_bytes()),
        "coordinate",
    );
    expect_parse(
        mtx::read_mtx("%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()),
        "field",
    );
    // Rectangular adjacency matrices are rejected.
    expect_parse(
        mtx::read_mtx("%%MatrixMarket matrix coordinate pattern general\n3 4 0\n".as_bytes()),
        "square",
    );
}

#[test]
fn edgelist_error_paths() {
    expect_parse(edgelist::read_edge_list("1 two\n".as_bytes(), 0), "target");
    expect_parse(edgelist::read_edge_list("7\n".as_bytes(), 0), "missing");
}

#[test]
fn binfmt_truncation_at_every_prefix_length() {
    // A truncated binary CSR must error (I/O or parse) at *any* cut
    // point — never panic, never return a graph.
    let g =
        EdgeList::from_undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).to_undirected_csr();
    let mut buf = Vec::new();
    binfmt::write_binary(&g, &mut buf).expect("write");
    assert!(binfmt::read_binary(&buf[..]).is_ok());
    for cut in 0..buf.len() {
        assert!(
            binfmt::read_binary(&buf[..cut]).is_err(),
            "truncation at {cut}/{} bytes must fail",
            buf.len()
        );
    }
}

#[test]
fn binfmt_header_corruption() {
    let g = EdgeList::from_undirected(3, &[(0, 1), (1, 2)]).to_undirected_csr();
    let mut buf = Vec::new();
    binfmt::write_binary(&g, &mut buf).expect("write");

    let mut bad_magic = buf.clone();
    bad_magic[0] = b'X';
    expect_parse(binfmt::read_binary(&bad_magic[..]), "magic");

    let mut bad_version = buf.clone();
    bad_version[4] = 0xFF;
    expect_parse(binfmt::read_binary(&bad_version[..]), "version");
}

#[test]
fn self_loops_and_duplicates_are_canonicalized_by_every_reader() {
    // The same dirty graph in all three text formats: self-loop on 2,
    // edge (0,1) given three times in both orientations.
    let snap = "# comment\n0 1\n1 0\n0 1\n2 2\n1 2\n";
    let dim = "c comment\np sp 3 5\na 1 2 1\na 2 1 1\na 1 2 1\na 3 3 1\na 2 3 1\n";
    let mm = "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 1\n1 2\n3 3\n2 3\n";

    let a = edgelist::read_edge_list(snap.as_bytes(), 3).expect("snap");
    let b = dimacs::read_dimacs(dim.as_bytes()).expect("dimacs");
    let c = mtx::read_mtx(mm.as_bytes()).expect("mtx");

    for (name, g) in [("snap", &a), ("dimacs", &b), ("mtx", &c)] {
        assert_eq!(g.num_vertices(), 3, "{name}");
        assert_eq!(g.num_undirected_edges(), 2, "{name}: dedup + loop removal");
        assert!(!g.has_self_loops(), "{name}");
        g.validate().unwrap_or_else(|e| panic!("{name}: {e:?}"));
    }
    assert_eq!(a, b);
    assert_eq!(b, c);
    // P3: diameter 2 — the oracle confirms canonicalization produced
    // the intended graph, not just *a* clean graph.
    assert_eq!(Oracle::compute(&a).diameter(), Some(2));
}

#[test]
fn cross_format_chain_preserves_oracle_semantics() {
    // SNAP → DIMACS → MTX → binary → SNAP on a disconnected graph with
    // an isolated trailing vertex; every hop must preserve the full
    // oracle (eccentricities, diameter, connectivity), judged by the
    // independent textbook implementation.
    let g = EdgeList::from_undirected(9, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 7)])
        .to_undirected_csr(); // vertex 8 isolated
    let want = Oracle::compute(&g);
    assert!(!want.connected);

    let mut buf = Vec::new();
    edgelist::write_edge_list(&g, &mut buf).expect("w snap");
    let g1 = edgelist::read_edge_list(&buf[..], 9).expect("r snap");

    buf.clear();
    dimacs::write_dimacs(&g1, &mut buf).expect("w dimacs");
    let g2 = dimacs::read_dimacs(&buf[..]).expect("r dimacs");

    buf.clear();
    mtx::write_mtx(&g2, &mut buf).expect("w mtx");
    let g3 = mtx::read_mtx(&buf[..]).expect("r mtx");

    buf.clear();
    binfmt::write_binary(&g3, &mut buf).expect("w bin");
    let g4 = binfmt::read_binary(&buf[..]).expect("r bin");

    for (hop, h) in [
        ("snap", &g1),
        ("dimacs", &g2),
        ("mtx", &g3),
        ("binary", &g4),
    ] {
        assert_eq!(Oracle::compute(h), want, "oracle drift after {hop} hop");
    }
    assert_eq!(&g4, &g, "chain must be the identity on canonical CSR");
}
