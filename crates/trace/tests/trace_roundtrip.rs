//! End-to-end: record a JSONL trace from a real F-Diam run, then prove
//! `fdiam-trace` reproduces the run's stage-time fractions and
//! vertex-removal breakdown from the trace alone. Because the driver's
//! own `FdiamStats` is folded from the *same* event stream the sink
//! records, the reconstruction is exact (same nanos), not approximate.

use fdiam_core::{run_with_observer, FdiamConfig};
use fdiam_graph::generators::{barabasi_albert, grid2d};
use fdiam_obs::JsonlTraceSink;
use fdiam_trace::Trace;

fn record(g: &fdiam_graph::CsrGraph, config: &FdiamConfig) -> (String, fdiam_core::FdiamOutcome) {
    let sink = JsonlTraceSink::new(Vec::new());
    let out = run_with_observer(g, config, &sink);
    let text = String::from_utf8(sink.into_inner()).unwrap();
    (text, out)
}

#[test]
fn report_reproduces_stage_nanos_and_removals_exactly() {
    let g = barabasi_albert(600, 3, 11);
    let (text, out) = record(&g, &FdiamConfig::parallel());
    let trace = Trace::parse(&text).unwrap();
    assert_eq!(trace.runs.len(), 1);
    let r = &trace.runs[0];

    // Identity: run id in the trace == run id in the outcome.
    assert_eq!(r.run_id, out.run.to_string());
    assert_eq!(r.algorithm, "fdiam");
    assert_eq!(r.n as usize, g.num_vertices());
    assert_eq!(r.m as usize, g.num_undirected_edges());
    assert_eq!(
        r.diameter.unwrap() as u32,
        out.result.largest_cc_diameter,
        "trace and outcome disagree on the diameter"
    );

    // Stage runtimes: the trace's phase_end sums are the exact nanos
    // the driver's StatsCollector folded into FdiamStats.
    let t = &out.stats.timings;
    for (phase, expect) in [
        ("ecc_bfs", t.ecc_bfs),
        ("winnow", t.winnow),
        ("chain", t.chain),
        ("eliminate", t.eliminate),
    ] {
        assert_eq!(
            r.phase_nanos.get(phase).copied().unwrap_or(0),
            expect.as_nanos() as u64,
            "stage '{phase}' nanos diverge between trace and stats"
        );
    }
    assert_eq!(r.total_nanos, out.stats.timings.total.as_nanos() as u64);

    // Removal breakdown: exact counts, covering every vertex.
    let rm = r.removals.expect("run emits a removal_summary");
    assert_eq!(rm.winnow as usize, out.stats.removed.winnow);
    assert_eq!(rm.eliminate as usize, out.stats.removed.eliminate);
    assert_eq!(rm.chain as usize, out.stats.removed.chain);
    assert_eq!(rm.degree0 as usize, out.stats.removed.degree0);
    assert_eq!(rm.computed as usize, out.stats.removed.computed);
    assert_eq!(rm.total() as usize, g.num_vertices());

    // The rendered report carries the identity and both tables.
    let report = trace.report();
    assert!(report.contains(&out.run.to_string()), "{report}");
    assert!(report.contains("stage runtime"), "{report}");
    assert!(report.contains("vertex removals"), "{report}");
    assert!(report.contains("ecc_bfs"), "{report}");
    assert!(
        report.contains(&format!(" {}", rm.computed)),
        "computed count missing from report:\n{report}"
    );
}

#[test]
fn parallel_run_records_worker_load_for_the_report() {
    let g = grid2d(40, 40);
    let (text, _) = record(&g, &FdiamConfig::parallel());
    let trace = Trace::parse(&text).unwrap();
    let w = trace.runs[0]
        .worker_load
        .expect("observed parallel run emits worker_load");
    assert!(w.workers >= 1);
    // The direction-optimized kernels may stay top-down-sequential on
    // tiny graphs, but the event must still report a coherent shape.
    assert!(w.imbalance >= 0.0);
    assert!(trace.report().contains("worker load: workers="));
}

#[test]
fn per_level_timelines_cover_every_traversal() {
    let g = grid2d(12, 12);
    let (text, out) = record(&g, &FdiamConfig::serial());
    let trace = Trace::parse(&text).unwrap();
    let r = &trace.runs[0];
    assert_eq!(
        r.traversals.len(),
        out.stats.ecc_computations,
        "one bfs_start/bfs_end pair per eccentricity computation"
    );
    for t in &r.traversals {
        assert!(t.eccentricity.is_some(), "span {} never ended", t.span);
        assert!(
            !t.levels.is_empty(),
            "trace sinks want detail, so every traversal has levels"
        );
        // Levels arrive in order and frontier sizes sum to visited-1
        // … only for full traversals; at minimum they are 1..=ecc.
        let levels: Vec<u64> = t.levels.iter().map(|l| l.level).collect();
        let mut sorted = levels.clone();
        sorted.sort_unstable();
        assert_eq!(levels, sorted, "levels out of order for span {}", t.span);
    }
    let text = trace.levels();
    assert!(text.matches("bfs span=").count() >= out.stats.ecc_computations);
}

#[test]
fn folded_stacks_nest_ecc_bfs_under_two_sweep() {
    let g = grid2d(15, 15);
    let (text, out) = record(&g, &FdiamConfig::parallel());
    let folded = Trace::parse(&text).unwrap().folded();
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("fdiam;two_sweep;ecc_bfs ")),
        "2-sweep BFS leaves must nest under the two_sweep span:\n{folded}"
    );
    assert!(
        folded.lines().any(|l| l.starts_with("fdiam;ecc_bfs ")),
        "main-loop BFS spans are roots under the run:\n{folded}"
    );
    // Folded totals re-add to the run's wall clock (µs truncation
    // loses <1µs per line).
    let total_us: u64 = folded
        .lines()
        .filter_map(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse::<u64>().unwrap())
        .sum();
    let wall_us = out.stats.timings.total.as_micros() as u64;
    assert!(
        total_us <= wall_us,
        "folded self-times exceed wall clock: {total_us} > {wall_us}"
    );
}

#[test]
fn converge_reconstructs_the_bounds_curve_from_a_real_run() {
    let g = barabasi_albert(400, 3, 7);
    let (text, out) = record(&g, &FdiamConfig::serial());
    let trace = Trace::parse(&text).unwrap();
    let r = &trace.runs[0];
    assert!(!r.aborted());

    let b = &r.bounds;
    assert!(b.len() >= 3, "2-sweep plus main loop publish snapshots");
    let d = out.result.largest_cc_diameter as u64;
    for w in b.windows(2) {
        assert!(w[0].lb <= w[1].lb, "lb regressed");
        assert!(w[0].ub >= w[1].ub, "ub regressed");
        assert!(w[0].bfs_count <= w[1].bfs_count);
    }
    for row in b {
        assert!(row.lb <= d && d <= row.ub, "diameter escapes [lb, ub]");
    }
    let last = b.last().unwrap();
    assert_eq!((last.lb, last.ub), (d, d), "final snapshot certifies");
    assert_eq!(last.vertices_remaining, 0);
    assert_eq!(last.phase, "done");

    let curve = trace.converge();
    assert!(
        curve.contains(&format!(
            "certified exact after {} BFS sweeps",
            last.bfs_count
        )),
        "{curve}"
    );
    assert!(curve.contains(&out.run.to_string()), "{curve}");
}

#[test]
fn truncated_recording_still_renders_partial_reports() {
    let g = grid2d(20, 20);
    let (text, _) = record(&g, &FdiamConfig::serial());
    // Drop the run_end line and cut the new final line in half, as a
    // process killed mid-write would leave the file.
    let mut lines: Vec<&str> = text.lines().collect();
    lines.pop();
    let kept = lines.len() - 1;
    let half = &lines[kept][..lines[kept].len() / 2];
    let truncated = format!("{}\n{half}", lines[..kept].join("\n"));

    let trace = Trace::parse(&truncated).unwrap();
    let r = &trace.runs[0];
    assert!(r.aborted(), "no run_end means aborted");
    assert!(trace.report().contains("[aborted: no run_end]"));
    assert!(!r.bounds.is_empty(), "partial curve survives");
    let converge = trace.converge();
    assert!(converge.contains("[aborted: no run_end]"), "{converge}");
    // Partial stage table and stacks still render.
    assert!(trace.report().contains("stage runtime"));
    assert!(!trace.folded().is_empty());
}
