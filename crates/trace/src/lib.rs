//! # fdiam-trace
//!
//! Offline analysis of F-Diam JSONL event traces (the files written by
//! `fdiam … --trace FILE` and by [`fdiam_obs::JsonlTraceSink`]
//! embedders). The paper's evaluation reads off two structural
//! breakdowns — where the *runtime* goes per stage (Figure 8) and
//! where the *vertices* go per removal mechanism (Figure 9 / Table 4)
//! — and this crate reproduces both from a recorded trace, plus two
//! drill-downs the figures aggregate away:
//!
//! * [`Trace::report`] — per-run stage-runtime fractions and
//!   vertex-removal breakdown tables, with the worker-load imbalance
//!   line when the run recorded one.
//! * [`Trace::levels`] — the per-level frontier timeline of every BFS
//!   traversal (level, frontier size, edges scanned, direction).
//! * [`Trace::folded`] — folded stacks in the format
//!   `flamegraph.pl` / `inferno` consume (`a;b;c <self-µs>`), built
//!   from the phase spans' parent links; self time excludes child
//!   spans so the flame widths sum correctly.
//! * [`Trace::converge`] — the bounds-convergence curve per run: one
//!   row per `bounds_update` snapshot (BFS count, certified `[lb, ub]`,
//!   gap, vertices remaining) with an ASCII gap bar, the offline twin
//!   of `GET /v1/runs` on a live server.
//! * [`lint_metrics`] — the shared Prometheus exposition linter
//!   ([`fdiam_obs::expo::lint`]) over a scraped `/metrics` body, for
//!   CI smoke tests.
//! * [`flight_report`] — forensics over a flight-recorder ring dump
//!   (`GET /v1/debug/flight`, `fdiam --flight-dump`, tail-sampled
//!   captures, panic post-mortems): per-shard sequence accounting with
//!   gap detection, the event mix, and the slowest BFS traversals and
//!   phase spans in the window.
//!
//! Every renderer is **gap-tolerant**: ring dumps carry `dropped`
//! markers where the recorder overwrote its oldest events, and the
//! parser accounts for them ([`Trace::gaps`]) instead of erroring —
//! reports disclose the loss rather than presenting a partial trace as
//! complete.
//!
//! No dependencies beyond `fdiam-obs`: the trace lines are parsed with
//! the same in-tree JSON module that wrote them.

use fdiam_obs::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The leaf phases whose `phase_end` durations partition a run's
/// attributed time (the 2-sweep span is an envelope around `ecc_bfs`
/// leaves and is excluded to avoid double counting).
pub const LEAF_PHASES: [&str; 4] = ["ecc_bfs", "winnow", "chain", "eliminate"];

/// Vertex-removal counts from a `removal_summary` event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Removals {
    pub winnow: u64,
    pub eliminate: u64,
    pub chain: u64,
    pub degree0: u64,
    pub computed: u64,
}

impl Removals {
    pub fn total(&self) -> u64 {
        self.winnow + self.eliminate + self.chain + self.degree0 + self.computed
    }
}

/// Per-worker load figures from a `worker_load` event.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerLoadLine {
    pub workers: u64,
    pub total_edges: u64,
    pub max_busy_nanos: u64,
    pub mean_busy_nanos: u64,
    pub imbalance: f64,
}

/// One `bounds_update` snapshot row: the certified `[lb, ub]`
/// interval after a sweep, as published by the driver and the
/// analytics codes' `_observed` variants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundsRow {
    pub phase: String,
    pub bfs_count: u64,
    pub lb: u64,
    pub ub: u64,
    pub vertices_remaining: u64,
    pub elapsed_nanos: u64,
}

impl BoundsRow {
    /// The bounds gap `ub - lb`; zero certifies exactness.
    pub fn gap(&self) -> u64 {
        self.ub.saturating_sub(self.lb)
    }
}

/// One `bfs_level` row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelRow {
    pub level: u64,
    pub frontier: u64,
    pub edges_scanned: u64,
    pub bottom_up: bool,
}

/// One BFS traversal: `bfs_start` … (`bfs_level` | `direction_switch`)*
/// … `bfs_end`, matched by span id.
#[derive(Clone, Debug, Default)]
pub struct BfsTraversal {
    pub span: u64,
    pub source: u64,
    /// `None` when the traversal was aborted (cancellation) before its
    /// `bfs_end`.
    pub eccentricity: Option<u64>,
    pub visited: Option<u64>,
    pub levels: Vec<LevelRow>,
}

/// All events of one run (`run_start` … `run_end`).
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// 16-hex-digit run id, or `""` when events preceded any
    /// `run_start` (tolerated for partial traces).
    pub run_id: String,
    pub algorithm: String,
    pub n: u64,
    pub m: u64,
    /// From `run_end`; `None` for a truncated trace.
    pub diameter: Option<u64>,
    pub connected: Option<bool>,
    pub total_nanos: u64,
    /// Summed `phase_end` nanos per phase name (leaves and envelopes).
    pub phase_nanos: BTreeMap<String, u64>,
    pub removals: Option<Removals>,
    pub worker_load: Option<WorkerLoadLine>,
    pub traversals: Vec<BfsTraversal>,
    /// `bounds_update` snapshots in arrival order.
    pub bounds: Vec<BoundsRow>,
    /// `phase_start`: span id → (phase name, parent span id).
    span_tree: BTreeMap<u64, (String, u64)>,
    /// `phase_end`: (span id, phase name, nanos), in arrival order.
    span_ends: Vec<(u64, String, u64)>,
}

impl RunTrace {
    /// Time attributed to leaf phases; `total_nanos` minus this is the
    /// driver's own bookkeeping ("other" in the report).
    pub fn leaf_nanos(&self) -> u64 {
        LEAF_PHASES
            .iter()
            .filter_map(|p| self.phase_nanos.get(*p))
            .sum()
    }

    /// `true` when the run never reached its `run_end` — a cancelled
    /// run, or a trace cut off mid-write. Reports mark such runs
    /// `[aborted]` instead of erroring.
    pub fn aborted(&self) -> bool {
        self.diameter.is_none()
    }
}

/// One `dropped` gap marker from a flight-recorder ring dump: the
/// shard overwrote `dropped` events before the oldest it retained
/// (whose sequence number is `next_seq`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GapMarker {
    pub shard: u64,
    pub dropped: u64,
    pub next_seq: u64,
}

/// A parsed trace file: zero or more runs, plus any ring-buffer gap
/// markers the dump carried.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub runs: Vec<RunTrace>,
    /// `dropped` markers from a flight-recorder dump (empty for
    /// ordinary `--trace` files, which never drop).
    pub gaps: Vec<GapMarker>,
}

fn req_u64(v: &JsonValue, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing numeric field '{key}'"))
}

impl Trace {
    /// Parses JSONL trace text. Unknown event types are skipped (the
    /// schema is forward-extensible); malformed JSON is an error —
    /// except on the final line, where it means the writer died
    /// mid-record and the trace is treated as truncated (the open run
    /// parses as `[aborted]`).
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut runs: Vec<RunTrace> = Vec::new();
        let mut gaps: Vec<GapMarker> = Vec::new();
        let mut open = false;
        // Span id → index into the open run's `traversals`.
        let mut bfs_by_span: BTreeMap<u64, usize> = BTreeMap::new();

        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        let mut parsed_any = false;
        for (pos, &(line_no, line)) in lines.iter().enumerate() {
            let v = match json::parse(line) {
                Ok(v) => v,
                // A half-written record is only ever the last line of a
                // file; earlier malformed lines are corruption.
                Err(_) if parsed_any && pos + 1 == lines.len() => break,
                Err(e) => return Err(format!("line {line_no}: {e}")),
            };
            parsed_any = true;
            let ty = v
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {line_no}: no 'type' field"))?
                .to_string();

            // Flight-recorder and serve metadata lines. Gap markers are
            // accounted for; the rest are skipped — none of them belong
            // to a run, so they must not open an anonymous one.
            match ty.as_str() {
                "dropped" => {
                    gaps.push(GapMarker {
                        shard: v.get("shard").and_then(JsonValue::as_u64).unwrap_or(0),
                        dropped: req_u64(&v, "dropped", line_no)?,
                        next_seq: v.get("next_seq").and_then(JsonValue::as_u64).unwrap_or(0),
                    });
                    continue;
                }
                "post_mortem" | "in_flight_run" | "flight_capture" | "access" => continue,
                _ => {}
            }

            // Events arriving outside any run (truncated or hand-cut
            // traces) open an anonymous run so nothing is lost.
            if !open && ty != "run_start" {
                runs.push(RunTrace::default());
                bfs_by_span.clear();
                open = true;
            }

            match ty.as_str() {
                "run_start" => {
                    let r = RunTrace {
                        run_id: v
                            .get("run")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_string(),
                        algorithm: v
                            .get("algorithm")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        n: req_u64(&v, "n", line_no)?,
                        m: req_u64(&v, "m", line_no)?,
                        ..RunTrace::default()
                    };
                    runs.push(r);
                    bfs_by_span.clear();
                    open = true;
                }
                "run_end" => {
                    let r = runs.last_mut().expect("open run");
                    r.diameter = Some(req_u64(&v, "diameter", line_no)?);
                    r.connected = v.get("connected").and_then(JsonValue::as_bool);
                    r.total_nanos = req_u64(&v, "nanos", line_no)?;
                    if r.run_id.is_empty() {
                        r.run_id = v
                            .get("run")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_string();
                    }
                    open = false;
                }
                "phase_start" => {
                    let phase = v
                        .get("phase")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?")
                        .to_string();
                    let span = req_u64(&v, "span", line_no)?;
                    let parent = v.get("parent").and_then(JsonValue::as_u64).unwrap_or(0);
                    runs.last_mut()
                        .expect("open run")
                        .span_tree
                        .insert(span, (phase, parent));
                }
                "phase_end" => {
                    let phase = v
                        .get("phase")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?")
                        .to_string();
                    let nanos = req_u64(&v, "nanos", line_no)?;
                    let span = v.get("span").and_then(JsonValue::as_u64).unwrap_or(0);
                    let r = runs.last_mut().expect("open run");
                    *r.phase_nanos.entry(phase.clone()).or_insert(0) += nanos;
                    r.span_ends.push((span, phase, nanos));
                }
                "bfs_start" => {
                    let span = v.get("span").and_then(JsonValue::as_u64).unwrap_or(0);
                    let r = runs.last_mut().expect("open run");
                    r.traversals.push(BfsTraversal {
                        span,
                        source: req_u64(&v, "source", line_no)?,
                        ..BfsTraversal::default()
                    });
                    bfs_by_span.insert(span, r.traversals.len() - 1);
                }
                "bfs_level" => {
                    let span = v.get("span").and_then(JsonValue::as_u64).unwrap_or(0);
                    let row = LevelRow {
                        level: req_u64(&v, "level", line_no)?,
                        frontier: req_u64(&v, "frontier", line_no)?,
                        edges_scanned: req_u64(&v, "edges_scanned", line_no)?,
                        bottom_up: v
                            .get("bottom_up")
                            .and_then(JsonValue::as_bool)
                            .unwrap_or(false),
                    };
                    let r = runs.last_mut().expect("open run");
                    if let Some(&idx) = bfs_by_span.get(&span) {
                        r.traversals[idx].levels.push(row);
                    } else if let Some(t) = r.traversals.last_mut() {
                        t.levels.push(row);
                    }
                }
                "bfs_end" => {
                    let span = v.get("span").and_then(JsonValue::as_u64).unwrap_or(0);
                    let r = runs.last_mut().expect("open run");
                    let idx = bfs_by_span
                        .get(&span)
                        .copied()
                        .or(r.traversals.len().checked_sub(1));
                    if let Some(idx) = idx {
                        r.traversals[idx].eccentricity =
                            Some(req_u64(&v, "eccentricity", line_no)?);
                        r.traversals[idx].visited = Some(req_u64(&v, "visited", line_no)?);
                    }
                }
                "bounds_update" => {
                    let r = runs.last_mut().expect("open run");
                    r.bounds.push(BoundsRow {
                        phase: v
                            .get("phase")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        bfs_count: req_u64(&v, "bfs_count", line_no)?,
                        lb: req_u64(&v, "lb", line_no)?,
                        ub: req_u64(&v, "ub", line_no)?,
                        vertices_remaining: req_u64(&v, "vertices_remaining", line_no)?,
                        elapsed_nanos: req_u64(&v, "elapsed_nanos", line_no)?,
                    });
                    if r.run_id.is_empty() {
                        r.run_id = v
                            .get("run")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_string();
                    }
                }
                "removal_summary" => {
                    runs.last_mut().expect("open run").removals = Some(Removals {
                        winnow: req_u64(&v, "winnow", line_no)?,
                        eliminate: req_u64(&v, "eliminate", line_no)?,
                        chain: req_u64(&v, "chain", line_no)?,
                        degree0: req_u64(&v, "degree0", line_no)?,
                        computed: req_u64(&v, "computed", line_no)?,
                    });
                }
                "worker_load" => {
                    runs.last_mut().expect("open run").worker_load = Some(WorkerLoadLine {
                        workers: req_u64(&v, "workers", line_no)?,
                        total_edges: req_u64(&v, "total_edges", line_no)?,
                        max_busy_nanos: req_u64(&v, "max_busy_nanos", line_no)?,
                        mean_busy_nanos: req_u64(&v, "mean_busy_nanos", line_no)?,
                        imbalance: v
                            .get("imbalance")
                            .and_then(JsonValue::as_f64)
                            .unwrap_or(0.0),
                    });
                }
                // direction_switch, epoch_rollover, bound_update,
                // winnow_grown, eliminate_run, chains_processed,
                // progress, and future event types carry no report
                // state of their own.
                _ => {}
            }
        }
        Ok(Trace { runs, gaps })
    }

    /// Total events the flight recorder overwrote before this dump was
    /// taken (0 for ordinary trace files).
    pub fn dropped_events(&self) -> u64 {
        self.gaps.iter().map(|g| g.dropped).sum()
    }

    /// The disclosure line reports prepend when the trace has ring
    /// gaps: a partial trace must say so.
    fn gap_note(&self) -> Option<String> {
        if self.gaps.is_empty() {
            return None;
        }
        Some(format!(
            "note: flight recorder dropped {} event(s) across {} shard(s) — partial trace\n",
            self.dropped_events(),
            self.gaps.len(),
        ))
    }

    /// Stage-runtime fractions (Figure 8 shape) and vertex-removal
    /// breakdown (Figure 9 / Table 4 shape), one block per run.
    pub fn report(&self) -> String {
        let mut out = String::new();
        if let Some(note) = self.gap_note() {
            out.push_str(&note);
            out.push('\n');
        }
        for r in &self.runs {
            // An aborted run never wrote its `run_end`, so total_nanos
            // is 0; fall back to the attributed leaf time so the
            // partial fractions stay meaningful.
            let total = r.total_nanos.max(r.leaf_nanos()).max(1);
            let _ = writeln!(
                out,
                "run {}  {}  n={} m={}  diameter={}  connected={}  total {}{}",
                if r.run_id.is_empty() { "?" } else { &r.run_id },
                r.algorithm,
                r.n,
                r.m,
                r.diameter.map_or("?".into(), |d| d.to_string()),
                r.connected.map_or("?".into(), |c| c.to_string()),
                fmt_ms(r.total_nanos),
                if r.aborted() {
                    "  [aborted: no run_end]"
                } else {
                    ""
                },
            );
            let _ = writeln!(out, "\nstage runtime (paper Fig. 8)");
            let _ = writeln!(out, "  {:<12} {:>12} {:>9}", "stage", "time", "fraction");
            for phase in LEAF_PHASES {
                let nanos = r.phase_nanos.get(phase).copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:<12} {:>12} {:>8.1}%",
                    phase,
                    fmt_ms(nanos),
                    nanos as f64 / total as f64 * 100.0,
                );
            }
            let other = r.total_nanos.saturating_sub(r.leaf_nanos());
            let _ = writeln!(
                out,
                "  {:<12} {:>12} {:>8.1}%",
                "other",
                fmt_ms(other),
                other as f64 / total as f64 * 100.0,
            );
            if let Some(rm) = &r.removals {
                let denom = rm.total().max(1);
                let _ = writeln!(out, "\nvertex removals (paper Fig. 9 / Table 4)");
                let _ = writeln!(out, "  {:<12} {:>12} {:>9}", "stage", "vertices", "share");
                for (name, count) in [
                    ("winnow", rm.winnow),
                    ("eliminate", rm.eliminate),
                    ("chain", rm.chain),
                    ("degree0", rm.degree0),
                    ("computed", rm.computed),
                ] {
                    let _ = writeln!(
                        out,
                        "  {:<12} {:>12} {:>8.1}%",
                        name,
                        count,
                        count as f64 / denom as f64 * 100.0,
                    );
                }
                let _ = writeln!(out, "  {:<12} {:>12}", "total", rm.total());
            }
            if let Some(w) = &r.worker_load {
                let _ = writeln!(
                    out,
                    "\nworker load: workers={} edges_scanned={} busy max={} mean={} imbalance={:.2}",
                    w.workers,
                    w.total_edges,
                    fmt_ms(w.max_busy_nanos),
                    fmt_ms(w.mean_busy_nanos),
                    w.imbalance,
                );
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Per-level frontier timeline of every BFS traversal that
    /// recorded detail.
    pub fn levels(&self) -> String {
        let mut out = String::new();
        if let Some(note) = self.gap_note() {
            out.push_str(&note);
        }
        for r in &self.runs {
            for t in &r.traversals {
                let _ = writeln!(
                    out,
                    "bfs span={} source={} eccentricity={} visited={}{}",
                    t.span,
                    t.source,
                    t.eccentricity.map_or("?".into(), |e| e.to_string()),
                    t.visited.map_or("?".into(), |v| v.to_string()),
                    if t.eccentricity.is_none() {
                        "  [aborted]"
                    } else {
                        ""
                    },
                );
                if t.levels.is_empty() {
                    let _ = writeln!(out, "  (no per-level detail recorded)");
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:>5} {:>10} {:>12} {:>4}",
                    "level", "frontier", "edges", "dir"
                );
                for l in &t.levels {
                    let _ = writeln!(
                        out,
                        "  {:>5} {:>10} {:>12} {:>4}",
                        l.level,
                        l.frontier,
                        l.edges_scanned,
                        if l.bottom_up { "bu" } else { "td" },
                    );
                }
            }
        }
        out
    }

    /// Folded stacks (`root;child;leaf <self-µs>`), the input format of
    /// `flamegraph.pl` and `inferno-flamegraph`. One line per distinct
    /// phase stack, self time only (child span time subtracted), summed
    /// across occurrences and sorted for determinism.
    pub fn folded(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for r in &self.runs {
            let root = if r.algorithm.is_empty() {
                "fdiam"
            } else {
                &r.algorithm
            };
            // Child time per parent span, to compute self time; spans
            // with no recorded parent are top level, and their totals
            // are what the root's own self time excludes.
            let mut child_nanos: BTreeMap<u64, u64> = BTreeMap::new();
            let mut toplevel_nanos = 0u64;
            for (span, _, nanos) in &r.span_ends {
                match r.span_tree.get(span) {
                    Some((_, parent)) if *parent != 0 => {
                        *child_nanos.entry(*parent).or_insert(0) += nanos;
                    }
                    _ => toplevel_nanos += nanos,
                }
            }
            for (span, phase, nanos) in &r.span_ends {
                let self_nanos = nanos.saturating_sub(child_nanos.get(span).copied().unwrap_or(0));
                let mut frames = vec![phase.clone()];
                let mut cur = r.span_tree.get(span).map(|(_, p)| *p).unwrap_or(0);
                // Parent links terminate at 0; depth-cap against
                // corrupt traces with parent cycles.
                for _ in 0..64 {
                    if cur == 0 {
                        break;
                    }
                    match r.span_tree.get(&cur) {
                        Some((p, parent)) => {
                            frames.push(p.clone());
                            cur = *parent;
                        }
                        None => break,
                    }
                }
                frames.push(root.to_string());
                frames.reverse();
                *agg.entry(frames.join(";")).or_insert(0) += self_nanos / 1_000;
            }
            // The run's unattributed driver time becomes the root's
            // self value, so the flame graph total matches `run_end`.
            if r.total_nanos > 0 {
                *agg.entry(root.to_string()).or_insert(0) +=
                    r.total_nanos.saturating_sub(toplevel_nanos) / 1_000;
            }
        }
        let mut out = String::new();
        for (stack, us) in agg {
            let _ = writeln!(out, "{stack} {us}");
        }
        out
    }

    /// The bounds-convergence curve per run: one row per
    /// `bounds_update` snapshot with an ASCII bar proportional to the
    /// gap, the offline twin of polling `GET /v1/runs/{run_id}` on a
    /// live server. Aborted runs render their partial curve with an
    /// `[aborted]` marker; a zero final gap restates the exactness
    /// certificate.
    pub fn converge(&self) -> String {
        let mut out = String::new();
        if let Some(note) = self.gap_note() {
            out.push_str(&note);
        }
        for r in &self.runs {
            let _ = writeln!(
                out,
                "run {}  {}  n={} m={}{}",
                if r.run_id.is_empty() { "?" } else { &r.run_id },
                r.algorithm,
                r.n,
                r.m,
                if r.aborted() {
                    "  [aborted: no run_end]"
                } else {
                    ""
                },
            );
            if r.bounds.is_empty() {
                let _ = writeln!(out, "  (no bounds_update events recorded)\n");
                continue;
            }
            let max_gap = r.bounds.iter().map(BoundsRow::gap).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "  {:>5}  {:<12} {:>6} {:>6} {:>6} {:>10} {:>12}",
                "bfs", "phase", "lb", "ub", "gap", "remaining", "elapsed"
            );
            for b in &r.bounds {
                let _ = writeln!(
                    out,
                    "  {:>5}  {:<12} {:>6} {:>6} {:>6} {:>10} {:>12}  {}",
                    b.bfs_count,
                    b.phase,
                    b.lb,
                    b.ub,
                    b.gap(),
                    b.vertices_remaining,
                    fmt_ms(b.elapsed_nanos),
                    gap_bar(b.gap(), max_gap),
                );
            }
            let last = r.bounds.last().expect("non-empty");
            if last.gap() == 0 && !r.aborted() {
                let _ = writeln!(out, "  certified exact after {} BFS sweeps", last.bfs_count);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Up to 32 `#` marks proportional to `gap / max_gap`; any nonzero gap
/// renders at least one mark so a live run is visibly unconverged.
fn gap_bar(gap: u64, max_gap: u64) -> String {
    if gap == 0 || max_gap == 0 {
        return String::new();
    }
    let w = ((gap as f64 / max_gap as f64) * 32.0).ceil() as usize;
    "#".repeat(w.clamp(1, 32))
}

fn fmt_ms(nanos: u64) -> String {
    format!("{:.3} ms", nanos as f64 / 1e6)
}

/// Forensics over a flight-recorder ring dump: per-shard sequence
/// accounting (retained range, drops, gap-marker consistency, holes a
/// marker does not explain), the event mix, and the slowest BFS
/// traversals and phase spans in the window. Accepts `/v1/debug/flight`
/// dumps, `--flight-dump` files, tail-sampled spool captures (the
/// `flight_capture` header is metadata), and panic post-mortems.
pub fn flight_report(text: &str) -> Result<String, String> {
    #[derive(Default)]
    struct Shard {
        events: u64,
        min_seq: u64,
        max_seq: u64,
        marker: Option<(u64, u64)>, // (dropped, next_seq)
    }
    let mut shards: BTreeMap<u64, Shard> = BTreeMap::new();
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    // span → (source, start ts_us); closed spans move to `bfs_spans`.
    let mut bfs_open: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut bfs_spans: Vec<(u64, u64, u64, u64)> = Vec::new(); // (dur_us, span, source, ecc)
    let mut phase_spans: Vec<(u64, String)> = Vec::new(); // (nanos, phase)
    let mut header = String::new();

    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    let mut parsed_any = false;
    for (pos, &(line_no, line)) in lines.iter().enumerate() {
        let v = match json::parse(line) {
            Ok(v) => v,
            // Same truncation tolerance as `Trace::parse`: a writer
            // killed mid-record leaves exactly one bad final line.
            Err(_) if parsed_any && pos + 1 == lines.len() => break,
            Err(e) => return Err(format!("line {line_no}: {e}")),
        };
        parsed_any = true;
        let ty = v
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {line_no}: no 'type' field"))?
            .to_string();

        match ty.as_str() {
            "dropped" => {
                let shard = v.get("shard").and_then(JsonValue::as_u64).unwrap_or(0);
                shards.entry(shard).or_default().marker = Some((
                    req_u64(&v, "dropped", line_no)?,
                    v.get("next_seq").and_then(JsonValue::as_u64).unwrap_or(0),
                ));
                continue;
            }
            "flight_capture" => {
                header = format!(
                    "capture: run {} {} status={} reason={} elapsed {:.3} ms\n",
                    v.get("run_id").and_then(JsonValue::as_str).unwrap_or("?"),
                    v.get("endpoint").and_then(JsonValue::as_str).unwrap_or("?"),
                    v.get("status").and_then(JsonValue::as_u64).unwrap_or(0),
                    v.get("reason").and_then(JsonValue::as_str).unwrap_or("?"),
                    v.get("elapsed_us").and_then(JsonValue::as_u64).unwrap_or(0) as f64 / 1e3,
                );
                continue;
            }
            "post_mortem" => {
                header = format!(
                    "post-mortem: thread '{}' panicked at {}: {}\n",
                    v.get("thread").and_then(JsonValue::as_str).unwrap_or("?"),
                    v.get("location").and_then(JsonValue::as_str).unwrap_or("?"),
                    v.get("message").and_then(JsonValue::as_str).unwrap_or("?"),
                );
                continue;
            }
            "in_flight_run" => {
                let _ = writeln!(
                    header,
                    "in-flight at panic: run {} {} n={} m={}",
                    v.get("run_id").and_then(JsonValue::as_str).unwrap_or("?"),
                    v.get("algorithm")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("?"),
                    v.get("n").and_then(JsonValue::as_u64).unwrap_or(0),
                    v.get("m").and_then(JsonValue::as_u64).unwrap_or(0),
                );
                continue;
            }
            _ => {}
        }

        *kinds.entry(ty.clone()).or_insert(0) += 1;
        if let (Some(shard), Some(seq)) = (
            v.get("shard").and_then(JsonValue::as_u64),
            v.get("seq").and_then(JsonValue::as_u64),
        ) {
            let s = shards.entry(shard).or_default();
            if s.events == 0 {
                (s.min_seq, s.max_seq) = (seq, seq);
            } else {
                s.min_seq = s.min_seq.min(seq);
                s.max_seq = s.max_seq.max(seq);
            }
            s.events += 1;
        }

        let ts = v.get("ts_us").and_then(JsonValue::as_u64).unwrap_or(0);
        match ty.as_str() {
            "bfs_start" => {
                let span = v.get("span").and_then(JsonValue::as_u64).unwrap_or(0);
                let source = v.get("source").and_then(JsonValue::as_u64).unwrap_or(0);
                bfs_open.insert(span, (source, ts));
            }
            "bfs_end" => {
                let span = v.get("span").and_then(JsonValue::as_u64).unwrap_or(0);
                let ecc = v
                    .get("eccentricity")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                if let Some((source, t0)) = bfs_open.remove(&span) {
                    bfs_spans.push((ts.saturating_sub(t0), span, source, ecc));
                }
            }
            "phase_end" => {
                let phase = v
                    .get("phase")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
                    .to_string();
                phase_spans.push((req_u64(&v, "nanos", line_no)?, phase));
            }
            _ => {}
        }
    }

    let mut out = header;
    let total_events: u64 = shards.values().map(|s| s.events).sum();
    let total_dropped: u64 = shards
        .values()
        .filter_map(|s| s.marker.map(|(d, _)| d))
        .sum();
    let _ = writeln!(
        out,
        "flight dump: {} event(s) retained across {} shard(s), {} dropped",
        total_events,
        shards.values().filter(|s| s.events > 0).count(),
        total_dropped,
    );
    for (id, s) in &shards {
        if s.events == 0 {
            // Marker without any retained event — everything in the
            // window was overwritten.
            if let Some((dropped, next)) = s.marker {
                let _ = writeln!(
                    out,
                    "  shard {id}: 0 events retained, {dropped} dropped (next_seq {next})"
                );
            }
            continue;
        }
        // Per-shard seqs are contiguous in a healthy dump: anything the
        // retained range covers but the dump lacks is an unexplained
        // hole (a parallel writer bug, or hand-edited input).
        let span = s.max_seq - s.min_seq + 1;
        let holes = span.saturating_sub(s.events);
        let check = match s.marker {
            Some((_, next)) if next != s.min_seq => format!(
                "MARKER MISMATCH: next_seq {} but oldest retained seq {}",
                next, s.min_seq
            ),
            _ if holes > 0 => format!("{holes} unexplained missing seq(s)"),
            Some((dropped, _)) => format!("dropped {dropped}, gap marker agrees"),
            None => "complete".to_string(),
        };
        let _ = writeln!(
            out,
            "  shard {id}: {} events, seq {}..{} — {check}",
            s.events, s.min_seq, s.max_seq,
        );
    }

    if !kinds.is_empty() {
        let mix = kinds
            .iter()
            .map(|(k, n)| format!("{k}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "\nevent mix: {mix}");
    }

    bfs_spans.sort_by(|a, b| b.cmp(a));
    if !bfs_spans.is_empty() {
        let _ = writeln!(out, "\nslowest BFS traversals in the window:");
        for (dur, span, source, ecc) in bfs_spans.iter().take(5) {
            let _ = writeln!(
                out,
                "  span={span} source={source} eccentricity={ecc}  {:.3} ms",
                *dur as f64 / 1e3,
            );
        }
        let open = bfs_open.len();
        if open > 0 {
            let _ = writeln!(
                out,
                "  ({open} traversal(s) without a bfs_end in the window)"
            );
        }
    }

    phase_spans.sort_by(|a, b| b.cmp(a));
    if !phase_spans.is_empty() {
        let _ = writeln!(out, "\nslowest phase spans in the window:");
        for (nanos, phase) in phase_spans.iter().take(5) {
            let _ = writeln!(out, "  {phase}  {}", fmt_ms(*nanos));
        }
    }
    Ok(out)
}

/// Runs the in-tree Prometheus exposition linter over a scraped
/// `/metrics` body. `Ok` is the human-readable summary; `Err` is one
/// message per violation.
pub fn lint_metrics(text: &str) -> Result<String, Vec<String>> {
    let report = fdiam_obs::expo::lint(text)?;
    Ok(format!(
        "exposition OK: {} samples, {} counters, {} gauges, {} histograms",
        report.samples, report.counters, report.gauges, report.histograms
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
{"type":"run_start","ts_us":0,"algorithm":"fdiam","n":10,"m":9,"run":"00000000000000aa"}
{"type":"phase_start","ts_us":1,"phase":"two_sweep","span":1,"parent":0}
{"type":"bfs_start","ts_us":2,"source":0,"span":7}
{"type":"bfs_level","ts_us":3,"level":1,"frontier":3,"edges_scanned":5,"bottom_up":false,"span":7}
{"type":"bfs_level","ts_us":4,"level":2,"frontier":6,"edges_scanned":9,"bottom_up":true,"span":7}
{"type":"bfs_end","ts_us":5,"source":0,"eccentricity":2,"visited":10,"span":7}
{"type":"phase_start","ts_us":6,"phase":"ecc_bfs","span":2,"parent":1}
{"type":"phase_end","ts_us":7,"phase":"ecc_bfs","nanos":600,"span":2}
{"type":"phase_end","ts_us":8,"phase":"two_sweep","nanos":1000,"span":1}
{"type":"bounds_update","ts_us":9,"run":"00000000000000aa","phase":"two_sweep","bfs_count":2,"lb":3,"ub":8,"vertices_remaining":8,"elapsed_nanos":1500}
{"type":"phase_start","ts_us":10,"phase":"winnow","span":3,"parent":0}
{"type":"phase_end","ts_us":11,"phase":"winnow","nanos":300,"span":3}
{"type":"removal_summary","ts_us":12,"winnow":5,"eliminate":2,"chain":1,"degree0":0,"computed":2}
{"type":"worker_load","ts_us":13,"workers":4,"total_edges":18,"max_busy_nanos":500,"mean_busy_nanos":250,"imbalance":2.0}
{"type":"bounds_update","ts_us":14,"run":"00000000000000aa","phase":"done","bfs_count":4,"lb":4,"ub":4,"vertices_remaining":0,"elapsed_nanos":1900}
{"type":"run_end","ts_us":15,"diameter":4,"connected":true,"nanos":2000,"run":"00000000000000aa"}
"#;

    #[test]
    fn parses_runs_phases_and_removals() {
        let t = Trace::parse(SAMPLE).unwrap();
        assert_eq!(t.runs.len(), 1);
        let r = &t.runs[0];
        assert_eq!(r.run_id, "00000000000000aa");
        assert_eq!((r.n, r.m), (10, 9));
        assert_eq!(r.diameter, Some(4));
        assert_eq!(r.total_nanos, 2000);
        assert_eq!(r.phase_nanos["ecc_bfs"], 600);
        assert_eq!(r.phase_nanos["winnow"], 300);
        assert_eq!(r.leaf_nanos(), 900);
        let rm = r.removals.unwrap();
        assert_eq!(rm.winnow, 5);
        assert_eq!(rm.total(), 10);
        assert_eq!(r.worker_load.unwrap().workers, 4);
    }

    #[test]
    fn bfs_levels_match_by_span() {
        let t = Trace::parse(SAMPLE).unwrap();
        let trav = &t.runs[0].traversals;
        assert_eq!(trav.len(), 1);
        assert_eq!(trav[0].span, 7);
        assert_eq!(trav[0].eccentricity, Some(2));
        assert_eq!(trav[0].levels.len(), 2);
        assert!(trav[0].levels[1].bottom_up);
        let text = t.levels();
        assert!(text.contains("bfs span=7 source=0 eccentricity=2 visited=10"));
    }

    #[test]
    fn report_contains_fractions_and_breakdown() {
        let text = Trace::parse(SAMPLE).unwrap().report();
        // ecc_bfs: 600/2000 = 30%, winnow 15%, other 1100/2000 = 55%.
        assert!(text.contains("ecc_bfs"), "{text}");
        assert!(text.contains("30.0%"), "{text}");
        assert!(text.contains("15.0%"), "{text}");
        assert!(text.contains("55.0%"), "{text}");
        // Removal shares: winnow 5/10 = 50%.
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("imbalance=2.00"), "{text}");
    }

    #[test]
    fn folded_subtracts_child_time_and_nests_phases() {
        let text = Trace::parse(SAMPLE).unwrap().folded();
        // two_sweep span (1000 ns) minus its ecc_bfs child (600 ns) =
        // 400 ns self → 0 µs; the child keeps its own 600 ns → 0 µs.
        // Use the stack structure (not the truncated µs values) as the
        // assertion target.
        assert!(
            text.contains("fdiam;two_sweep;ecc_bfs "),
            "nested stack missing:\n{text}"
        );
        assert!(text.contains("fdiam;winnow "), "{text}");
        // Root self time: 2000 ns total minus the top-level spans
        // (two_sweep 1000 + winnow 300) = 700 ns → 0 µs.
        assert!(text.lines().any(|l| l == "fdiam 0"), "{text}");
    }

    #[test]
    fn unknown_event_types_are_skipped() {
        let t = Trace::parse(
            "{\"type\":\"future_thing\",\"x\":1}\n{\"type\":\"progress\",\"active\":3,\"bound\":2}\n",
        )
        .unwrap();
        // Events before any run_start open an anonymous run.
        assert_eq!(t.runs.len(), 1);
        assert_eq!(t.runs[0].run_id, "");
    }

    #[test]
    fn malformed_json_is_an_error_with_line_number() {
        let e = Trace::parse("{\"type\":\"run_start\"\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
    }

    #[test]
    fn parses_bounds_rows_in_order() {
        let t = Trace::parse(SAMPLE).unwrap();
        let b = &t.runs[0].bounds;
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].phase, "two_sweep");
        assert_eq!((b[0].bfs_count, b[0].lb, b[0].ub), (2, 3, 8));
        assert_eq!(b[0].gap(), 5);
        assert_eq!(b[0].vertices_remaining, 8);
        assert_eq!(b[1].phase, "done");
        assert_eq!(b[1].gap(), 0);
    }

    #[test]
    fn converge_renders_curve_and_certificate() {
        let text = Trace::parse(SAMPLE).unwrap().converge();
        assert!(text.contains("run 00000000000000aa"), "{text}");
        // The widest gap (5) gets the full 32-mark bar; the final
        // zero-gap row gets none.
        assert!(text.contains(&"#".repeat(32)), "{text}");
        assert!(
            text.contains("certified exact after 4 BFS sweeps"),
            "{text}"
        );
        assert!(!text.contains("[aborted"), "{text}");
    }

    #[test]
    fn truncated_final_line_reads_as_aborted_run() {
        // Cut the sample before run_end and leave a half-written
        // record, as a killed process would.
        let cut = SAMPLE
            .split("{\"type\":\"run_end\"")
            .next()
            .unwrap()
            .to_string()
            + "{\"type\":\"run_end\",\"ts_us\":15,\"diam";
        let t = Trace::parse(&cut).unwrap();
        assert_eq!(t.runs.len(), 1);
        let r = &t.runs[0];
        assert!(r.aborted());
        assert_eq!(r.bounds.len(), 2, "bounds rows before the cut survive");
        let report = t.report();
        assert!(report.contains("[aborted: no run_end]"), "{report}");
        // Partial fractions fall back to attributed leaf time, so the
        // ecc_bfs row shows 600/900 rather than 600/1.
        assert!(report.contains("66.7%"), "{report}");
        assert!(t.converge().contains("[aborted: no run_end]"));
        // levels/folded still produce partial output without erroring.
        assert!(t.levels().contains("bfs span=7"));
        assert!(t.folded().contains("fdiam;winnow "));
    }

    #[test]
    fn malformed_line_before_the_end_is_still_an_error() {
        let e = Trace::parse("{\"type\":\"run_start\"\n{\"type\":\"progress\"}\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
    }

    #[test]
    fn aborted_bfs_traversal_is_marked_in_levels() {
        let t =
            Trace::parse("{\"type\":\"bfs_start\",\"ts_us\":0,\"source\":3,\"span\":9}\n").unwrap();
        let text = t.levels();
        assert!(
            text.contains("bfs span=9 source=3 eccentricity=? visited=?  [aborted]"),
            "{text}"
        );
    }

    // A flight-recorder dump: shard 0 wrapped (42 events dropped,
    // marker before its oldest retained seq 43), shard 1 is complete.
    const FLIGHT_SAMPLE: &str = r#"
{"type":"dropped","ts_us":9,"shard":0,"dropped":42,"next_seq":43}
{"type":"bfs_start","ts_us":10,"source":5,"span":7,"seq":43,"shard":0}
{"type":"bfs_level","ts_us":11,"level":1,"frontier":3,"edges_scanned":5,"bottom_up":false,"span":7,"seq":44,"shard":0}
{"type":"bfs_end","ts_us":210,"source":5,"eccentricity":4,"visited":10,"span":7,"seq":45,"shard":0}
{"type":"bfs_start","ts_us":220,"source":6,"span":8,"seq":1,"shard":1}
{"type":"bfs_end","ts_us":240,"source":6,"eccentricity":3,"visited":10,"span":8,"seq":2,"shard":1}
{"type":"phase_end","ts_us":250,"phase":"ecc_bfs","nanos":230000,"span":9,"seq":3,"shard":1}
"#;

    #[test]
    fn gap_markers_are_accounted_not_parsed_as_runs() {
        let t = Trace::parse(FLIGHT_SAMPLE).unwrap();
        assert_eq!(t.gaps.len(), 1);
        assert_eq!(
            t.gaps[0],
            GapMarker {
                shard: 0,
                dropped: 42,
                next_seq: 43
            }
        );
        assert_eq!(t.dropped_events(), 42);
        // The marker and the events opened exactly one anonymous run
        // (the marker itself must not open one).
        assert_eq!(t.runs.len(), 1);
        assert_eq!(t.runs[0].traversals.len(), 2);
        for render in [t.report(), t.levels(), t.converge()] {
            assert!(
                render.contains("dropped 42 event(s) across 1 shard(s)"),
                "{render}"
            );
        }
        // Ordinary traces stay note-free.
        assert!(!Trace::parse(SAMPLE).unwrap().report().contains("note:"));
    }

    #[test]
    fn metadata_lines_do_not_open_anonymous_runs() {
        let t = Trace::parse(
            "{\"type\":\"post_mortem\",\"ts_us\":1,\"message\":\"x\",\"location\":\"y\",\"thread\":\"z\"}\n\
             {\"type\":\"in_flight_run\",\"run_id\":\"0a\",\"algorithm\":\"fdiam\",\"n\":1,\"m\":1}\n\
             {\"type\":\"flight_capture\",\"run_id\":\"0b\",\"endpoint\":\"diameter\",\"status\":504,\"reason\":\"deadline\",\"elapsed_us\":9}\n\
             {\"type\":\"access\",\"run_id\":\"0c\",\"status\":200}\n",
        )
        .unwrap();
        assert!(t.runs.is_empty(), "metadata must not fabricate runs");
    }

    #[test]
    fn flight_report_accounts_shards_and_ranks_spans() {
        let text = flight_report(FLIGHT_SAMPLE).unwrap();
        assert!(
            text.contains("6 event(s) retained across 2 shard(s), 42 dropped"),
            "{text}"
        );
        assert!(
            text.contains("shard 0: 3 events, seq 43..45 — dropped 42, gap marker agrees"),
            "{text}"
        );
        assert!(
            text.contains("shard 1: 3 events, seq 1..3 — complete"),
            "{text}"
        );
        assert!(text.contains("bfs_end=2"), "{text}");
        // span 7 took 200 µs, span 8 took 20 µs — ranked slowest first.
        let pos7 = text.find("span=7").unwrap();
        let pos8 = text.find("span=8").unwrap();
        assert!(pos7 < pos8, "{text}");
        assert!(text.contains("0.200 ms"), "{text}");
        assert!(text.contains("ecc_bfs  0.230 ms"), "{text}");
    }

    #[test]
    fn flight_report_flags_marker_mismatch_and_holes() {
        // Marker says next_seq 5 but the oldest retained seq is 7, and
        // seq 8 is missing from the retained range.
        let bad = "{\"type\":\"dropped\",\"ts_us\":0,\"shard\":0,\"dropped\":4,\"next_seq\":5}\n\
                   {\"type\":\"progress\",\"ts_us\":1,\"active\":3,\"bound\":2,\"seq\":7,\"shard\":0}\n\
                   {\"type\":\"progress\",\"ts_us\":2,\"active\":2,\"bound\":2,\"seq\":9,\"shard\":0}\n";
        let text = flight_report(bad).unwrap();
        assert!(text.contains("MARKER MISMATCH"), "{text}");

        let holey = "{\"type\":\"progress\",\"ts_us\":1,\"active\":3,\"bound\":2,\"seq\":7,\"shard\":0}\n\
                     {\"type\":\"progress\",\"ts_us\":2,\"active\":2,\"bound\":2,\"seq\":9,\"shard\":0}\n";
        let text = flight_report(holey).unwrap();
        assert!(text.contains("1 unexplained missing seq(s)"), "{text}");
    }

    #[test]
    fn flight_report_renders_capture_and_post_mortem_headers() {
        let capture = "{\"type\":\"flight_capture\",\"run_id\":\"0b\",\"endpoint\":\"diameter\",\"status\":504,\"reason\":\"deadline\",\"elapsed_us\":1500}\n\
                       {\"type\":\"progress\",\"ts_us\":1,\"active\":3,\"bound\":2,\"seq\":1,\"shard\":0}\n";
        let text = flight_report(capture).unwrap();
        assert!(
            text.contains("capture: run 0b diameter status=504 reason=deadline elapsed 1.500 ms"),
            "{text}"
        );

        let pm = "{\"type\":\"post_mortem\",\"ts_us\":1,\"message\":\"boom\",\"location\":\"lib.rs:1\",\"thread\":\"w0\"}\n\
                  {\"type\":\"in_flight_run\",\"run_id\":\"0a\",\"algorithm\":\"panic_test\",\"n\":0,\"m\":0}\n";
        let text = flight_report(pm).unwrap();
        assert!(
            text.contains("post-mortem: thread 'w0' panicked at lib.rs:1: boom"),
            "{text}"
        );
        assert!(
            text.contains("in-flight at panic: run 0a panic_test n=0 m=0"),
            "{text}"
        );
    }

    #[test]
    fn lint_metrics_accepts_valid_and_rejects_garbage() {
        let ok = "# TYPE fdiam_x_total counter\nfdiam_x_total 3\n";
        assert!(lint_metrics(ok).unwrap().contains("1 samples"));
        assert!(lint_metrics("fdiam_x_total not_a_number\n").is_err());
    }
}
