//! `fdiam-trace` — analyze F-Diam JSONL traces and lint Prometheus
//! expositions. Argv conventions follow the `fdiam` CLI: errors print
//! usage and exit 2; lint violations and parse failures exit 1.

use fdiam_trace::{flight_report, lint_metrics, Trace};
use std::io::Read as _;

const USAGE: &str = "\
USAGE:
  fdiam-trace report       TRACE.jsonl   stage-runtime + vertex-removal breakdowns
  fdiam-trace levels       TRACE.jsonl   per-level BFS frontier timelines
  fdiam-trace folded       TRACE.jsonl   flamegraph folded stacks (pipe to flamegraph.pl)
  fdiam-trace converge     TRACE.jsonl   bounds-convergence curve (gap vs BFS count) per run
  fdiam-trace flight       DUMP.jsonl    flight-recorder forensics: shard/seq/gap accounting,
                                         slowest traversals and phase spans in the window
  fdiam-trace lint-metrics METRICS.txt   validate a scraped Prometheus /metrics body

A file argument of '-' reads stdin. Record traces with:
  fdiam diameter --spec grid:500x500 --trace run.jsonl
Dump a flight recorder with:
  curl -s http://HOST/v1/debug/flight | fdiam-trace flight -
  fdiam diameter --spec grid:500x500 --flight-dump ring.jsonl
";

fn read_input(arg: &str) -> Result<String, String> {
    if arg == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        return Ok(s);
    }
    std::fs::read_to_string(arg).map_err(|e| format!("cannot read '{arg}': {e}"))
}

fn run(cmd: &str, file: &str) -> Result<String, String> {
    let text = read_input(file)?;
    match cmd {
        "report" => Ok(Trace::parse(&text)?.report()),
        "levels" => Ok(Trace::parse(&text)?.levels()),
        "folded" => Ok(Trace::parse(&text)?.folded()),
        "converge" => Ok(Trace::parse(&text)?.converge()),
        "flight" => flight_report(&text),
        "lint-metrics" => match lint_metrics(&text) {
            Ok(summary) => Ok(summary + "\n"),
            Err(violations) => Err(violations.join("\n")),
        },
        other => unreachable!("main validates the command, got '{other}'"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match args.as_slice() {
        [cmd, file] => (cmd.as_str(), file.as_str()),
        [h] if h == "--help" || h == "-h" || h == "help" => {
            print!("{USAGE}");
            return;
        }
        _ => {
            eprint!("error: expected a command and one file\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if !matches!(
        cmd,
        "report" | "levels" | "folded" | "converge" | "flight" | "lint-metrics"
    ) {
        eprint!("error: unknown command '{cmd}'\n\n{USAGE}");
        std::process::exit(2);
    }
    match run(cmd, file) {
        // Write without `print!` so a closed pipe (`… | head`) ends
        // the program quietly instead of panicking.
        Ok(out) => {
            use std::io::Write as _;
            let mut stdout = std::io::stdout().lock();
            if let Err(e) = stdout
                .write_all(out.as_bytes())
                .and_then(|()| stdout.flush())
            {
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    eprintln!("error: cannot write output: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
