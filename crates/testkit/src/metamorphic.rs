//! Metamorphic testing: transforms whose **exact** effect on the
//! diameter is known in advance, so the assertion is a predicted
//! number, not merely "all codes still agree with each other".
//!
//! Seven transforms (the issue asks for ≥ 5):
//!
//! | transform                  | predicted effect                          |
//! |----------------------------|-------------------------------------------|
//! | vertex permutation         | diameter and connectivity unchanged        |
//! | edge duplication           | CSR identical to the base graph            |
//! | add k isolated vertices    | CC diameter unchanged, disconnected        |
//! | disjoint union with self   | CC diameter unchanged, disconnected        |
//! | disjoint union with P_p    | max(old, p−1), disconnected                |
//! | pendant path of k at v*    | exactly old + k (v* = max-ecc vertex)      |
//! | universal vertex           | 0 / 1 / 2 (empty / complete / otherwise)   |
//!
//! The pendant-path lemma: if `ecc(v*) = D` is the global maximum,
//! the new tail endpoint is at distance `D + k` from the vertex that
//! realized `ecc(v*)`, and no pair can exceed it because
//! `d(x, tail_i) = d(x, v*) + i ≤ D + k` and the pendant path creates
//! no shortcuts.

use crate::oracle::Oracle;
use fdiam_baselines::ifub::ifub;
use fdiam_baselines::naive::naive_diameter;
use fdiam_core::FdiamConfig;
use fdiam_graph::builder::EdgeList;
use fdiam_graph::generators::path;
use fdiam_graph::transform::{
    disjoint_union, permute, with_isolated_vertices, with_pendant_path, with_universal_vertex,
};
use fdiam_graph::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One transformed graph together with its predicted (not re-derived)
/// diameter semantics.
pub struct MetamorphicCase {
    pub name: &'static str,
    pub graph: CsrGraph,
    /// Predicted largest-CC diameter, computed analytically from the
    /// base oracle.
    pub expected_largest_cc: u32,
    /// Predicted connectivity.
    pub expected_connected: bool,
    /// When set, the transform is an identity at CSR level and the
    /// result must be bit-for-bit equal to the base graph.
    pub expect_identical_csr: bool,
}

/// Builds all applicable metamorphic cases for `base`. `seed` drives
/// the random permutation and the pendant-path length.
pub fn metamorphic_cases(base: &CsrGraph, seed: u64) -> Vec<MetamorphicCase> {
    let o = Oracle::compute(base);
    let n = base.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cases = Vec::new();

    // 1. Vertex permutation: relabeling cannot change any distance.
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut rng);
    cases.push(MetamorphicCase {
        name: "permute",
        graph: permute(base, &perm),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: o.connected,
        expect_identical_csr: false,
    });

    // 2. Edge duplication: the builder dedups, so feeding every edge
    // twice must reproduce the base CSR exactly.
    let mut el = EdgeList::with_capacity(n, base.num_arcs());
    for (u, w) in base.arcs() {
        if u < w {
            el.push(u, w);
            el.push(u, w);
        }
    }
    cases.push(MetamorphicCase {
        name: "duplicate-edges",
        graph: el.to_undirected_csr(),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: o.connected,
        expect_identical_csr: true,
    });

    // 3. Isolated vertices: eccentricity 0 each, so the CC diameter is
    // untouched, but the graph (now ≥ 3 vertices) is disconnected.
    cases.push(MetamorphicCase {
        name: "add-isolated",
        graph: with_isolated_vertices(base, 3),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: false,
        expect_identical_csr: false,
    });

    // 4. Disjoint union with itself: two copies of every component.
    cases.push(MetamorphicCase {
        name: "self-union",
        graph: disjoint_union(base, base),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: n == 0,
        expect_identical_csr: false,
    });

    // 5. Disjoint union with a path one longer than the current
    // diameter: the path side must win by exactly 1.
    let p = o.largest_cc_diameter as usize + 2;
    cases.push(MetamorphicCase {
        name: "union-path",
        graph: disjoint_union(base, &path(p)),
        expected_largest_cc: o.largest_cc_diameter + 1,
        expected_connected: n == 0,
        expect_identical_csr: false,
    });

    if n > 0 {
        // 6. Pendant path at a maximum-eccentricity vertex: grows the
        // diameter by exactly its length (lemma in the module docs).
        let k = 1 + (seed % 4) as usize;
        let vstar = o
            .eccentricities
            .iter()
            .position(|&e| e == o.largest_cc_diameter)
            .expect("non-empty graph has a max-ecc vertex") as VertexId;
        cases.push(MetamorphicCase {
            name: "pendant-path",
            graph: with_pendant_path(base, vstar, k),
            expected_largest_cc: o.largest_cc_diameter + k as u32,
            expected_connected: o.connected,
            expect_identical_csr: false,
        });
    }

    // 7. Universal vertex: diameter collapses to 0 / 1 / 2.
    let m = base.num_undirected_edges();
    let complete = n >= 1 && m == n * (n - 1) / 2;
    cases.push(MetamorphicCase {
        name: "universal-vertex",
        graph: with_universal_vertex(base),
        expected_largest_cc: if n == 0 {
            0
        } else if complete {
            1
        } else {
            2
        },
        expected_connected: true,
        expect_identical_csr: false,
    });

    cases
}

/// Runs the metamorphic suite on `base`: every case's *predicted*
/// diameter must be produced by the oracle, F-Diam (serial and
/// parallel), iFUB, ExactSumSweep, and naive on the transformed graph.
pub fn assert_metamorphic(tag: &str, base: &CsrGraph, seed: u64) {
    for case in metamorphic_cases(base, seed) {
        let ctx = format!(
            "{tag}/{} (base n = {}, m = {})",
            case.name,
            base.num_vertices(),
            base.num_undirected_edges()
        );
        if case.expect_identical_csr {
            assert_eq!(&case.graph, base, "{ctx}: CSR not identical");
        }
        let g = &case.graph;

        let o = Oracle::compute(g);
        assert_eq!(
            (o.largest_cc_diameter, o.connected),
            (case.expected_largest_cc, case.expected_connected),
            "{ctx}: oracle disagrees with the analytic prediction"
        );

        for (code, cfg) in [
            ("fdiam-serial", FdiamConfig::serial()),
            ("fdiam-parallel", FdiamConfig::parallel()),
        ] {
            let r = fdiam_core::diameter_with(g, &cfg).result;
            assert_eq!(
                (r.largest_cc_diameter, r.connected),
                (case.expected_largest_cc, case.expected_connected),
                "{ctx}: {code} missed the predicted effect"
            );
        }
        let r = ifub(g);
        assert_eq!(
            (r.largest_cc_diameter, r.connected),
            (case.expected_largest_cc, case.expected_connected),
            "{ctx}: ifub missed the predicted effect"
        );
        let r = naive_diameter(g);
        assert_eq!(
            (r.largest_cc_diameter, r.connected),
            (case.expected_largest_cc, case.expected_connected),
            "{ctx}: naive missed the predicted effect"
        );
        if g.num_vertices() > 0 {
            let r = fdiam_analytics::sum_sweep::exact_sum_sweep(g).expect("non-empty graph");
            assert_eq!(
                (r.diameter, r.connected),
                (case.expected_largest_cc, case.expected_connected),
                "{ctx}: sum-sweep missed the predicted effect"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{cycle, grid2d, lollipop, path, star};

    #[test]
    fn predictions_hold_on_classic_shapes() {
        for (tag, g) in [
            ("path", path(8)),
            ("cycle", cycle(9)),
            ("star", star(6)),
            ("grid", grid2d(4, 5)),
            ("lollipop", lollipop(4, 5)),
        ] {
            assert_metamorphic(tag, &g, 0xF_D1A);
        }
    }

    #[test]
    fn predictions_hold_on_degenerate_bases() {
        assert_metamorphic("empty", &CsrGraph::empty(0), 7);
        assert_metamorphic("singleton", &CsrGraph::empty(1), 7);
        assert_metamorphic("k2", &path(2), 7);
        assert_metamorphic("isolated3", &CsrGraph::empty(3), 7);
    }

    #[test]
    fn pendant_path_case_grows_by_exact_len() {
        let base = cycle(8); // diameter 4
        let found: Vec<_> = metamorphic_cases(&base, 2) // k = 1 + 2 % 4 = 3
            .into_iter()
            .filter(|c| c.name == "pendant-path")
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].expected_largest_cc, 4 + 3);
    }

    #[test]
    fn seven_transforms_on_nonempty_bases() {
        assert_eq!(metamorphic_cases(&path(5), 0).len(), 7);
        // pendant-path is skipped only for the 0-vertex base
        assert_eq!(metamorphic_cases(&CsrGraph::empty(0), 0).len(), 6);
    }
}
