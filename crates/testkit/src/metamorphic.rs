//! Metamorphic testing: transforms whose **exact** effect on the
//! diameter is known in advance, so the assertion is a predicted
//! number, not merely "all codes still agree with each other".
//!
//! Seven transforms (the issue asks for ≥ 5):
//!
//! | transform                  | predicted effect                          |
//! |----------------------------|-------------------------------------------|
//! | vertex permutation         | diameter and connectivity unchanged        |
//! | edge duplication           | CSR identical to the base graph            |
//! | add k isolated vertices    | CC diameter unchanged, disconnected        |
//! | disjoint union with self   | CC diameter unchanged, disconnected        |
//! | disjoint union with P_p    | max(old, p−1), disconnected                |
//! | pendant path of k at v*    | exactly old + k (v* = max-ecc vertex)      |
//! | universal vertex           | 0 / 1 / 2 (empty / complete / otherwise)   |
//!
//! The pendant-path lemma: if `ecc(v*) = D` is the global maximum,
//! the new tail endpoint is at distance `D + k` from the vertex that
//! realized `ecc(v*)`, and no pair can exceed it because
//! `d(x, tail_i) = d(x, v*) + i ≤ D + k` and the pendant path creates
//! no shortcuts.

use crate::oracle::{DirectedOracle, Oracle};
use fdiam_analytics::{
    condensation, directed_eccentricities, directed_sum_sweep, directed_sum_sweep_batched,
    StronglyConnectedComponents,
};
use fdiam_baselines::ifub::ifub;
use fdiam_baselines::naive::naive_diameter;
use fdiam_core::FdiamConfig;
use fdiam_graph::builder::EdgeList;
use fdiam_graph::generators::path;
use fdiam_graph::transform::{
    disjoint_union, permute, with_isolated_vertices, with_pendant_path, with_universal_vertex,
};
use fdiam_graph::{CsrGraph, DiGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One transformed graph together with its predicted (not re-derived)
/// diameter semantics.
pub struct MetamorphicCase {
    pub name: &'static str,
    pub graph: CsrGraph,
    /// Predicted largest-CC diameter, computed analytically from the
    /// base oracle.
    pub expected_largest_cc: u32,
    /// Predicted connectivity.
    pub expected_connected: bool,
    /// When set, the transform is an identity at CSR level and the
    /// result must be bit-for-bit equal to the base graph.
    pub expect_identical_csr: bool,
}

/// Builds all applicable metamorphic cases for `base`. `seed` drives
/// the random permutation and the pendant-path length.
pub fn metamorphic_cases(base: &CsrGraph, seed: u64) -> Vec<MetamorphicCase> {
    let o = Oracle::compute(base);
    let n = base.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cases = Vec::new();

    // 1. Vertex permutation: relabeling cannot change any distance.
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut rng);
    cases.push(MetamorphicCase {
        name: "permute",
        graph: permute(base, &perm),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: o.connected,
        expect_identical_csr: false,
    });

    // 2. Edge duplication: the builder dedups, so feeding every edge
    // twice must reproduce the base CSR exactly.
    let mut el = EdgeList::with_capacity(n, base.num_arcs());
    for (u, w) in base.arcs() {
        if u < w {
            el.push(u, w);
            el.push(u, w);
        }
    }
    cases.push(MetamorphicCase {
        name: "duplicate-edges",
        graph: el.to_undirected_csr(),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: o.connected,
        expect_identical_csr: true,
    });

    // 3. Isolated vertices: eccentricity 0 each, so the CC diameter is
    // untouched, but the graph (now ≥ 3 vertices) is disconnected.
    cases.push(MetamorphicCase {
        name: "add-isolated",
        graph: with_isolated_vertices(base, 3),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: false,
        expect_identical_csr: false,
    });

    // 4. Disjoint union with itself: two copies of every component.
    cases.push(MetamorphicCase {
        name: "self-union",
        graph: disjoint_union(base, base),
        expected_largest_cc: o.largest_cc_diameter,
        expected_connected: n == 0,
        expect_identical_csr: false,
    });

    // 5. Disjoint union with a path one longer than the current
    // diameter: the path side must win by exactly 1.
    let p = o.largest_cc_diameter as usize + 2;
    cases.push(MetamorphicCase {
        name: "union-path",
        graph: disjoint_union(base, &path(p)),
        expected_largest_cc: o.largest_cc_diameter + 1,
        expected_connected: n == 0,
        expect_identical_csr: false,
    });

    if n > 0 {
        // 6. Pendant path at a maximum-eccentricity vertex: grows the
        // diameter by exactly its length (lemma in the module docs).
        let k = 1 + (seed % 4) as usize;
        let vstar = o
            .eccentricities
            .iter()
            .position(|&e| e == o.largest_cc_diameter)
            .expect("non-empty graph has a max-ecc vertex") as VertexId;
        cases.push(MetamorphicCase {
            name: "pendant-path",
            graph: with_pendant_path(base, vstar, k),
            expected_largest_cc: o.largest_cc_diameter + k as u32,
            expected_connected: o.connected,
            expect_identical_csr: false,
        });
    }

    // 7. Universal vertex: diameter collapses to 0 / 1 / 2.
    let m = base.num_undirected_edges();
    let complete = n >= 1 && m == n * (n - 1) / 2;
    cases.push(MetamorphicCase {
        name: "universal-vertex",
        graph: with_universal_vertex(base),
        expected_largest_cc: if n == 0 {
            0
        } else if complete {
            1
        } else {
            2
        },
        expected_connected: true,
        expect_identical_csr: false,
    });

    cases
}

/// Runs the metamorphic suite on `base`: every case's *predicted*
/// diameter must be produced by the oracle, F-Diam (serial and
/// parallel), iFUB, ExactSumSweep, and naive on the transformed graph.
pub fn assert_metamorphic(tag: &str, base: &CsrGraph, seed: u64) {
    for case in metamorphic_cases(base, seed) {
        let ctx = format!(
            "{tag}/{} (base n = {}, m = {})",
            case.name,
            base.num_vertices(),
            base.num_undirected_edges()
        );
        if case.expect_identical_csr {
            assert_eq!(&case.graph, base, "{ctx}: CSR not identical");
        }
        let g = &case.graph;

        let o = Oracle::compute(g);
        assert_eq!(
            (o.largest_cc_diameter, o.connected),
            (case.expected_largest_cc, case.expected_connected),
            "{ctx}: oracle disagrees with the analytic prediction"
        );

        for (code, cfg) in [
            ("fdiam-serial", FdiamConfig::serial()),
            ("fdiam-parallel", FdiamConfig::parallel()),
        ] {
            let r = fdiam_core::diameter_with(g, &cfg).result;
            assert_eq!(
                (r.largest_cc_diameter, r.connected),
                (case.expected_largest_cc, case.expected_connected),
                "{ctx}: {code} missed the predicted effect"
            );
        }
        let r = ifub(g);
        assert_eq!(
            (r.largest_cc_diameter, r.connected),
            (case.expected_largest_cc, case.expected_connected),
            "{ctx}: ifub missed the predicted effect"
        );
        let r = naive_diameter(g);
        assert_eq!(
            (r.largest_cc_diameter, r.connected),
            (case.expected_largest_cc, case.expected_connected),
            "{ctx}: naive missed the predicted effect"
        );
        if g.num_vertices() > 0 {
            let r = fdiam_analytics::sum_sweep::exact_sum_sweep(g).expect("non-empty graph");
            assert_eq!(
                (r.diameter, r.connected),
                (case.expected_largest_cc, case.expected_connected),
                "{ctx}: sum-sweep missed the predicted effect"
            );
        }
    }
}

/// One transformed digraph with its analytically predicted directed
/// semantics (`None` aggregates = ∞, `num_sccs: None` = not
/// predicted for this transform).
pub struct DirectedMetamorphicCase {
    pub name: &'static str,
    pub graph: DiGraph,
    pub expected_diameter: Option<u32>,
    pub expected_radius: Option<u32>,
    pub expected_num_sccs: Option<usize>,
}

/// Builds the directed metamorphic cases for `base`; `seed` drives the
/// random permutation. Predictions are derived from the base
/// [`DirectedOracle`], never from re-running a code under test:
///
/// | transform           | predicted effect                                |
/// |---------------------|--------------------------------------------------|
/// | vertex permutation  | diameter, radius, SCC count unchanged            |
/// | arc reversal        | diameter and SCC count unchanged; radius becomes |
/// |                     | `min eccB`; the two ecc families swap            |
/// | universal source    | radius exactly 1, diameter ∞ (n ≥ 1);            |
/// |                     | SCC count grows by exactly 1                     |
/// | symmetric closure   | matches the **undirected** oracle of the         |
/// |                     | underlying graph (∞ iff disconnected)            |
pub fn directed_metamorphic_cases(base: &DiGraph, seed: u64) -> Vec<DirectedMetamorphicCase> {
    let o = DirectedOracle::compute(base);
    let n = base.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cases = Vec::new();

    // 1. Vertex permutation: relabeling cannot change any distance.
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut rng);
    cases.push(DirectedMetamorphicCase {
        name: "permute",
        graph: base.permute(&perm),
        expected_diameter: o.diameter,
        expected_radius: o.radius,
        expected_num_sccs: Some(o.num_sccs),
    });

    // 2. Arc reversal: `d_T(u, v) = d(v, u)`, so the diameter (a max
    // over ordered pairs) and the SCC partition survive while the two
    // eccentricity families swap — the new radius is the base's
    // smallest finite *backward* eccentricity.
    cases.push(DirectedMetamorphicCase {
        name: "transpose",
        graph: base.clone().transposed(),
        expected_diameter: o.diameter,
        expected_radius: o.backward.iter().flatten().copied().min(),
        expected_num_sccs: Some(o.num_sccs),
    });

    // 3. Universal source: a fresh vertex `s` with an arc to every
    // existing vertex. Only `s` reaches everything (nothing enters
    // it), at distance exactly 1, so the radius collapses to 1 and the
    // diameter is infinite; `s` forms its own SCC.
    let mut el = EdgeList::with_capacity(n + 1, base.num_arcs() + n);
    for u in base.vertices() {
        for &v in base.out_neighbors(u) {
            el.push(u, v);
        }
        el.push(n as VertexId, u);
    }
    cases.push(DirectedMetamorphicCase {
        name: "universal-source",
        graph: DiGraph::from_edge_list(&el),
        expected_diameter: (n == 0).then_some(0),
        expected_radius: Some(if n == 0 { 0 } else { 1 }),
        expected_num_sccs: Some(o.num_sccs + 1),
    });

    // 4. Symmetric closure: adding the reverse of every arc makes the
    // digraph equivalent to its underlying undirected graph, so the
    // directed answers must match the undirected oracle — finite iff
    // the underlying graph is connected.
    let mut el = EdgeList::with_capacity(n, 2 * base.num_arcs());
    for u in base.vertices() {
        for &v in base.out_neighbors(u) {
            el.push(u, v);
            el.push(v, u);
        }
    }
    let underlying = el.to_undirected_csr();
    let u = Oracle::compute(&underlying);
    cases.push(DirectedMetamorphicCase {
        name: "symmetric-closure",
        // The undirected oracle counts the empty graph as connected,
        // but zero SCCs is "not strongly connected" — so n > 0 gates
        // both aggregates.
        graph: DiGraph::from_undirected(&underlying),
        expected_diameter: (u.connected && n > 0).then_some(u.largest_cc_diameter),
        expected_radius: (u.connected && n > 0).then_some(u.radius),
        expected_num_sccs: None, // = undirected component count, not predicted here
    });

    cases
}

/// Runs the directed metamorphic suite on `base`: every predicted
/// answer must be produced by the directed oracle, the serial directed
/// SumSweep, and the 64-lane batched one; on top of the per-case
/// predictions it checks the transpose family swap (via
/// [`directed_eccentricities`]) and the idempotence of SCC
/// condensation (condensing an already-condensed digraph changes
/// nothing — "contracting an SCC preserves the condensation").
pub fn assert_metamorphic_directed(tag: &str, base: &DiGraph, seed: u64) {
    for case in directed_metamorphic_cases(base, seed) {
        let ctx = format!(
            "{tag}/{} (base n = {}, arcs = {})",
            case.name,
            base.num_vertices(),
            base.num_arcs()
        );
        let g = &case.graph;

        let o = DirectedOracle::compute(g);
        assert_eq!(
            (o.diameter, o.radius),
            (case.expected_diameter, case.expected_radius),
            "{ctx}: directed oracle disagrees with the analytic prediction"
        );
        if let Some(k) = case.expected_num_sccs {
            assert_eq!(o.num_sccs, k, "{ctx}: SCC count prediction missed");
        }

        if g.num_vertices() > 0 {
            for (code, r) in [
                ("sum-sweep-dir", directed_sum_sweep(g)),
                ("sum-sweep-dir-bp64", directed_sum_sweep_batched(g, 64)),
            ] {
                let r = r.expect("non-empty digraph");
                assert_eq!(
                    (r.diameter, r.radius),
                    (case.expected_diameter, case.expected_radius),
                    "{ctx}: {code} missed the predicted effect"
                );
                if let Some(k) = case.expected_num_sccs {
                    assert_eq!(r.num_sccs, k, "{ctx}: {code} SCC count");
                }
            }
        }
    }

    // Transpose swaps the two eccentricity families exactly.
    let fwd = directed_eccentricities(base);
    let bwd = directed_eccentricities(&base.clone().transposed());
    assert_eq!(
        fwd.forward, bwd.backward,
        "{tag}: transpose must swap eccF → eccB"
    );
    assert_eq!(
        fwd.backward, bwd.forward,
        "{tag}: transpose must swap eccB → eccF"
    );

    // Condensation is idempotent: every condensation vertex is its own
    // SCC (first-occurrence labels are the identity), so condensing
    // again reproduces the same digraph — and hence the same
    // condensation diameter.
    let scc = StronglyConnectedComponents::compute(base);
    let cond = condensation(base, &scc);
    let scc2 = StronglyConnectedComponents::compute(&cond);
    assert_eq!(
        scc2.num_components(),
        cond.num_vertices(),
        "{tag}: condensation is not a DAG"
    );
    assert_eq!(
        condensation(&cond, &scc2),
        cond,
        "{tag}: condensing the condensation changed the digraph"
    );
    if cond.num_vertices() > 0 {
        let a = directed_sum_sweep(&cond).expect("non-empty condensation");
        let b = directed_sum_sweep(&condensation(&cond, &scc2)).expect("non-empty condensation");
        assert_eq!(a, b, "{tag}: condensation diameter not preserved");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{cycle, grid2d, lollipop, path, star};

    #[test]
    fn predictions_hold_on_classic_shapes() {
        for (tag, g) in [
            ("path", path(8)),
            ("cycle", cycle(9)),
            ("star", star(6)),
            ("grid", grid2d(4, 5)),
            ("lollipop", lollipop(4, 5)),
        ] {
            assert_metamorphic(tag, &g, 0xF_D1A);
        }
    }

    #[test]
    fn predictions_hold_on_degenerate_bases() {
        assert_metamorphic("empty", &CsrGraph::empty(0), 7);
        assert_metamorphic("singleton", &CsrGraph::empty(1), 7);
        assert_metamorphic("k2", &path(2), 7);
        assert_metamorphic("isolated3", &CsrGraph::empty(3), 7);
    }

    #[test]
    fn pendant_path_case_grows_by_exact_len() {
        let base = cycle(8); // diameter 4
        let found: Vec<_> = metamorphic_cases(&base, 2) // k = 1 + 2 % 4 = 3
            .into_iter()
            .filter(|c| c.name == "pendant-path")
            .collect();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].expected_largest_cc, 4 + 3);
    }

    #[test]
    fn seven_transforms_on_nonempty_bases() {
        assert_eq!(metamorphic_cases(&path(5), 0).len(), 7);
        // pendant-path is skipped only for the 0-vertex base
        assert_eq!(metamorphic_cases(&CsrGraph::empty(0), 0).len(), 6);
    }

    fn dicycle(n: usize) -> DiGraph {
        let mut el = EdgeList::new(n);
        for v in 0..n as u32 {
            el.push(v, (v + 1) % n as u32);
        }
        DiGraph::from_edge_list(&el)
    }

    #[test]
    fn directed_predictions_hold_on_classic_shapes() {
        use fdiam_graph::transform::orient;
        for (tag, g) in [
            ("dicycle8", dicycle(8)),
            ("sym-grid", DiGraph::from_undirected(&grid2d(4, 4))),
            ("oriented-grid", orient(&grid2d(4, 5), 33, 0xF_D1A)),
            ("oriented-lollipop", orient(&lollipop(4, 5), 60, 7)),
            ("sym-star", DiGraph::from_undirected(&star(6))),
        ] {
            assert_metamorphic_directed(tag, &g, 0xF_D1A);
        }
    }

    #[test]
    fn directed_predictions_hold_on_degenerate_bases() {
        assert_metamorphic_directed("empty", &DiGraph::empty(0), 7);
        assert_metamorphic_directed("singleton", &DiGraph::empty(1), 7);
        assert_metamorphic_directed("isolated3", &DiGraph::empty(3), 7);
        // A DAG base: infinite diameter, finite radius from the source.
        let mut el = EdgeList::new(4);
        for v in 0..3u32 {
            el.push(v, v + 1);
        }
        assert_metamorphic_directed("dipath4", &DiGraph::from_edge_list(&el), 7);
    }

    #[test]
    fn universal_source_case_pins_radius_to_one() {
        let cases = directed_metamorphic_cases(&dicycle(5), 0);
        let c = cases
            .iter()
            .find(|c| c.name == "universal-source")
            .expect("case present");
        assert_eq!(c.expected_radius, Some(1));
        assert_eq!(c.expected_diameter, None);
        assert_eq!(c.expected_num_sccs, Some(2));
        assert_eq!(c.graph.num_vertices(), 6);
    }

    #[test]
    fn transpose_case_predicts_backward_radius() {
        // 0 → 1 → 2: radius 2 from the source; the transpose's radius
        // is 2 again but realized at the former sink.
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        let g = DiGraph::from_edge_list(&el);
        let cases = directed_metamorphic_cases(&g, 0);
        let c = cases.iter().find(|c| c.name == "transpose").unwrap();
        assert_eq!(c.expected_radius, Some(2));
        assert_eq!(c.expected_diameter, None);
    }
}
