//! Proptest strategies over the structured generators in
//! [`crate::fuzz`] and [`crate::families`](mod@crate::families).
//!
//! Each strategy is a thin map from *parameters* (sizes, seeds, degree
//! sequences) to a deterministic builder function, so proptest shrinks
//! in parameter space — a failing case always reduces to a small
//! `(params, seed)` tuple that reproduces outside proptest too.

use crate::families::{build_family, NUM_FAMILIES};
use crate::fuzz::{
    configuration_model_from_degrees, edge_soup_graph, fuzz_case, fuzz_case_directed,
};
use fdiam_graph::transform::orient;
use fdiam_graph::{CsrGraph, DiGraph};
use proptest::collection::vec;
use proptest::prelude::any;
use proptest::strategy::{Just, Strategy};

/// Random multigraph soup: canonicalization stress ahead of the
/// algorithms (self-loops, parallel edges, isolated tails).
pub fn arb_edge_soup() -> impl Strategy<Value = CsrGraph> {
    (1usize..=80)
        .prop_flat_map(|n| (Just(n), 0usize..=3 * n, any::<u64>()))
        .prop_map(|(n, m, seed)| edge_soup_graph(n, m, seed))
}

/// Configuration-model graph from an arbitrary degree sequence.
pub fn arb_degree_sequence_graph() -> impl Strategy<Value = CsrGraph> {
    (vec(0usize..8, 2..150), any::<u64>())
        .prop_map(|(degrees, seed)| configuration_model_from_degrees(&degrees, seed))
}

/// One of the 17 bench-suite generator families with a fuzzed
/// instance seed.
pub fn arb_family_graph() -> impl Strategy<Value = CsrGraph> {
    (0usize..NUM_FAMILIES, any::<u64>()).prop_map(|(idx, seed)| build_family(idx, seed))
}

/// The full fuzzer distribution (soups, configuration models, family
/// instances, and transform stacks), driven by a single seed.
pub fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    any::<u64>().prop_map(|seed| fuzz_case(seed).graph)
}

/// Arbitrary digraph: an undirected base from [`arb_graph`]'s
/// distribution, oriented with a shrinkable bidirectionality
/// percentage — shrinking walks `pct` toward 0 (pure orientations,
/// many SCCs) and the base toward small seeds, staying entirely in
/// parameter space.
pub fn arb_digraph() -> impl Strategy<Value = DiGraph> {
    (any::<u64>(), 0u32..=100, any::<u64>()).prop_map(|(base_seed, pct, orient_seed)| {
        orient(&fuzz_case(base_seed).graph, pct, orient_seed)
    })
}

/// The full directed fuzzer distribution ([`fuzz_case_directed`]),
/// driven by a single seed — exactly what `fuzz-differential
/// --directed` replays, so a shrunk failure maps to one CLI seed.
pub fn arb_dir_fuzz_graph() -> impl Strategy<Value = DiGraph> {
    any::<u64>().prop_map(|seed| fuzz_case_directed(seed).graph)
}
