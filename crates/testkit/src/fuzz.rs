//! Seeded structured graph fuzzing. Every case is fully determined by
//! one `u64` seed (ChaCha8), so a CI failure is reproduced locally
//! with `fuzz-differential --seed <s> --iters 1` — the reproducibility
//! discipline of the Hübschle-Schneider & Sanders R-MAT generator
//! work, applied to differential testing.
//!
//! Four case shapes, chosen by the seed:
//!
//! * **edge soup** — uniformly random pairs including self-loops and
//!   duplicates (exercises builder canonicalization ahead of the
//!   algorithms);
//! * **configuration model** — a random power-law-ish degree sequence,
//!   stubs paired up after a shuffle (degree-sequence coverage the
//!   named generators don't reach);
//! * **generator family** — one of the 17 bench-suite families with a
//!   fuzzed instance seed;
//! * **transform stack** — a base from any of the above with 1–3
//!   random diameter-perturbing transforms applied on top.
//!
//! Sizes stay small (n ≤ ~500) because every case is checked against
//! the O(n·m) oracle.

use crate::families::{build_family, FAMILY_NAMES, NUM_FAMILIES};
use crate::harness::{differential_check, differential_check_directed};
use fdiam_graph::builder::EdgeList;
use fdiam_graph::generators::path;
use fdiam_graph::transform::{
    disjoint_union, orient, with_isolated_vertices, with_pendant_path, with_universal_vertex,
};
use fdiam_graph::{CsrGraph, DiGraph, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One generated graph plus the human-readable recipe that built it.
pub struct FuzzCase {
    pub seed: u64,
    pub description: String,
    pub graph: CsrGraph,
}

/// A differential failure, carrying everything needed to reproduce.
#[derive(Debug)]
pub struct FuzzFailure {
    pub seed: u64,
    pub description: String,
    pub mismatches: Vec<String>,
}

/// Outcome of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub cases: usize,
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Deterministically builds the graph for `seed`.
pub fn fuzz_case(seed: u64) -> FuzzCase {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (graph, description) = match rng.gen_range(0u32..4) {
        0 => edge_soup(&mut rng),
        1 => configuration_model(&mut rng),
        2 => family_instance(&mut rng),
        _ => transform_stack(&mut rng),
    };
    FuzzCase {
        seed,
        description,
        graph,
    }
}

/// Runs `iters` seeds starting at `start_seed` through the full
/// differential harness.
pub fn run_fuzz(start_seed: u64, iters: usize) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iters {
        let seed = start_seed.wrapping_add(i as u64);
        let case = fuzz_case(seed);
        let name = format!("fuzz#{seed} {}", case.description);
        let mismatches = differential_check(&name, &case.graph);
        report.cases += 1;
        if !mismatches.is_empty() {
            report.failures.push(FuzzFailure {
                seed,
                description: case.description,
                mismatches,
            });
        }
    }
    report
}

/// One generated digraph plus the recipe that built it. The undirected
/// seed → graph mapping is pinned by tests, so directed cases derive
/// from their own salted stream instead of reinterpreting it.
pub struct DirFuzzCase {
    pub seed: u64,
    pub description: String,
    pub graph: DiGraph,
}

/// Salt separating the directed fuzz stream from the undirected one —
/// `fuzz_case(s)` and `fuzz_case_directed(s)` share no randomness.
const DIRECTED_FUZZ_SALT: u64 = 0xD1_F0_22;

/// Deterministically builds the digraph for `seed`: an undirected base
/// drawn from the full [`fuzz_case`] distribution, run through
/// [`orient`] with a fuzzed bidirectionality percentage. Low
/// percentages produce many-SCC condensations (infinite diameters,
/// often infinite radii); 100 reproduces the symmetric case.
pub fn fuzz_case_directed(seed: u64) -> DirFuzzCase {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ DIRECTED_FUZZ_SALT);
    let base = fuzz_case(rng.gen());
    let pct = rng.gen_range(0u32..=100);
    let orient_seed: u64 = rng.gen();
    DirFuzzCase {
        seed,
        description: format!(
            "orient(pct={pct}, seed={orient_seed}) of {}",
            base.description
        ),
        graph: orient(&base.graph, pct, orient_seed),
    }
}

/// Runs `iters` seeds starting at `start_seed` through the directed
/// differential harness.
pub fn run_fuzz_directed(start_seed: u64, iters: usize) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..iters {
        let seed = start_seed.wrapping_add(i as u64);
        let case = fuzz_case_directed(seed);
        let name = format!("dirfuzz#{seed} {}", case.description);
        let mismatches = differential_check_directed(&name, &case.graph);
        report.cases += 1;
        if !mismatches.is_empty() {
            report.failures.push(FuzzFailure {
                seed,
                description: case.description,
                mismatches,
            });
        }
    }
    report
}

/// Uniform random multigraph on `n` vertices with `m` arc attempts —
/// self-loops and duplicates included on purpose, the builder must
/// strip them before any algorithm sees the graph.
pub fn edge_soup_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut el = EdgeList::with_capacity(n, m);
    for _ in 0..m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        el.push(u, v);
    }
    el.to_undirected_csr()
}

/// Configuration model: pair up one stub per unit of degree after a
/// seeded shuffle, dropping self-pairings (the builder dedups the
/// rest). Realized degrees are therefore ≤ the requested ones.
pub fn configuration_model_from_degrees(degrees: &[usize], seed: u64) -> CsrGraph {
    let n = degrees.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut stubs: Vec<VertexId> = Vec::new();
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    stubs.shuffle(&mut rng);
    let mut el = EdgeList::with_capacity(n, stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            el.push(pair[0], pair[1]);
        }
    }
    el.to_undirected_csr()
}

fn edge_soup(rng: &mut ChaCha8Rng) -> (CsrGraph, String) {
    let n = rng.gen_range(1usize..=80);
    let m = rng.gen_range(0usize..=3 * n);
    let seed: u64 = rng.gen();
    (
        edge_soup_graph(n, m, seed),
        format!("edge-soup(n={n}, m={m}, seed={seed})"),
    )
}

fn configuration_model(rng: &mut ChaCha8Rng) -> (CsrGraph, String) {
    let n = rng.gen_range(2usize..=200);
    // Power-law-ish degrees: mostly small, occasional hubs.
    let degrees: Vec<usize> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.1) {
                rng.gen_range(0usize..=(n / 4).max(1))
            } else {
                rng.gen_range(0usize..=4)
            }
        })
        .collect();
    let seed: u64 = rng.gen();
    (
        configuration_model_from_degrees(&degrees, seed),
        format!("configuration-model(n={n}, seed={seed})"),
    )
}

fn family_instance(rng: &mut ChaCha8Rng) -> (CsrGraph, String) {
    let idx = rng.gen_range(0usize..NUM_FAMILIES);
    let instance_seed: u64 = rng.gen();
    (
        build_family(idx, instance_seed),
        format!("family({}, seed={instance_seed})", FAMILY_NAMES[idx]),
    )
}

fn transform_stack(rng: &mut ChaCha8Rng) -> (CsrGraph, String) {
    let (mut g, base_desc) = match rng.gen_range(0u32..3) {
        0 => edge_soup(rng),
        1 => configuration_model(rng),
        _ => family_instance(rng),
    };
    let mut desc = base_desc;
    for _ in 0..rng.gen_range(1usize..=3) {
        // Keep the oracle affordable: stop stacking once large.
        if g.num_vertices() > 500 {
            break;
        }
        match rng.gen_range(0u32..4) {
            0 => {
                let k = rng.gen_range(1usize..=4);
                desc.push_str(&format!(" +isolated({k})"));
                g = with_isolated_vertices(&g, k);
            }
            1 => {
                let p = rng.gen_range(2usize..=12);
                desc.push_str(&format!(" +union-path({p})"));
                g = disjoint_union(&g, &path(p));
            }
            2 if g.num_vertices() > 0 => {
                let v = rng.gen_range(0..g.num_vertices() as VertexId);
                let k = rng.gen_range(1usize..=5);
                desc.push_str(&format!(" +pendant(v={v}, k={k})"));
                g = with_pendant_path(&g, v, k);
            }
            _ => {
                desc.push_str(" +universal");
                g = with_universal_vertex(&g);
            }
        }
    }
    (g, desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = fuzz_case(seed);
            let b = fuzz_case(seed);
            assert_eq!(a.description, b.description);
            assert_eq!(a.graph, b.graph);
        }
    }

    #[test]
    fn seeds_hit_every_shape() {
        let mut shapes = std::collections::HashSet::new();
        for seed in 0..40 {
            let d = fuzz_case(seed).description;
            shapes.insert(
                ["edge-soup", "configuration-model", "family", "+"]
                    .iter()
                    .position(|p| d.starts_with(p) || (*p == "+" && d.contains(" +")))
                    .unwrap_or(usize::MAX),
            );
        }
        // All of: soup, config model, family; transform stacks show up
        // as a suffix on any of them.
        assert!(shapes.len() >= 3, "shapes seen: {shapes:?}");
    }

    #[test]
    fn graphs_stay_oracle_sized() {
        for seed in 0..60 {
            let c = fuzz_case(seed);
            assert!(
                c.graph.num_vertices() <= 1100,
                "seed {seed} built n = {} ({})",
                c.graph.num_vertices(),
                c.description
            );
            c.graph.validate().expect("fuzz graph must be valid CSR");
        }
    }

    #[test]
    fn smoke_fuzz_runs_clean() {
        let report = run_fuzz(0, 25);
        assert_eq!(report.cases, 25);
        assert!(
            report.ok(),
            "differential failures:\n{:#?}",
            report.failures
        );
    }

    #[test]
    fn directed_cases_are_deterministic_and_valid() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = fuzz_case_directed(seed);
            let b = fuzz_case_directed(seed);
            assert_eq!(a.description, b.description);
            assert_eq!(a.graph, b.graph);
            a.graph.validate().expect("valid digraph");
        }
    }

    #[test]
    fn directed_stream_is_independent_of_the_undirected_one() {
        // Pinned undirected mapping must be untouched by the directed
        // salt: same seed, different streams.
        let und = fuzz_case(7).description;
        let dir = fuzz_case_directed(7).description;
        assert!(dir.starts_with("orient(pct="));
        assert!(
            !dir.ends_with(&und),
            "directed case reused the undirected stream"
        );
    }

    #[test]
    fn smoke_directed_fuzz_runs_clean() {
        let report = run_fuzz_directed(0, 15);
        assert_eq!(report.cases, 15);
        assert!(
            report.ok(),
            "directed differential failures:\n{:#?}",
            report.failures
        );
    }
}
