//! The differential harness: run every diameter code in the workspace
//! — F-Diam serial + parallel, iFUB, ExactSumSweep, bounding
//! eccentricities, naive — across both BFS kernels and both
//! direction-switch heuristics, and compare every answer (and every
//! certificate) against the independent [`crate::oracle`].
//!
//! [`differential_check`] returns the list of mismatches so the fuzzer
//! can report reproduction seeds without panicking;
//! [`assert_differential`] is the test-friendly wrapper that fails
//! with the full list.

use crate::oracle::{bound_violations, reference_distances, reference_farthest, Oracle, UNREACHED};
use fdiam_baselines::ifub::{ifub_with, IfubKernel, IfubOptions};
use fdiam_baselines::naive::naive_diameter;
use fdiam_bfs::{
    bfs_eccentricity_hybrid, bfs_eccentricity_serial, bfs_eccentricity_serial_hybrid, BfsConfig,
    BfsScratch,
};
use fdiam_core::{diameter_with, FdiamConfig};
use fdiam_graph::{CsrGraph, VertexId};

/// The two direction-switch heuristics every hybrid-kernel code is
/// exercised under: Beamer α/β (the default) and the paper's fixed
/// 10 % rule (`BfsConfig::paper_fidelity`).
pub fn heuristic_matrix() -> [(&'static str, BfsConfig); 2] {
    [
        ("adaptive", BfsConfig::default()),
        ("paper10pct", BfsConfig::paper_fidelity()),
    ]
}

/// Runs the full code × kernel × heuristic matrix on `g` and returns
/// every disagreement with the oracle (empty = all codes exact).
/// `name` tags the messages.
pub fn differential_check(name: &str, g: &CsrGraph) -> Vec<String> {
    let oracle = Oracle::compute(g);
    let mut out = Vec::new();
    let push = |out: &mut Vec<String>, code: &str, msg: String| {
        out.push(format!("[{name}] {code}: {msg}"));
    };

    // Cheap one-sided invariants sandwich the oracle itself.
    for v in bound_violations(g, oracle.largest_cc_diameter) {
        push(&mut out, "bounds", v);
    }

    check_naive(g, &oracle, name, &mut out);
    check_fdiam(g, &oracle, name, &mut out);
    check_ifub(g, &oracle, name, &mut out);
    check_sum_sweep(g, &oracle, name, &mut out);
    check_bounding_ecc(g, &oracle, name, &mut out);
    check_bfs_kernels(g, &oracle, name, &mut out);
    out
}

/// Panics with the full mismatch list if any code disagrees with the
/// oracle on `g`.
pub fn assert_differential(name: &str, g: &CsrGraph) {
    let mismatches = differential_check(name, g);
    assert!(
        mismatches.is_empty(),
        "{} differential mismatch(es) on {} (n = {}, m = {}):\n{}",
        mismatches.len(),
        name,
        g.num_vertices(),
        g.num_undirected_edges(),
        mismatches.join("\n")
    );
}

fn check_naive(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let r = naive_diameter(g);
    if r.largest_cc_diameter != oracle.largest_cc_diameter || r.connected != oracle.connected {
        out.push(format!(
            "[{name}] naive: got (cc_diam {}, connected {}), oracle (cc_diam {}, connected {})",
            r.largest_cc_diameter, r.connected, oracle.largest_cc_diameter, oracle.connected
        ));
    }
    if r.diameter() != oracle.diameter() {
        out.push(format!(
            "[{name}] naive: diameter() {:?} != oracle {:?}",
            r.diameter(),
            oracle.diameter()
        ));
    }
}

fn check_fdiam(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let configs = [
        ("fdiam-serial/adaptive", FdiamConfig::serial()),
        (
            "fdiam-serial/paper10pct",
            FdiamConfig::serial().with_paper_bfs(),
        ),
        ("fdiam-parallel/adaptive", FdiamConfig::parallel()),
        (
            "fdiam-parallel/paper10pct",
            FdiamConfig::parallel().with_paper_bfs(),
        ),
    ];
    for (code, cfg) in configs {
        let outcome = diameter_with(g, &cfg);
        if outcome.result.largest_cc_diameter != oracle.largest_cc_diameter
            || outcome.result.connected != oracle.connected
        {
            out.push(format!(
                "[{name}] {code}: got (cc_diam {}, connected {}), oracle (cc_diam {}, connected {})",
                outcome.result.largest_cc_diameter,
                outcome.result.connected,
                oracle.largest_cc_diameter,
                oracle.connected
            ));
            continue; // certificate checks would only echo the mismatch
        }
        // Every vertex must be accounted for by exactly one removal
        // stage (winnow / eliminate / chain / degree-0 / computed).
        let accounted = outcome.stats.removed.total();
        if accounted != g.num_vertices() {
            out.push(format!(
                "[{name}] {code}: removal breakdown covers {accounted} of {} vertices",
                g.num_vertices()
            ));
        }
        // Certificate: the reported diametral pair must realize the
        // reported diameter.
        match outcome.diametral_pair {
            None => {
                if g.num_vertices() > 0 {
                    out.push(format!(
                        "[{name}] {code}: no diametral pair on a non-empty graph"
                    ));
                }
            }
            Some((a, b)) => {
                let (dist, _) = reference_distances(g, a);
                let d = dist[b as usize];
                if d != oracle.largest_cc_diameter {
                    out.push(format!(
                        "[{name}] {code}: diametral pair ({a}, {b}) is at distance {} ≠ {}",
                        if d == UNREACHED {
                            "∞".to_string()
                        } else {
                            d.to_string()
                        },
                        oracle.largest_cc_diameter
                    ));
                }
            }
        }
    }
}

fn check_ifub(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let kernels = [
        ("serial", IfubKernel::Serial),
        ("serial-hybrid", IfubKernel::SerialHybrid),
        ("parallel-hybrid", IfubKernel::ParallelHybrid),
    ];
    for (kname, kernel) in kernels {
        for (hname, bfs) in heuristic_matrix() {
            let r = ifub_with(g, &IfubOptions { kernel, bfs });
            if r.largest_cc_diameter != oracle.largest_cc_diameter
                || r.connected != oracle.connected
            {
                out.push(format!(
                    "[{name}] ifub/{kname}/{hname}: got (cc_diam {}, connected {}), oracle (cc_diam {}, connected {})",
                    r.largest_cc_diameter, r.connected,
                    oracle.largest_cc_diameter, oracle.connected
                ));
            }
        }
    }
}

fn check_sum_sweep(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    match fdiam_analytics::sum_sweep::exact_sum_sweep(g) {
        None => {
            if g.num_vertices() != 0 {
                out.push(format!(
                    "[{name}] sum-sweep: returned None on a non-empty graph"
                ));
            }
        }
        Some(r) => {
            if g.num_vertices() == 0 {
                out.push(format!("[{name}] sum-sweep: Some on the empty graph"));
                return;
            }
            if r.diameter != oracle.largest_cc_diameter
                || r.connected != oracle.connected
                || r.radius != oracle.radius
            {
                out.push(format!(
                    "[{name}] sum-sweep: got (diam {}, radius {}, connected {}), oracle (diam {}, radius {}, connected {})",
                    r.diameter, r.radius, r.connected,
                    oracle.largest_cc_diameter, oracle.radius, oracle.connected
                ));
                return;
            }
            // Certificates: the named vertices must realize the bounds.
            let dv = oracle.eccentricities[r.diametral_vertex as usize];
            if dv != r.diameter {
                out.push(format!(
                    "[{name}] sum-sweep: diametral vertex {} has ecc {dv} ≠ {}",
                    r.diametral_vertex, r.diameter
                ));
            }
            let cv = oracle.eccentricities[r.central_vertex as usize];
            if cv != r.radius {
                out.push(format!(
                    "[{name}] sum-sweep: central vertex {} has ecc {cv} ≠ {}",
                    r.central_vertex, r.radius
                ));
            }
        }
    }
}

fn check_bounding_ecc(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let r = fdiam_analytics::bounding_ecc::bounding_eccentricities(g);
    if r.eccentricities != oracle.eccentricities {
        let first = oracle
            .eccentricities
            .iter()
            .zip(&r.eccentricities)
            .position(|(a, b)| a != b);
        out.push(format!(
            "[{name}] bounding-ecc: eccentricity vector mismatch (first at {first:?})"
        ));
    }
}

/// Both hybrid kernels × both heuristics on a deterministic source
/// sample: eccentricity, visited count, and the min-id farthest-vertex
/// tie-break must all match the textbook reference.
fn check_bfs_kernels(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let n = g.num_vertices();
    if n == 0 {
        return;
    }
    let mut scratch = BfsScratch::new(n);
    for src in sample_sources(n) {
        let (dist, _) = reference_distances(g, src);
        let component = dist.iter().filter(|&&d| d != UNREACHED).count();
        let want_ecc = oracle.eccentricities[src as usize];
        let want_far = reference_farthest(g, src);

        for (hname, cfg) in heuristic_matrix() {
            let runs = [
                (
                    "kernel-parallel",
                    bfs_eccentricity_hybrid(g, src, &mut scratch, &cfg),
                ),
                (
                    "kernel-serial",
                    bfs_eccentricity_serial_hybrid(g, src, &mut scratch, &cfg),
                ),
            ];
            for (kname, summary) in runs {
                if summary.eccentricity != want_ecc
                    || summary.visited != component
                    || summary.farthest != want_far
                {
                    out.push(format!(
                        "[{name}] {kname}/{hname} from {src}: got (ecc {}, visited {}, farthest {}), reference (ecc {want_ecc}, visited {component}, farthest {want_far})",
                        summary.eccentricity, summary.visited, summary.farthest
                    ));
                }
            }
        }

        // The plain serial kernel reports the whole last frontier; its
        // minimum id defines the tie-break the summaries must honor.
        let r = bfs_eccentricity_serial(g, src, scratch.marks_mut());
        let min_frontier = r.last_frontier.iter().copied().min();
        if r.eccentricity != want_ecc || min_frontier != Some(want_far) {
            out.push(format!(
                "[{name}] kernel-textbook from {src}: got (ecc {}, min frontier {min_frontier:?}), reference (ecc {want_ecc}, farthest {want_far})",
                r.eccentricity
            ));
        }
    }
}

/// Deterministic source sample: every vertex on small graphs, an even
/// stride (always including vertex 0 and n−1) on larger ones.
pub fn sample_sources(n: usize) -> Vec<VertexId> {
    if n == 0 {
        return Vec::new();
    }
    if n <= 48 {
        return (0..n as VertexId).collect();
    }
    let step = n.div_ceil(32);
    let mut v: Vec<VertexId> = (0..n).step_by(step).map(|x| x as VertexId).collect();
    if *v.last().unwrap() != (n - 1) as VertexId {
        v.push((n - 1) as VertexId);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{
        barbell, caterpillar, complete, cycle, grid2d, lollipop, path, star,
    };
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};

    #[test]
    fn clean_on_classic_shapes() {
        for (name, g) in [
            ("path", path(17)),
            ("cycle", cycle(12)),
            ("star", star(9)),
            ("complete", complete(6)),
            ("grid", grid2d(5, 7)),
            ("lollipop", lollipop(5, 6)),
            ("barbell", barbell(4, 3)),
            ("caterpillar", caterpillar(6, 2)),
        ] {
            assert_differential(name, &g);
        }
    }

    #[test]
    fn clean_on_degenerate_and_disconnected() {
        assert_differential("empty0", &CsrGraph::empty(0));
        assert_differential("empty1", &CsrGraph::empty(1));
        assert_differential("isolated5", &CsrGraph::empty(5));
        assert_differential("two-cliques", &disjoint_union(&complete(4), &complete(3)));
        assert_differential("path+isolated", &with_isolated_vertices(&path(9), 3));
    }

    #[test]
    fn mismatches_are_reported_not_swallowed() {
        // A deliberately wrong "diameter" must trip the bound check.
        let g = path(10);
        assert!(!bound_violations(&g, 2).is_empty());
        assert!(!bound_violations(&g, 42).is_empty());
        assert!(bound_violations(&g, 9).is_empty());
    }

    #[test]
    fn source_sampling_is_deterministic_and_covers_ends() {
        assert_eq!(sample_sources(0), Vec::<VertexId>::new());
        assert_eq!(sample_sources(3), vec![0, 1, 2]);
        let s = sample_sources(1000);
        assert_eq!(s, sample_sources(1000));
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().unwrap(), 999);
        assert!(s.len() <= 34);
    }
}
