//! The differential harness: run every diameter code in the workspace
//! — F-Diam serial + parallel, iFUB, ExactSumSweep, bounding
//! eccentricities, naive — across both BFS kernels and both
//! direction-switch heuristics, and compare every answer (and every
//! certificate) against the independent [`crate::oracle`].
//!
//! [`differential_check`] returns the list of mismatches so the fuzzer
//! can report reproduction seeds without panicking;
//! [`assert_differential`] is the test-friendly wrapper that fails
//! with the full list.

use crate::oracle::{
    bound_violations, reference_distances, reference_distances_directed, reference_farthest,
    DirectedOracle, Oracle, UNREACHED,
};
use fdiam_analytics::{
    condensation, directed_eccentricities, directed_sum_sweep, directed_sum_sweep_batched,
    DirSumSweepResult, StronglyConnectedComponents,
};
use fdiam_baselines::ifub::{ifub_with, IfubKernel, IfubOptions};
use fdiam_baselines::naive::naive_diameter;
use fdiam_bfs::{
    bfs_distances_directed, bfs_eccentricity_hybrid, bfs_eccentricity_serial,
    bfs_eccentricity_serial_hybrid, bp64_distances_directed, BfsConfig, BfsScratch, SweepDirection,
};
use fdiam_core::{diameter_with, FdiamConfig};
use fdiam_graph::{CsrGraph, DiGraph, VertexId, VertexOrder};

/// The two direction-switch heuristics every hybrid-kernel code is
/// exercised under: Beamer α/β (the default) and the paper's fixed
/// 10 % rule (`BfsConfig::paper_fidelity`).
pub fn heuristic_matrix() -> [(&'static str, BfsConfig); 2] {
    [
        ("adaptive", BfsConfig::default()),
        ("paper10pct", BfsConfig::paper_fidelity()),
    ]
}

/// Runs the full code × kernel × heuristic matrix on `g` and returns
/// every disagreement with the oracle (empty = all codes exact).
/// `name` tags the messages.
pub fn differential_check(name: &str, g: &CsrGraph) -> Vec<String> {
    let oracle = Oracle::compute(g);
    let mut out = Vec::new();
    let push = |out: &mut Vec<String>, code: &str, msg: String| {
        out.push(format!("[{name}] {code}: {msg}"));
    };

    // Cheap one-sided invariants sandwich the oracle itself.
    for v in bound_violations(g, oracle.largest_cc_diameter) {
        push(&mut out, "bounds", v);
    }

    check_naive(g, &oracle, name, &mut out);
    check_fdiam(g, &oracle, name, &mut out);
    check_ifub(g, &oracle, name, &mut out);
    check_sum_sweep(g, &oracle, name, &mut out);
    check_bounding_ecc(g, &oracle, name, &mut out);
    check_bfs_kernels(g, &oracle, name, &mut out);
    out
}

/// Panics with the full mismatch list if any code disagrees with the
/// oracle on `g`.
pub fn assert_differential(name: &str, g: &CsrGraph) {
    let mismatches = differential_check(name, g);
    assert!(
        mismatches.is_empty(),
        "{} differential mismatch(es) on {} (n = {}, m = {}):\n{}",
        mismatches.len(),
        name,
        g.num_vertices(),
        g.num_undirected_edges(),
        mismatches.join("\n")
    );
}

fn check_naive(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let r = naive_diameter(g);
    if r.largest_cc_diameter != oracle.largest_cc_diameter || r.connected != oracle.connected {
        out.push(format!(
            "[{name}] naive: got (cc_diam {}, connected {}), oracle (cc_diam {}, connected {})",
            r.largest_cc_diameter, r.connected, oracle.largest_cc_diameter, oracle.connected
        ));
    }
    if r.diameter() != oracle.diameter() {
        out.push(format!(
            "[{name}] naive: diameter() {:?} != oracle {:?}",
            r.diameter(),
            oracle.diameter()
        ));
    }
}

fn check_fdiam(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let configs = [
        ("fdiam-serial/adaptive", FdiamConfig::serial()),
        (
            "fdiam-serial/paper10pct",
            FdiamConfig::serial().with_paper_bfs(),
        ),
        ("fdiam-parallel/adaptive", FdiamConfig::parallel()),
        (
            "fdiam-parallel/paper10pct",
            FdiamConfig::parallel().with_paper_bfs(),
        ),
    ];
    for (code, cfg) in configs {
        let outcome = diameter_with(g, &cfg);
        if outcome.result.largest_cc_diameter != oracle.largest_cc_diameter
            || outcome.result.connected != oracle.connected
        {
            out.push(format!(
                "[{name}] {code}: got (cc_diam {}, connected {}), oracle (cc_diam {}, connected {})",
                outcome.result.largest_cc_diameter,
                outcome.result.connected,
                oracle.largest_cc_diameter,
                oracle.connected
            ));
            continue; // certificate checks would only echo the mismatch
        }
        // Every vertex must be accounted for by exactly one removal
        // stage (winnow / eliminate / chain / degree-0 / computed).
        let accounted = outcome.stats.removed.total();
        if accounted != g.num_vertices() {
            out.push(format!(
                "[{name}] {code}: removal breakdown covers {accounted} of {} vertices",
                g.num_vertices()
            ));
        }
        // Certificate: the reported diametral pair must realize the
        // reported diameter.
        match outcome.diametral_pair {
            None => {
                if g.num_vertices() > 0 {
                    out.push(format!(
                        "[{name}] {code}: no diametral pair on a non-empty graph"
                    ));
                }
            }
            Some((a, b)) => {
                let (dist, _) = reference_distances(g, a);
                let d = dist[b as usize];
                if d != oracle.largest_cc_diameter {
                    out.push(format!(
                        "[{name}] {code}: diametral pair ({a}, {b}) is at distance {} ≠ {}",
                        if d == UNREACHED {
                            "∞".to_string()
                        } else {
                            d.to_string()
                        },
                        oracle.largest_cc_diameter
                    ));
                }
            }
        }
    }
}

fn check_ifub(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let kernels = [
        ("serial", IfubKernel::Serial),
        ("serial-hybrid", IfubKernel::SerialHybrid),
        ("parallel-hybrid", IfubKernel::ParallelHybrid),
    ];
    for (kname, kernel) in kernels {
        for (hname, bfs) in heuristic_matrix() {
            let r = ifub_with(g, &IfubOptions { kernel, bfs });
            if r.largest_cc_diameter != oracle.largest_cc_diameter
                || r.connected != oracle.connected
            {
                out.push(format!(
                    "[{name}] ifub/{kname}/{hname}: got (cc_diam {}, connected {}), oracle (cc_diam {}, connected {})",
                    r.largest_cc_diameter, r.connected,
                    oracle.largest_cc_diameter, oracle.connected
                ));
            }
        }
    }
}

fn check_sum_sweep(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    match fdiam_analytics::sum_sweep::exact_sum_sweep(g) {
        None => {
            if g.num_vertices() != 0 {
                out.push(format!(
                    "[{name}] sum-sweep: returned None on a non-empty graph"
                ));
            }
        }
        Some(r) => {
            if g.num_vertices() == 0 {
                out.push(format!("[{name}] sum-sweep: Some on the empty graph"));
                return;
            }
            if r.diameter != oracle.largest_cc_diameter
                || r.connected != oracle.connected
                || r.radius != oracle.radius
            {
                out.push(format!(
                    "[{name}] sum-sweep: got (diam {}, radius {}, connected {}), oracle (diam {}, radius {}, connected {})",
                    r.diameter, r.radius, r.connected,
                    oracle.largest_cc_diameter, oracle.radius, oracle.connected
                ));
                return;
            }
            // Certificates: the named vertices must realize the bounds.
            let dv = oracle.eccentricities[r.diametral_vertex as usize];
            if dv != r.diameter {
                out.push(format!(
                    "[{name}] sum-sweep: diametral vertex {} has ecc {dv} ≠ {}",
                    r.diametral_vertex, r.diameter
                ));
            }
            let cv = oracle.eccentricities[r.central_vertex as usize];
            if cv != r.radius {
                out.push(format!(
                    "[{name}] sum-sweep: central vertex {} has ecc {cv} ≠ {}",
                    r.central_vertex, r.radius
                ));
            }
        }
    }
}

fn check_bounding_ecc(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let r = fdiam_analytics::bounding_ecc::bounding_eccentricities(g);
    if r.eccentricities != oracle.eccentricities {
        let first = oracle
            .eccentricities
            .iter()
            .zip(&r.eccentricities)
            .position(|(a, b)| a != b);
        out.push(format!(
            "[{name}] bounding-ecc: eccentricity vector mismatch (first at {first:?})"
        ));
    }
}

/// Both hybrid kernels × both heuristics on a deterministic source
/// sample: eccentricity, visited count, and the min-id farthest-vertex
/// tie-break must all match the textbook reference.
fn check_bfs_kernels(g: &CsrGraph, oracle: &Oracle, name: &str, out: &mut Vec<String>) {
    let n = g.num_vertices();
    if n == 0 {
        return;
    }
    let mut scratch = BfsScratch::new(n);
    for src in sample_sources(n) {
        let (dist, _) = reference_distances(g, src);
        let component = dist.iter().filter(|&&d| d != UNREACHED).count();
        let want_ecc = oracle.eccentricities[src as usize];
        let want_far = reference_farthest(g, src);

        for (hname, cfg) in heuristic_matrix() {
            let runs = [
                (
                    "kernel-parallel",
                    bfs_eccentricity_hybrid(g, src, &mut scratch, &cfg),
                ),
                (
                    "kernel-serial",
                    bfs_eccentricity_serial_hybrid(g, src, &mut scratch, &cfg),
                ),
            ];
            for (kname, summary) in runs {
                if summary.eccentricity != want_ecc
                    || summary.visited != component
                    || summary.farthest != want_far
                {
                    out.push(format!(
                        "[{name}] {kname}/{hname} from {src}: got (ecc {}, visited {}, farthest {}), reference (ecc {want_ecc}, visited {component}, farthest {want_far})",
                        summary.eccentricity, summary.visited, summary.farthest
                    ));
                }
            }
        }

        // The plain serial kernel reports the whole last frontier; its
        // minimum id defines the tie-break the summaries must honor.
        let r = bfs_eccentricity_serial(g, src, scratch.marks_mut());
        let min_frontier = r.last_frontier.iter().copied().min();
        if r.eccentricity != want_ecc || min_frontier != Some(want_far) {
            out.push(format!(
                "[{name}] kernel-textbook from {src}: got (ecc {}, min frontier {min_frontier:?}), reference (ecc {want_ecc}, farthest {want_far})",
                r.eccentricity
            ));
        }
    }
}

/// Directed counterpart of [`differential_check`]: the directed
/// ExactSumSweep (serial and bit-parallel batched, across all vertex
/// orderings), both directed BFS kernels, the all-pairs directed
/// eccentricities, and the Tarjan SCC decomposition, every answer
/// compared against the independent [`DirectedOracle`] (which carries
/// its own Kosaraju reference). Returns the list of mismatches.
pub fn differential_check_directed(name: &str, g: &DiGraph) -> Vec<String> {
    let oracle = DirectedOracle::compute(g);
    let mut out = Vec::new();
    check_dir_scc(g, &oracle, name, &mut out);
    check_dir_sum_sweep(g, &oracle, name, &mut out);
    check_dir_eccentricities(g, &oracle, name, &mut out);
    check_dir_kernels(g, &oracle, name, &mut out);
    out
}

/// Panics with the full mismatch list if any directed code disagrees
/// with the directed oracle on `g`.
pub fn assert_differential_directed(name: &str, g: &DiGraph) {
    let mismatches = differential_check_directed(name, g);
    assert!(
        mismatches.is_empty(),
        "{} directed differential mismatch(es) on {} (n = {}, arcs = {}):\n{}",
        mismatches.len(),
        name,
        g.num_vertices(),
        g.num_arcs(),
        mismatches.join("\n")
    );
}

/// Tarjan (under test) against the oracle's Kosaraju: identical label
/// vectors (both normalize by first occurrence in id order), and the
/// condensation must be a DAG — every condensation vertex its own SCC.
fn check_dir_scc(g: &DiGraph, oracle: &DirectedOracle, name: &str, out: &mut Vec<String>) {
    let scc = StronglyConnectedComponents::compute(g);
    if scc.labels() != oracle.scc_labels.as_slice() {
        let first = oracle
            .scc_labels
            .iter()
            .zip(scc.labels())
            .position(|(a, b)| a != b);
        out.push(format!(
            "[{name}] tarjan-scc: labels differ from Kosaraju (first at {first:?})"
        ));
        return; // the condensation below would inherit the mismatch
    }
    if scc.num_components() != oracle.num_sccs {
        out.push(format!(
            "[{name}] tarjan-scc: {} components, Kosaraju found {}",
            scc.num_components(),
            oracle.num_sccs
        ));
    }
    let cond = condensation(g, &scc);
    let identity: Vec<u32> = (0..cond.num_vertices() as u32).collect();
    if crate::oracle::kosaraju_scc(&cond) != identity {
        out.push(format!(
            "[{name}] condensation: not a DAG (a condensation vertex sits in a nontrivial SCC)"
        ));
    }
}

/// The directed ExactSumSweep matrix: serial and bit-parallel batched
/// (1 and 64 lanes) × every vertex ordering, each answer and each
/// certificate vertex (translated back to original ids) checked
/// against the oracle.
fn check_dir_sum_sweep(g: &DiGraph, oracle: &DirectedOracle, name: &str, out: &mut Vec<String>) {
    for order in [VertexOrder::None, VertexOrder::Degree, VertexOrder::Bfs] {
        let rel = order.apply_directed(g);
        let run_g = rel.as_ref().map_or(g, |r| &r.graph);
        let back = |v: VertexId| rel.as_ref().map_or(v, |r| r.original(v));

        let mut serial_result = None;
        for (code, lanes) in [("serial", None), ("bp64x1", Some(1)), ("bp64x64", Some(64))] {
            let tag = format!("sum-sweep-dir/{code}/order={}", order.as_str());
            let r = match lanes {
                None => directed_sum_sweep(run_g),
                Some(k) => directed_sum_sweep_batched(run_g, k),
            };
            let r = match r {
                None => {
                    if g.num_vertices() != 0 {
                        out.push(format!("[{name}] {tag}: None on a non-empty digraph"));
                    }
                    continue;
                }
                Some(r) => {
                    if g.num_vertices() == 0 {
                        out.push(format!("[{name}] {tag}: Some on the empty digraph"));
                        continue;
                    }
                    r
                }
            };
            check_one_dir_result(&r, oracle, name, &tag, back, out);
            // One lane applied sequentially must reproduce the serial
            // driver sweep for sweep — bit-identical result struct.
            match (code, &serial_result) {
                ("serial", _) => serial_result = Some(r),
                ("bp64x1", Some(s)) if &r != s => {
                    out.push(format!(
                        "[{name}] {tag}: single-lane batch deviates from the serial driver \
                         ({r:?} vs {s:?})"
                    ));
                }
                _ => {}
            }
        }
    }
}

/// Checks one [`DirSumSweepResult`] — aggregates and certificates —
/// against the oracle, translating certificate ids with `back`.
fn check_one_dir_result(
    r: &DirSumSweepResult,
    oracle: &DirectedOracle,
    name: &str,
    tag: &str,
    back: impl Fn(VertexId) -> VertexId,
    out: &mut Vec<String>,
) {
    if r.diameter != oracle.diameter
        || r.radius != oracle.radius
        || r.strongly_connected != oracle.strongly_connected
        || r.num_sccs != oracle.num_sccs
    {
        out.push(format!(
            "[{name}] {tag}: got (diam {:?}, radius {:?}, sc {}, sccs {}), \
             oracle (diam {:?}, radius {:?}, sc {}, sccs {})",
            r.diameter,
            r.radius,
            r.strongly_connected,
            r.num_sccs,
            oracle.diameter,
            oracle.radius,
            oracle.strongly_connected,
            oracle.num_sccs
        ));
        return; // certificate checks would only echo the mismatch
    }
    // Certificate: the diametral vertex must realize the diameter in
    // one of the two eccentricity families.
    match (r.diameter, r.diametral_vertex) {
        (Some(d), Some(v)) => {
            let v = back(v);
            let f = oracle.forward[v as usize];
            let b = oracle.backward[v as usize];
            if f != Some(d) && b != Some(d) {
                out.push(format!(
                    "[{name}] {tag}: diametral vertex {v} has eccF {f:?} / eccB {b:?}, \
                     neither equals the diameter {d}"
                ));
            }
        }
        (Some(_), None) => {
            out.push(format!(
                "[{name}] {tag}: finite diameter without a diametral vertex"
            ));
        }
        (None, Some(v)) => {
            out.push(format!(
                "[{name}] {tag}: infinite diameter yet diametral vertex {v}"
            ));
        }
        (None, None) => {}
    }
    // Certificate: the central vertex must be radial and realize the
    // radius as its forward eccentricity.
    match (r.radius, r.central_vertex) {
        (Some(rad), Some(v)) => {
            let v = back(v);
            if oracle.forward[v as usize] != Some(rad) {
                out.push(format!(
                    "[{name}] {tag}: central vertex {v} has eccF {:?} ≠ radius {rad}",
                    oracle.forward[v as usize]
                ));
            }
        }
        (Some(_), None) => {
            out.push(format!(
                "[{name}] {tag}: finite radius without a central vertex"
            ));
        }
        (None, Some(v)) => {
            out.push(format!(
                "[{name}] {tag}: infinite radius yet central vertex {v}"
            ));
        }
        (None, None) => {}
    }
    // Certified-at-Tarjan-time contract: with two or more source SCCs
    // both answers are infinite before any traversal runs.
    if r.diameter.is_none() && r.radius.is_none() && r.bfs_calls != 0 {
        out.push(format!(
            "[{name}] {tag}: both answers infinite but {} BFS ran (expected zero sweeps)",
            r.bfs_calls
        ));
    }
}

/// The all-pairs directed eccentricities against the oracle's two
/// per-vertex families, including the 2n traversal accounting.
fn check_dir_eccentricities(
    g: &DiGraph,
    oracle: &DirectedOracle,
    name: &str,
    out: &mut Vec<String>,
) {
    let r = directed_eccentricities(g);
    if r.forward != oracle.forward || r.backward != oracle.backward {
        let first = (0..g.num_vertices())
            .find(|&v| r.forward[v] != oracle.forward[v] || r.backward[v] != oracle.backward[v]);
        out.push(format!(
            "[{name}] directed-ecc: eccentricity vectors mismatch (first at {first:?})"
        ));
    }
    if r.bfs_calls != 2 * g.num_vertices() {
        out.push(format!(
            "[{name}] directed-ecc: {} logical traversals, expected 2n = {}",
            r.bfs_calls,
            2 * g.num_vertices()
        ));
    }
}

/// Both directed kernels (serial and 64-lane bit-parallel), both sweep
/// directions, on the deterministic source sample: full distance rows
/// must match the textbook reference.
fn check_dir_kernels(g: &DiGraph, oracle: &DirectedOracle, name: &str, out: &mut Vec<String>) {
    let n = g.num_vertices();
    if n == 0 {
        return;
    }
    let sources = sample_sources(n);
    let mut scratch = BfsScratch::new(n);
    let (mut dist, mut rows) = (Vec::new(), Vec::new());
    for direction in [SweepDirection::Forward, SweepDirection::Backward] {
        let dname = match direction {
            SweepDirection::Forward => "fwd",
            SweepDirection::Backward => "bwd",
        };
        let refs: Vec<(Vec<u32>, u32)> = sources
            .iter()
            .map(|&s| reference_distances_directed(g, s, direction == SweepDirection::Forward))
            .collect();
        for (&src, (want_dist, want_ecc)) in sources.iter().zip(&refs) {
            let ecc = bfs_distances_directed(g, src, direction, &mut dist);
            if ecc != *want_ecc || &dist != want_dist {
                out.push(format!(
                    "[{name}] kernel-dir-serial/{dname} from {src}: ecc {ecc} \
                     (reference {want_ecc}) or distance row mismatch"
                ));
            }
        }
        for (chunk_idx, chunk) in sources.chunks(64).enumerate() {
            let summary = bp64_distances_directed(g, chunk, direction, &mut scratch, &mut rows);
            for (k, &src) in chunk.iter().enumerate() {
                let (want_dist, want_ecc) = &refs[chunk_idx * 64 + k];
                let reached = want_dist.iter().filter(|&&d| d != UNREACHED).count() as u32;
                if summary.ecc[k] != *want_ecc
                    || summary.visited[k] != reached
                    || &rows[k * n..(k + 1) * n] != want_dist.as_slice()
                {
                    out.push(format!(
                        "[{name}] kernel-dir-bp64/{dname} lane {k} from {src}: \
                         got (ecc {}, visited {}), reference (ecc {want_ecc}, visited {reached})",
                        summary.ecc[k], summary.visited[k]
                    ));
                }
            }
        }
    }
    // Oracle self-consistency: a finite forward eccentricity means the
    // source reaches everything, so its restricted ecc must agree.
    for &src in &sources {
        if let Some(e) = oracle.forward[src as usize] {
            let (_, restricted) = reference_distances_directed(g, src, true);
            if restricted != e {
                out.push(format!(
                    "[{name}] oracle-dir: forward ecc {e} of {src} disagrees with \
                     its reachable-set ecc {restricted}"
                ));
            }
        }
    }
}

/// Deterministic source sample: every vertex on small graphs, an even
/// stride (always including vertex 0 and n−1) on larger ones.
pub fn sample_sources(n: usize) -> Vec<VertexId> {
    if n == 0 {
        return Vec::new();
    }
    if n <= 48 {
        return (0..n as VertexId).collect();
    }
    let step = n.div_ceil(32);
    let mut v: Vec<VertexId> = (0..n).step_by(step).map(|x| x as VertexId).collect();
    if *v.last().unwrap() != (n - 1) as VertexId {
        v.push((n - 1) as VertexId);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{
        barbell, caterpillar, complete, cycle, grid2d, lollipop, path, star,
    };
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};

    #[test]
    fn clean_on_classic_shapes() {
        for (name, g) in [
            ("path", path(17)),
            ("cycle", cycle(12)),
            ("star", star(9)),
            ("complete", complete(6)),
            ("grid", grid2d(5, 7)),
            ("lollipop", lollipop(5, 6)),
            ("barbell", barbell(4, 3)),
            ("caterpillar", caterpillar(6, 2)),
        ] {
            assert_differential(name, &g);
        }
    }

    #[test]
    fn clean_on_degenerate_and_disconnected() {
        assert_differential("empty0", &CsrGraph::empty(0));
        assert_differential("empty1", &CsrGraph::empty(1));
        assert_differential("isolated5", &CsrGraph::empty(5));
        assert_differential("two-cliques", &disjoint_union(&complete(4), &complete(3)));
        assert_differential("path+isolated", &with_isolated_vertices(&path(9), 3));
    }

    #[test]
    fn mismatches_are_reported_not_swallowed() {
        // A deliberately wrong "diameter" must trip the bound check.
        let g = path(10);
        assert!(!bound_violations(&g, 2).is_empty());
        assert!(!bound_violations(&g, 42).is_empty());
        assert!(bound_violations(&g, 9).is_empty());
    }

    #[test]
    fn directed_clean_on_classic_shapes() {
        use fdiam_graph::transform::orient;
        use fdiam_graph::EdgeList;

        // A directed cycle, a DAG path, a two-source join, and both a
        // symmetric and a near-pure orientation of a mesh.
        let mut el = EdgeList::new(6);
        for v in 0..6u32 {
            el.push(v, (v + 1) % 6);
        }
        assert_differential_directed("dicycle6", &DiGraph::from_edge_list(&el));

        let mut el = EdgeList::new(5);
        for v in 0..4u32 {
            el.push(v, v + 1);
        }
        assert_differential_directed("dipath5", &DiGraph::from_edge_list(&el));

        let mut el = EdgeList::new(4);
        el.push(0, 2);
        el.push(1, 2);
        el.push(2, 3);
        assert_differential_directed("two-sources", &DiGraph::from_edge_list(&el));

        assert_differential_directed("grid-sym", &orient(&grid2d(5, 5), 100, 9));
        assert_differential_directed("grid-oriented", &orient(&grid2d(5, 5), 10, 9));
        assert_differential_directed("star-mixed", &orient(&star(9), 50, 3));
    }

    #[test]
    fn directed_clean_on_degenerate_inputs() {
        assert_differential_directed("empty0", &DiGraph::empty(0));
        assert_differential_directed("empty1", &DiGraph::empty(1));
        assert_differential_directed("isolated4", &DiGraph::empty(4));
        assert_differential_directed(
            "two-cliques",
            &DiGraph::from_undirected(&disjoint_union(&complete(3), &complete(4))),
        );
    }

    #[test]
    fn source_sampling_is_deterministic_and_covers_ends() {
        assert_eq!(sample_sources(0), Vec::<VertexId>::new());
        assert_eq!(sample_sources(3), vec![0, 1, 2]);
        let s = sample_sources(1000);
        assert_eq!(s, sample_sources(1000));
        assert_eq!(s[0], 0);
        assert_eq!(*s.last().unwrap(), 999);
        assert!(s.len() <= 34);
    }
}
