//! The reference oracle: textbook BFS-from-every-vertex eccentricities
//! and diameter, written against nothing but `CsrGraph::neighbors` and
//! `std::collections::VecDeque`.
//!
//! This module deliberately does **not** use the `fdiam-bfs` kernels —
//! it is the independent implementation every optimized code is
//! differentially tested against, so sharing frontier machinery with
//! the systems under test would defeat its purpose. O(n·m): only for
//! test-sized graphs.
//!
//! Alongside the exact oracle it provides two cheap one-sided bounds
//! usable on graphs of any size (Magnien, Latapy & Habib, *"Fast
//! computation of empirically tight bounds for the diameter of massive
//! graphs"*, JEA 2009):
//!
//! * [`double_sweep_lower_bound`] — ecc of the vertex found by a BFS
//!   from a max-degree vertex; never exceeds the diameter.
//! * [`bfs_tree_upper_bound`] — the exact diameter of a BFS spanning
//!   tree; tree paths are graph walks, so it never undershoots.
//!
//! Every harness run sandwiches the codes' answers between these.

use fdiam_graph::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// Distance label for vertices not reached by a traversal.
pub const UNREACHED: u32 = u32::MAX;

/// Exact ground truth for one graph, computed the slow, obvious way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Oracle {
    /// Eccentricity of every vertex within its connected component
    /// (isolated vertices have eccentricity 0).
    pub eccentricities: Vec<u32>,
    /// Largest eccentricity over all components — the whole repo's
    /// "CC diameter" convention; 0 for the empty graph.
    pub largest_cc_diameter: u32,
    /// Smallest eccentricity over all vertices (0 when the graph has
    /// isolated vertices, 0 for the empty graph).
    pub radius: u32,
    /// Whether the graph is connected (n ≤ 1 counts as connected).
    pub connected: bool,
}

impl Oracle {
    /// BFS from every vertex. O(n·m) — test-sized graphs only.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut ecc = vec![0u32; n];
        let mut connected = true;
        let mut dist = vec![UNREACHED; n];
        for (v, slot) in ecc.iter_mut().enumerate() {
            let (e, visited) = bfs_into(g, v as VertexId, &mut dist);
            *slot = e;
            if visited != n {
                connected = false;
            }
        }
        Oracle {
            largest_cc_diameter: ecc.iter().copied().max().unwrap_or(0),
            radius: ecc.iter().copied().min().unwrap_or(0),
            eccentricities: ecc,
            connected,
        }
    }

    /// The finite diameter, `None` when disconnected (diameter ∞).
    pub fn diameter(&self) -> Option<u32> {
        self.connected.then_some(self.largest_cc_diameter)
    }
}

/// Distances from `source` by textbook queue BFS. Returns the distance
/// vector (`UNREACHED` for other components) and the eccentricity of
/// `source` within its component.
pub fn reference_distances(g: &CsrGraph, source: VertexId) -> (Vec<u32>, u32) {
    let mut dist = vec![UNREACHED; g.num_vertices()];
    let (ecc, _) = bfs_into(g, source, &mut dist);
    (dist, ecc)
}

/// The farthest vertex from `source` under the repo-wide tie-break:
/// smallest id among vertices at maximum distance. This is the value
/// `BfsSummary::farthest` must reproduce on every kernel and thread
/// count.
pub fn reference_farthest(g: &CsrGraph, source: VertexId) -> VertexId {
    let (dist, ecc) = reference_distances(g, source);
    dist.iter()
        .position(|&d| d == ecc)
        .expect("source itself is at distance 0") as VertexId
}

/// BFS writing distances into `dist` (resetting it first); returns
/// (eccentricity of source, number of visited vertices).
fn bfs_into(g: &CsrGraph, source: VertexId, dist: &mut [u32]) -> (u32, usize) {
    dist.fill(UNREACHED);
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    let mut ecc = 0;
    let mut visited = 1;
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        ecc = d;
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = d + 1;
                visited += 1;
                queue.push_back(w);
            }
        }
    }
    (ecc, visited)
}

/// Double-sweep lower bound on the largest CC diameter: in every
/// component, BFS from the max-degree representative, then BFS again
/// from the farthest vertex found; that second eccentricity is the
/// length of a real shortest path, hence ≤ the component's diameter.
pub fn double_sweep_lower_bound(g: &CsrGraph) -> u32 {
    let mut best = 0;
    let mut dist = vec![UNREACHED; g.num_vertices()];
    for rep in component_representatives(g) {
        let (_, visited) = bfs_into(g, rep, &mut dist);
        debug_assert!(visited >= 1);
        let far = min_id_at_max_distance(&dist);
        let (ecc, _) = bfs_into(g, far, &mut dist);
        best = best.max(ecc);
    }
    best
}

/// BFS-tree upper bound on the largest CC diameter: for every
/// component, build the BFS spanning tree from the representative and
/// return the exact tree diameter (double sweep is exact on trees).
/// Shortest paths in the tree are walks in the graph, so
/// `diam(G) ≤ diam(T)`.
pub fn bfs_tree_upper_bound(g: &CsrGraph) -> u32 {
    let n = g.num_vertices();
    let mut best = 0;
    let mut dist = vec![UNREACHED; n];
    for rep in component_representatives(g) {
        // Build the BFS tree as an adjacency list: parent links for
        // every non-root visited vertex.
        let (_, _) = bfs_into(g, rep, &mut dist);
        let mut tree: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in 0..n as VertexId {
            let dv = dist[v as usize];
            if dv == UNREACHED || dv == 0 {
                continue;
            }
            // First neighbor one level up is the BFS-tree parent.
            let parent = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|&w| dist[w as usize] == dv - 1)
                .expect("visited non-root vertex has a parent");
            tree[v as usize].push(parent);
            tree[parent as usize].push(v);
        }
        // Double sweep on the tree (exact there): farthest from rep,
        // then the eccentricity of that vertex.
        let mut tdist = vec![UNREACHED; n];
        tree_bfs(&tree, rep, &mut tdist);
        let far = min_id_at_max_distance(&tdist);
        tree_bfs(&tree, far, &mut tdist);
        let tree_diam = tdist.iter().copied().filter(|&d| d != UNREACHED).max();
        best = best.max(tree_diam.unwrap_or(0));
    }
    best
}

/// Sandwich check: `double-sweep lb ≤ largest_cc_diameter ≤ tree ub`,
/// returning the mismatch messages (empty when the invariants hold).
pub fn bound_violations(g: &CsrGraph, largest_cc_diameter: u32) -> Vec<String> {
    let mut out = Vec::new();
    let lb = double_sweep_lower_bound(g);
    let ub = bfs_tree_upper_bound(g);
    if largest_cc_diameter < lb {
        out.push(format!(
            "double-sweep lower bound {lb} exceeds reported diameter {largest_cc_diameter}"
        ));
    }
    if largest_cc_diameter > ub {
        out.push(format!(
            "BFS-tree upper bound {ub} is below reported diameter {largest_cc_diameter}"
        ));
    }
    out
}

/// Max-degree representative (lowest id on ties) of every component
/// that contains at least one edge, computed with a plain union-less
/// BFS labelling — again independent of `fdiam-graph::components`.
fn component_representatives(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut reps = Vec::new();
    let mut queue = VecDeque::new();
    for v in 0..n as VertexId {
        if comp[v as usize] != usize::MAX || g.degree(v) == 0 {
            continue; // isolated vertices contribute eccentricity 0
        }
        let c = reps.len();
        comp[v as usize] = c;
        queue.push_back(v);
        let mut rep = v;
        while let Some(u) = queue.pop_front() {
            if g.degree(u) > g.degree(rep) {
                rep = u;
            }
            for &w in g.neighbors(u) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = c;
                    queue.push_back(w);
                }
            }
        }
        reps.push(rep);
    }
    reps
}

fn min_id_at_max_distance(dist: &[u32]) -> VertexId {
    let max = dist
        .iter()
        .copied()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0);
    dist.iter()
        .position(|&d| d == max)
        .expect("at least the source is reached") as VertexId
}

fn tree_bfs(tree: &[Vec<VertexId>], source: VertexId, dist: &mut [u32]) {
    dist.fill(UNREACHED);
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in &tree[v as usize] {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{balanced_tree, complete, cycle, grid2d, lollipop, path, star};
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};

    #[test]
    fn known_shapes() {
        let cases: [(&str, CsrGraph, u32, u32); 7] = [
            ("path(6)", path(6), 5, 3),
            ("cycle(8)", cycle(8), 4, 4),
            ("cycle(9)", cycle(9), 4, 4),
            ("star(7)", star(7), 2, 1),
            ("complete(5)", complete(5), 1, 1),
            ("grid2d(3,4)", grid2d(3, 4), 5, 3),
            ("lollipop(4,3)", lollipop(4, 3), 4, 2),
        ];
        for (name, g, diam, radius) in cases {
            let o = Oracle::compute(&g);
            assert_eq!(o.largest_cc_diameter, diam, "{name} diameter");
            assert_eq!(o.radius, radius, "{name} radius");
            assert!(o.connected, "{name} connectivity");
            assert_eq!(o.diameter(), Some(diam), "{name}");
        }
    }

    #[test]
    fn disconnected_semantics() {
        let g = disjoint_union(&path(5), &cycle(6));
        let o = Oracle::compute(&g);
        assert!(!o.connected);
        assert_eq!(o.diameter(), None);
        assert_eq!(o.largest_cc_diameter, 4);
        assert_eq!(o.radius, 2);

        let iso = with_isolated_vertices(&path(4), 2);
        let o = Oracle::compute(&iso);
        assert!(!o.connected);
        assert_eq!(o.largest_cc_diameter, 3);
        assert_eq!(o.radius, 0, "isolated vertices have eccentricity 0");
        assert_eq!(&o.eccentricities[4..], &[0, 0]);
    }

    #[test]
    fn degenerate_graphs() {
        for g in [CsrGraph::empty(0), CsrGraph::empty(1), path(2)] {
            let o = Oracle::compute(&g);
            assert!(o.connected);
            assert_eq!(o.diameter(), Some(o.largest_cc_diameter));
        }
        assert_eq!(Oracle::compute(&CsrGraph::empty(0)).largest_cc_diameter, 0);
        assert_eq!(Oracle::compute(&path(2)).largest_cc_diameter, 1);
        assert!(!Oracle::compute(&CsrGraph::empty(2)).connected);
    }

    #[test]
    fn farthest_uses_min_id_tie_break() {
        // From the center of star(5), every leaf is at distance 1; the
        // reference must pick the smallest id (vertex 1: id 0 is the
        // center itself at distance 0).
        assert_eq!(reference_farthest(&star(5), 0), 1);
        // From a leaf, the other leaves are at distance 2.
        assert_eq!(reference_farthest(&star(5), 3), 1);
    }

    #[test]
    fn bounds_sandwich_exact_on_trees() {
        for g in [path(9), star(6), balanced_tree(2, 4)] {
            let o = Oracle::compute(&g);
            assert_eq!(double_sweep_lower_bound(&g), o.largest_cc_diameter);
            assert_eq!(bfs_tree_upper_bound(&g), o.largest_cc_diameter);
        }
    }

    #[test]
    fn bounds_sandwich_general() {
        for g in [
            cycle(11),
            grid2d(4, 7),
            lollipop(5, 4),
            disjoint_union(&cycle(10), &path(3)),
            with_isolated_vertices(&grid2d(3, 3), 2),
            CsrGraph::empty(0),
        ] {
            let o = Oracle::compute(&g);
            assert!(bound_violations(&g, o.largest_cc_diameter).is_empty());
            assert!(double_sweep_lower_bound(&g) <= o.largest_cc_diameter);
            assert!(bfs_tree_upper_bound(&g) >= o.largest_cc_diameter);
        }
    }
}
