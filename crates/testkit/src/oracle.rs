//! The reference oracle: textbook BFS-from-every-vertex eccentricities
//! and diameter, written against nothing but `CsrGraph::neighbors` and
//! `std::collections::VecDeque`.
//!
//! This module deliberately does **not** use the `fdiam-bfs` kernels —
//! it is the independent implementation every optimized code is
//! differentially tested against, so sharing frontier machinery with
//! the systems under test would defeat its purpose. O(n·m): only for
//! test-sized graphs.
//!
//! Alongside the exact oracle it provides two cheap one-sided bounds
//! usable on graphs of any size (Magnien, Latapy & Habib, *"Fast
//! computation of empirically tight bounds for the diameter of massive
//! graphs"*, JEA 2009):
//!
//! * [`double_sweep_lower_bound`] — ecc of the vertex found by a BFS
//!   from a max-degree vertex; never exceeds the diameter.
//! * [`bfs_tree_upper_bound`] — the exact diameter of a BFS spanning
//!   tree; tree paths are graph walks, so it never undershoots.
//!
//! Every harness run sandwiches the codes' answers between these.

use fdiam_graph::{CsrGraph, DiGraph, VertexId};
use std::collections::VecDeque;

/// Distance label for vertices not reached by a traversal.
pub const UNREACHED: u32 = u32::MAX;

/// Exact ground truth for one graph, computed the slow, obvious way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Oracle {
    /// Eccentricity of every vertex within its connected component
    /// (isolated vertices have eccentricity 0).
    pub eccentricities: Vec<u32>,
    /// Largest eccentricity over all components — the whole repo's
    /// "CC diameter" convention; 0 for the empty graph.
    pub largest_cc_diameter: u32,
    /// Smallest eccentricity over all vertices (0 when the graph has
    /// isolated vertices, 0 for the empty graph).
    pub radius: u32,
    /// Whether the graph is connected (n ≤ 1 counts as connected).
    pub connected: bool,
}

impl Oracle {
    /// BFS from every vertex. O(n·m) — test-sized graphs only.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut ecc = vec![0u32; n];
        let mut connected = true;
        let mut dist = vec![UNREACHED; n];
        for (v, slot) in ecc.iter_mut().enumerate() {
            let (e, visited) = bfs_into(g, v as VertexId, &mut dist);
            *slot = e;
            if visited != n {
                connected = false;
            }
        }
        Oracle {
            largest_cc_diameter: ecc.iter().copied().max().unwrap_or(0),
            radius: ecc.iter().copied().min().unwrap_or(0),
            eccentricities: ecc,
            connected,
        }
    }

    /// The finite diameter, `None` when disconnected (diameter ∞).
    pub fn diameter(&self) -> Option<u32> {
        self.connected.then_some(self.largest_cc_diameter)
    }
}

/// Distances from `source` by textbook queue BFS. Returns the distance
/// vector (`UNREACHED` for other components) and the eccentricity of
/// `source` within its component.
pub fn reference_distances(g: &CsrGraph, source: VertexId) -> (Vec<u32>, u32) {
    let mut dist = vec![UNREACHED; g.num_vertices()];
    let (ecc, _) = bfs_into(g, source, &mut dist);
    (dist, ecc)
}

/// The farthest vertex from `source` under the repo-wide tie-break:
/// smallest id among vertices at maximum distance. This is the value
/// `BfsSummary::farthest` must reproduce on every kernel and thread
/// count.
pub fn reference_farthest(g: &CsrGraph, source: VertexId) -> VertexId {
    let (dist, ecc) = reference_distances(g, source);
    dist.iter()
        .position(|&d| d == ecc)
        .expect("source itself is at distance 0") as VertexId
}

/// BFS writing distances into `dist` (resetting it first); returns
/// (eccentricity of source, number of visited vertices).
fn bfs_into(g: &CsrGraph, source: VertexId, dist: &mut [u32]) -> (u32, usize) {
    dist.fill(UNREACHED);
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    let mut ecc = 0;
    let mut visited = 1;
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        ecc = d;
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = d + 1;
                visited += 1;
                queue.push_back(w);
            }
        }
    }
    (ecc, visited)
}

/// Double-sweep lower bound on the largest CC diameter: in every
/// component, BFS from the max-degree representative, then BFS again
/// from the farthest vertex found; that second eccentricity is the
/// length of a real shortest path, hence ≤ the component's diameter.
pub fn double_sweep_lower_bound(g: &CsrGraph) -> u32 {
    let mut best = 0;
    let mut dist = vec![UNREACHED; g.num_vertices()];
    for rep in component_representatives(g) {
        let (_, visited) = bfs_into(g, rep, &mut dist);
        debug_assert!(visited >= 1);
        let far = min_id_at_max_distance(&dist);
        let (ecc, _) = bfs_into(g, far, &mut dist);
        best = best.max(ecc);
    }
    best
}

/// BFS-tree upper bound on the largest CC diameter: for every
/// component, build the BFS spanning tree from the representative and
/// return the exact tree diameter (double sweep is exact on trees).
/// Shortest paths in the tree are walks in the graph, so
/// `diam(G) ≤ diam(T)`.
pub fn bfs_tree_upper_bound(g: &CsrGraph) -> u32 {
    let n = g.num_vertices();
    let mut best = 0;
    let mut dist = vec![UNREACHED; n];
    for rep in component_representatives(g) {
        // Build the BFS tree as an adjacency list: parent links for
        // every non-root visited vertex.
        let (_, _) = bfs_into(g, rep, &mut dist);
        let mut tree: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in 0..n as VertexId {
            let dv = dist[v as usize];
            if dv == UNREACHED || dv == 0 {
                continue;
            }
            // First neighbor one level up is the BFS-tree parent.
            let parent = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|&w| dist[w as usize] == dv - 1)
                .expect("visited non-root vertex has a parent");
            tree[v as usize].push(parent);
            tree[parent as usize].push(v);
        }
        // Double sweep on the tree (exact there): farthest from rep,
        // then the eccentricity of that vertex.
        let mut tdist = vec![UNREACHED; n];
        tree_bfs(&tree, rep, &mut tdist);
        let far = min_id_at_max_distance(&tdist);
        tree_bfs(&tree, far, &mut tdist);
        let tree_diam = tdist.iter().copied().filter(|&d| d != UNREACHED).max();
        best = best.max(tree_diam.unwrap_or(0));
    }
    best
}

/// Sandwich check: `double-sweep lb ≤ largest_cc_diameter ≤ tree ub`,
/// returning the mismatch messages (empty when the invariants hold).
pub fn bound_violations(g: &CsrGraph, largest_cc_diameter: u32) -> Vec<String> {
    let mut out = Vec::new();
    let lb = double_sweep_lower_bound(g);
    let ub = bfs_tree_upper_bound(g);
    if largest_cc_diameter < lb {
        out.push(format!(
            "double-sweep lower bound {lb} exceeds reported diameter {largest_cc_diameter}"
        ));
    }
    if largest_cc_diameter > ub {
        out.push(format!(
            "BFS-tree upper bound {ub} is below reported diameter {largest_cc_diameter}"
        ));
    }
    out
}

/// Max-degree representative (lowest id on ties) of every component
/// that contains at least one edge, computed with a plain union-less
/// BFS labelling — again independent of `fdiam-graph::components`.
fn component_representatives(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut reps = Vec::new();
    let mut queue = VecDeque::new();
    for v in 0..n as VertexId {
        if comp[v as usize] != usize::MAX || g.degree(v) == 0 {
            continue; // isolated vertices contribute eccentricity 0
        }
        let c = reps.len();
        comp[v as usize] = c;
        queue.push_back(v);
        let mut rep = v;
        while let Some(u) = queue.pop_front() {
            if g.degree(u) > g.degree(rep) {
                rep = u;
            }
            for &w in g.neighbors(u) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = c;
                    queue.push_back(w);
                }
            }
        }
        reps.push(rep);
    }
    reps
}

fn min_id_at_max_distance(dist: &[u32]) -> VertexId {
    let max = dist
        .iter()
        .copied()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0);
    dist.iter()
        .position(|&d| d == max)
        .expect("at least the source is reached") as VertexId
}

/// Exact directed ground truth, computed the slow, obvious way: one
/// textbook queue BFS per vertex per side (forward over
/// [`DiGraph::out_neighbors`], backward over
/// [`DiGraph::in_neighbors`]) plus a reference Kosaraju SCC pass —
/// no code shared with `fdiam-bfs` or `fdiam-analytics`.
///
/// `None` encodes ∞ throughout, matching
/// `fdiam_analytics::DirSumSweepResult`: the diameter is finite iff
/// the digraph is strongly connected, a forward eccentricity is finite
/// iff the vertex reaches everything (i.e. it is radial), a backward
/// one iff everything reaches it, and the radius is the minimum finite
/// forward eccentricity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectedOracle {
    /// `forward[v] = eccF(v) = max_w d(v, w)`; `None` when `v` does
    /// not reach every vertex.
    pub forward: Vec<Option<u32>>,
    /// `backward[v] = eccB(v) = max_w d(w, v)`; `None` when some
    /// vertex does not reach `v`.
    pub backward: Vec<Option<u32>>,
    /// `max d(u, v)` over all ordered pairs; `None` = infinite.
    pub diameter: Option<u32>,
    /// `min eccF` over the radial vertices; `None` = infinite.
    pub radius: Option<u32>,
    /// Whether the digraph is strongly connected (`num_sccs == 1`; the
    /// empty digraph has zero SCCs and counts as not SC, matching the
    /// drivers' `None` return).
    pub strongly_connected: bool,
    /// Reference Kosaraju component labels, compacted by first
    /// occurrence in vertex-id order — directly comparable with
    /// `StronglyConnectedComponents::labels()`.
    pub scc_labels: Vec<u32>,
    /// Number of strongly connected components.
    pub num_sccs: usize,
}

impl DirectedOracle {
    /// Two BFS per vertex. O(n·m) — test-sized digraphs only.
    pub fn compute(g: &DiGraph) -> Self {
        let n = g.num_vertices();
        let mut forward = vec![None; n];
        let mut backward = vec![None; n];
        let mut dist = vec![UNREACHED; n];
        for v in 0..n as VertexId {
            let (e, visited) = dir_bfs_into(g, v, true, &mut dist);
            if visited == n {
                forward[v as usize] = Some(e);
            }
            let (e, visited) = dir_bfs_into(g, v, false, &mut dist);
            if visited == n {
                backward[v as usize] = Some(e);
            }
        }
        let scc_labels = kosaraju_scc(g);
        let num_sccs = scc_labels
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let strongly_connected = num_sccs == 1;
        // Strong connectivity makes every eccentricity finite, and the
        // maxima of the two families coincide (both are max d(u, v)).
        let diameter = strongly_connected
            .then(|| forward.iter().map(|e| e.expect("SC ⇒ finite")).max())
            .flatten();
        let radius = forward.iter().flatten().copied().min();
        DirectedOracle {
            forward,
            backward,
            diameter,
            radius,
            strongly_connected,
            scc_labels,
            num_sccs,
        }
    }

    /// The radial vertices: exactly those with a finite forward
    /// eccentricity (they reach every vertex).
    pub fn radial(&self) -> Vec<VertexId> {
        (0..self.forward.len() as VertexId)
            .filter(|&v| self.forward[v as usize].is_some())
            .collect()
    }
}

/// Directed distances from `source` by textbook queue BFS: `d(source,
/// ·)` when `forward`, `d(·, source)` otherwise. Returns the distance
/// vector (`UNREACHED` beyond the reachable set) and the eccentricity
/// of `source` restricted to its reachable set — the same semantics as
/// `fdiam_bfs::bfs_distances_directed`.
pub fn reference_distances_directed(
    g: &DiGraph,
    source: VertexId,
    forward: bool,
) -> (Vec<u32>, u32) {
    let mut dist = vec![UNREACHED; g.num_vertices()];
    let (ecc, _) = dir_bfs_into(g, source, forward, &mut dist);
    (dist, ecc)
}

/// BFS over one side of the digraph writing distances into `dist`
/// (resetting it first); returns (eccentricity of `source` within its
/// reachable set, number of reached vertices).
fn dir_bfs_into(g: &DiGraph, source: VertexId, forward: bool, dist: &mut [u32]) -> (u32, usize) {
    dist.fill(UNREACHED);
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    let mut ecc = 0;
    let mut visited = 1;
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        ecc = d;
        let nbrs = if forward {
            g.out_neighbors(v)
        } else {
            g.in_neighbors(v)
        };
        for &w in nbrs {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = d + 1;
                visited += 1;
                queue.push_back(w);
            }
        }
    }
    (ecc, visited)
}

/// Reference Kosaraju strongly connected components: iterative DFS
/// finishing order over the forward arcs, then reverse-order sweeps
/// over the transpose. Labels are compacted by first occurrence in
/// vertex-id order, the same normalization as the Tarjan
/// implementation under test, so the two vectors must be equal — not
/// merely the same partition.
pub fn kosaraju_scc(g: &DiGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut finish: Vec<VertexId> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    for root in 0..n as VertexId {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        stack.push((root, 0));
        while let Some(top) = stack.last_mut() {
            let (v, i) = *top;
            let nbrs = g.out_neighbors(v);
            if i < nbrs.len() {
                top.1 += 1;
                let w = nbrs[i];
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push((w, 0));
                }
            } else {
                stack.pop();
                finish.push(v);
            }
        }
    }

    const UNSET: u32 = u32::MAX;
    let mut raw = vec![UNSET; n];
    let mut label = 0u32;
    let mut queue = VecDeque::new();
    for &v in finish.iter().rev() {
        if raw[v as usize] != UNSET {
            continue;
        }
        raw[v as usize] = label;
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            for &w in g.in_neighbors(u) {
                if raw[w as usize] == UNSET {
                    raw[w as usize] = label;
                    queue.push_back(w);
                }
            }
        }
        label += 1;
    }

    // Renumber by first occurrence in vertex-id order.
    let mut remap = vec![UNSET; label as usize];
    let mut next = 0u32;
    for l in raw.iter_mut() {
        let r = *l as usize;
        if remap[r] == UNSET {
            remap[r] = next;
            next += 1;
        }
        *l = remap[r];
    }
    raw
}

fn tree_bfs(tree: &[Vec<VertexId>], source: VertexId, dist: &mut [u32]) {
    dist.fill(UNREACHED);
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in &tree[v as usize] {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{balanced_tree, complete, cycle, grid2d, lollipop, path, star};
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};

    #[test]
    fn known_shapes() {
        let cases: [(&str, CsrGraph, u32, u32); 7] = [
            ("path(6)", path(6), 5, 3),
            ("cycle(8)", cycle(8), 4, 4),
            ("cycle(9)", cycle(9), 4, 4),
            ("star(7)", star(7), 2, 1),
            ("complete(5)", complete(5), 1, 1),
            ("grid2d(3,4)", grid2d(3, 4), 5, 3),
            ("lollipop(4,3)", lollipop(4, 3), 4, 2),
        ];
        for (name, g, diam, radius) in cases {
            let o = Oracle::compute(&g);
            assert_eq!(o.largest_cc_diameter, diam, "{name} diameter");
            assert_eq!(o.radius, radius, "{name} radius");
            assert!(o.connected, "{name} connectivity");
            assert_eq!(o.diameter(), Some(diam), "{name}");
        }
    }

    #[test]
    fn disconnected_semantics() {
        let g = disjoint_union(&path(5), &cycle(6));
        let o = Oracle::compute(&g);
        assert!(!o.connected);
        assert_eq!(o.diameter(), None);
        assert_eq!(o.largest_cc_diameter, 4);
        assert_eq!(o.radius, 2);

        let iso = with_isolated_vertices(&path(4), 2);
        let o = Oracle::compute(&iso);
        assert!(!o.connected);
        assert_eq!(o.largest_cc_diameter, 3);
        assert_eq!(o.radius, 0, "isolated vertices have eccentricity 0");
        assert_eq!(&o.eccentricities[4..], &[0, 0]);
    }

    #[test]
    fn degenerate_graphs() {
        for g in [CsrGraph::empty(0), CsrGraph::empty(1), path(2)] {
            let o = Oracle::compute(&g);
            assert!(o.connected);
            assert_eq!(o.diameter(), Some(o.largest_cc_diameter));
        }
        assert_eq!(Oracle::compute(&CsrGraph::empty(0)).largest_cc_diameter, 0);
        assert_eq!(Oracle::compute(&path(2)).largest_cc_diameter, 1);
        assert!(!Oracle::compute(&CsrGraph::empty(2)).connected);
    }

    #[test]
    fn farthest_uses_min_id_tie_break() {
        // From the center of star(5), every leaf is at distance 1; the
        // reference must pick the smallest id (vertex 1: id 0 is the
        // center itself at distance 0).
        assert_eq!(reference_farthest(&star(5), 0), 1);
        // From a leaf, the other leaves are at distance 2.
        assert_eq!(reference_farthest(&star(5), 3), 1);
    }

    #[test]
    fn bounds_sandwich_exact_on_trees() {
        for g in [path(9), star(6), balanced_tree(2, 4)] {
            let o = Oracle::compute(&g);
            assert_eq!(double_sweep_lower_bound(&g), o.largest_cc_diameter);
            assert_eq!(bfs_tree_upper_bound(&g), o.largest_cc_diameter);
        }
    }

    fn digraph(n: usize, arcs: &[(u32, u32)]) -> DiGraph {
        let mut el = fdiam_graph::EdgeList::new(n);
        for &(u, v) in arcs {
            el.push(u, v);
        }
        DiGraph::from_edge_list(&el)
    }

    #[test]
    fn directed_known_shapes() {
        // Directed 5-cycle: every ecc is 4, both sides.
        let c5 = digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let o = DirectedOracle::compute(&c5);
        assert!(o.strongly_connected);
        assert_eq!(o.num_sccs, 1);
        assert_eq!(o.diameter, Some(4));
        assert_eq!(o.radius, Some(4));
        assert_eq!(o.forward, vec![Some(4); 5]);
        assert_eq!(o.backward, vec![Some(4); 5]);
        assert_eq!(o.radial(), vec![0, 1, 2, 3, 4]);

        // Directed path 0 → 1 → 2 → 3: a DAG — infinite diameter, but
        // the source reaches everything, so the radius is finite.
        let p4 = digraph(4, &[(0, 1), (1, 2), (2, 3)]);
        let o = DirectedOracle::compute(&p4);
        assert!(!o.strongly_connected);
        assert_eq!(o.num_sccs, 4);
        assert_eq!(o.diameter, None);
        assert_eq!(o.radius, Some(3));
        assert_eq!(o.forward, vec![Some(3), None, None, None]);
        assert_eq!(o.backward, vec![None, None, None, Some(3)]);
        assert_eq!(o.radial(), vec![0]);

        // Two sources 0 → 2 ← 1: nobody reaches everything.
        let o = DirectedOracle::compute(&digraph(3, &[(0, 2), (1, 2)]));
        assert_eq!(o.diameter, None);
        assert_eq!(o.radius, None);
        assert_eq!(o.num_sccs, 3);
        assert!(o.radial().is_empty());
    }

    #[test]
    fn directed_degenerate_graphs() {
        let o = DirectedOracle::compute(&DiGraph::empty(0));
        assert_eq!(o.num_sccs, 0);
        assert!(!o.strongly_connected);
        assert_eq!((o.diameter, o.radius), (None, None));

        let o = DirectedOracle::compute(&DiGraph::empty(1));
        assert!(o.strongly_connected);
        assert_eq!((o.diameter, o.radius), (Some(0), Some(0)));

        let o = DirectedOracle::compute(&DiGraph::empty(2));
        assert!(!o.strongly_connected);
        assert_eq!(o.num_sccs, 2);
        assert_eq!((o.diameter, o.radius), (None, None));
    }

    #[test]
    fn directed_oracle_matches_undirected_on_symmetric_inputs() {
        for g in [path(7), cycle(9), star(5), grid2d(3, 4)] {
            let o = Oracle::compute(&g);
            let d = DirectedOracle::compute(&DiGraph::from_undirected(&g));
            assert!(d.strongly_connected);
            assert_eq!(d.diameter, Some(o.largest_cc_diameter));
            assert_eq!(d.radius, Some(o.radius));
            let fwd: Vec<u32> = d.forward.iter().map(|e| e.unwrap()).collect();
            assert_eq!(fwd, o.eccentricities);
            assert_eq!(d.forward, d.backward);
        }
    }

    #[test]
    fn transpose_swaps_the_two_families() {
        let g = digraph(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let o = DirectedOracle::compute(&g);
        let t = DirectedOracle::compute(&g.clone().transposed());
        assert_eq!(o.forward, t.backward);
        assert_eq!(o.backward, t.forward);
        assert_eq!(o.diameter, t.diameter);
        assert_eq!(o.num_sccs, t.num_sccs);
    }

    #[test]
    fn reference_directed_distances_both_sides() {
        // 0 → 1 → 2 → 3, shortcut 0 → 2, back arc 3 → 0.
        let g = digraph(4, &[(0, 1), (1, 2), (2, 3), (0, 2), (3, 0)]);
        let (dist, ecc) = reference_distances_directed(&g, 0, true);
        assert_eq!(dist, vec![0, 1, 1, 2]);
        assert_eq!(ecc, 2);
        let (dist, ecc) = reference_distances_directed(&g, 0, false);
        assert_eq!(dist, vec![0, 3, 2, 1]);
        assert_eq!(ecc, 3);

        // Eccentricity is within the reachable set only.
        let g = digraph(3, &[(0, 1)]);
        let (dist, ecc) = reference_distances_directed(&g, 0, true);
        assert_eq!(dist, vec![0, 1, UNREACHED]);
        assert_eq!(ecc, 1);
    }

    #[test]
    fn kosaraju_labels_and_normalization() {
        // Two 2-cycles bridged by one arc, plus a sink: components in
        // first-occurrence order are {0,1} → 0, {2,3} → 1, {4} → 2.
        let g = digraph(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        assert_eq!(kosaraju_scc(&g), vec![0, 0, 1, 1, 2]);

        // On a symmetric digraph SCCs are the connected components.
        let und = DiGraph::from_undirected(&disjoint_union(&path(3), &cycle(3)));
        assert_eq!(kosaraju_scc(&und), vec![0, 0, 0, 1, 1, 1]);

        assert_eq!(kosaraju_scc(&DiGraph::empty(0)), Vec::<u32>::new());
    }

    #[test]
    fn bounds_sandwich_general() {
        for g in [
            cycle(11),
            grid2d(4, 7),
            lollipop(5, 4),
            disjoint_union(&cycle(10), &path(3)),
            with_isolated_vertices(&grid2d(3, 3), 2),
            CsrGraph::empty(0),
        ] {
            let o = Oracle::compute(&g);
            assert!(bound_violations(&g, o.largest_cc_diameter).is_empty());
            assert!(double_sweep_lower_bound(&g) <= o.largest_cc_diameter);
            assert!(bfs_tree_upper_bound(&g) >= o.largest_cc_diameter);
        }
    }
}
