//! Miniature analogues of the 17 benchmark-suite families
//! (`crates/bench/src/suite.rs`), shrunk to oracle-checkable sizes
//! (a few hundred vertices) and parameterized by seed so the fuzzer
//! can roam the generator parameter space.
//!
//! The family *names* match the bench suite one-for-one so a
//! differential failure here points straight at the topology class the
//! paper evaluates (§5, Table 1); only `n`/`scale` differ, because the
//! reference oracle is O(n·m).

use fdiam_graph::generators::{
    attach_tendrils, barabasi_albert, grid2d, kronecker_graph500, random_geometric, rmat,
    road_network, RmatProbabilities,
};
use fdiam_graph::transform::orient;
use fdiam_graph::{CsrGraph, DiGraph};

/// Number of generator families — one per bench-suite entry.
pub const NUM_FAMILIES: usize = 17;

/// Bench-suite names, in suite order.
pub const FAMILY_NAMES: [&str; NUM_FAMILIES] = [
    "grid2d.sym",
    "amazon-like",
    "skitter-like",
    "citeseer-like",
    "patents-like",
    "copapers-like",
    "delaunay-like",
    "europe-osm-like",
    "in2004-like",
    "internet-like",
    "kron-like",
    "rmat16-like",
    "rmat22-like",
    "livejournal-like",
    "uk2002-like",
    "road-ny-like",
    "road-usa-like",
];

/// Same power-law analogue as the bench suite: preferential-attachment
/// core plus peripheral tendrils.
fn whiskered_ba(n: usize, m: usize, max_whisker: usize, seed: u64) -> CsrGraph {
    let core = barabasi_albert(n, m, seed);
    attach_tendrils(
        &core,
        (n / 200).max(2),
        max_whisker.div_ceil(2),
        seed ^ 0x57,
    )
}

/// Builds family `idx` (0-based suite order) at test scale; `seed`
/// varies the random instance. Panics if `idx ≥ NUM_FAMILIES`.
pub fn build_family(idx: usize, seed: u64) -> CsrGraph {
    match idx {
        0 => grid2d(16, 16), // deterministic like the suite entry
        1 => whiskered_ba(300, 6, 10, seed),
        2 => whiskered_ba(400, 7, 13, seed),
        3 => whiskered_ba(250, 4, 16, seed),
        4 => whiskered_ba(450, 4, 11, seed),
        5 => whiskered_ba(200, 28, 9, seed),
        6 => {
            let n = 300;
            random_geometric(n, 1.8 * (1.0 / n as f64).sqrt(), seed)
        }
        7 => road_network(350, 0.5, 4, seed),
        8 => whiskered_ba(300, 10, 19, seed),
        9 => whiskered_ba(200, 2, 13, seed),
        // scale-8 Kronecker keeps the suite's isolated-vertex +
        // multi-component structure at n = 256
        10 => kronecker_graph500(8, 16, seed),
        11 => rmat(8, 7, RmatProbabilities::GTGRAPH, seed),
        12 => rmat(8, 8, RmatProbabilities::GTGRAPH, seed),
        13 => whiskered_ba(400, 9, 8, seed),
        14 => whiskered_ba(300, 14, 20, seed),
        15 => road_network(300, 0.9, 2, seed),
        16 => road_network(400, 0.7, 3, seed),
        _ => panic!("family index {idx} out of range (< {NUM_FAMILIES})"),
    }
}

/// All 17 families built with instance seeds derived from `seed`.
pub fn families(seed: u64) -> impl Iterator<Item = (&'static str, CsrGraph)> {
    (0..NUM_FAMILIES).map(move |i| (FAMILY_NAMES[i], build_family(i, seed ^ (i as u64) << 8)))
}

/// Directed variant of family `idx`: the undirected instance run
/// through [`orient`] with a bidirectionality percentage that rotates
/// through the interesting regimes — fully symmetric (strongly
/// connected whenever the base is connected), mostly bidirectional
/// (one giant SCC plus fringes), mixed, and near-pure orientation
/// (condensations with many SCCs, often infinite radius). The same
/// `(idx, seed)` always yields the same digraph.
pub fn directed_family(idx: usize, seed: u64) -> DiGraph {
    let pct = DIRECTED_BIDIR_PCTS[idx % DIRECTED_BIDIR_PCTS.len()];
    orient(&build_family(idx, seed), pct, seed ^ 0xD1_5EED)
}

/// Bidirectionality percentages [`directed_family`] rotates through.
pub const DIRECTED_BIDIR_PCTS: [u32; 4] = [100, 67, 33, 5];

/// All 17 directed families with instance seeds derived from `seed`.
pub fn directed_families(seed: u64) -> impl Iterator<Item = (&'static str, DiGraph)> {
    (0..NUM_FAMILIES).map(move |i| (FAMILY_NAMES[i], directed_family(i, seed ^ (i as u64) << 8)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_builds_nonempty() {
        for (name, g) in families(0xF_D1A) {
            assert!(g.num_vertices() > 0, "{name} built an empty graph");
            assert!(
                g.num_vertices() <= 600,
                "{name} too large for oracle tests: n = {}",
                g.num_vertices()
            );
            g.validate().unwrap_or_else(|e| panic!("{name}: {e:?}"));
        }
    }

    #[test]
    fn kron_family_keeps_disconnected_structure() {
        // The Kronecker family is the suite's disconnected /
        // isolated-vertex stressor; make sure shrinking preserved that.
        let g = build_family(10, 0xF_D1A);
        assert!(g.num_isolated_vertices() > 0, "expected isolated vertices");
    }

    #[test]
    fn directed_families_cover_both_regimes() {
        let mut symmetric = 0;
        let mut multi_scc = 0;
        for (name, g) in directed_families(0xF_D1A) {
            assert!(g.num_vertices() > 0, "{name} built an empty digraph");
            g.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            if g.is_symmetric() {
                symmetric += 1;
            }
            if crate::oracle::kosaraju_scc(&g).iter().max().copied() > Some(0) {
                multi_scc += 1;
            }
        }
        // The pct rotation must produce both fully symmetric instances
        // and genuinely directed ones with several SCCs.
        assert!(symmetric >= 2, "only {symmetric} symmetric instances");
        assert!(multi_scc >= 2, "only {multi_scc} multi-SCC instances");
    }

    #[test]
    fn directed_families_are_deterministic() {
        let a = directed_family(3, 77);
        let b = directed_family(3, 77);
        assert_eq!(a, b);
        assert_ne!(directed_family(3, 77), directed_family(3, 78));
    }

    #[test]
    fn seeds_vary_instances() {
        let a = build_family(1, 1);
        let b = build_family(1, 2);
        assert_ne!(a, b, "different seeds should give different graphs");
    }
}
