//! `fuzz-differential` — bounded differential fuzzing from the
//! command line (and from CI's nightly cron):
//!
//! ```text
//! fuzz-differential [--iters N] [--seed S] [--directed]
//! ```
//!
//! Every case is one `u64` seed; a failure prints the seed and the
//! full mismatch list, so `fuzz-differential --seed <s> --iters 1`
//! (plus `--directed` if it was a directed case) reproduces it
//! exactly. `--directed` switches to the directed stream: oriented
//! digraphs checked against the directed oracle (SCCs, directed
//! SumSweep, directed kernels). `FDIAM_FUZZ_ITERS` /
//! `FDIAM_FUZZ_SEED` override the defaults when flags are absent
//! (flags win). Exits 1 on any mismatch.

use fdiam_testkit::{run_fuzz, run_fuzz_directed};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: fuzz-differential [--iters N] [--seed S] [--directed]");
    std::process::exit(2);
}

fn parse_u64(value: Option<String>, flag: &str) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("fuzz-differential: {flag} expects an unsigned integer");
            usage()
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(s) if !s.is_empty() => match s.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("fuzz-differential: ignoring unparsable {name}={s:?}");
                default
            }
        },
        _ => default,
    }
}

fn main() -> ExitCode {
    let mut iters = env_u64("FDIAM_FUZZ_ITERS", 200);
    let mut seed = env_u64("FDIAM_FUZZ_SEED", 0xF_D1A);
    let mut directed = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = parse_u64(args.next(), "--iters"),
            "--seed" => seed = parse_u64(args.next(), "--seed"),
            "--directed" => directed = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fuzz-differential: unknown argument {other:?}");
                usage()
            }
        }
    }

    let mode = if directed { "directed " } else { "" };
    println!("fuzz-differential: {iters} {mode}case(s) starting at seed {seed}");
    let report = if directed {
        run_fuzz_directed(seed, iters as usize)
    } else {
        run_fuzz(seed, iters as usize)
    };
    if report.ok() {
        println!(
            "fuzz-differential: OK — {} {mode}case(s), zero mismatches across the code matrix",
            report.cases
        );
        return ExitCode::SUCCESS;
    }
    let repro_flag = if directed { " --directed" } else { "" };
    for f in &report.failures {
        eprintln!(
            "FAIL seed {} ({}): reproduce with `fuzz-differential{repro_flag} --seed {} --iters 1`",
            f.seed, f.description, f.seed
        );
        for m in &f.mismatches {
            eprintln!("  {m}");
        }
    }
    eprintln!(
        "fuzz-differential: {} of {} case(s) failed",
        report.failures.len(),
        report.cases
    );
    ExitCode::FAILURE
}
