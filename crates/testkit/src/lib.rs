//! # fdiam-testkit
//!
//! Correctness-verification toolkit for the F-Diam workspace — the
//! backstop every performance PR regresses against. The paper's whole
//! claim is *exactness* (§1: F-Diam returns the true diameter, not a
//! bound), so the kit centers on an independent reference oracle and
//! layers three verification strategies on top of it:
//!
//! * [`oracle`] — textbook BFS-from-every-vertex eccentricities and
//!   diameter (no shared code with the optimized kernels), plus
//!   double-sweep lower / BFS-tree upper bounds as cheap sandwich
//!   invariants. The directed side mirrors it: a [`DirectedOracle`]
//!   (forward/backward eccentricity families with `None` = ∞) backed
//!   by a reference Kosaraju SCC pass, independent of the Tarjan
//!   implementation under test.
//! * [`harness`] — the differential matrix: all five codes (F-Diam
//!   serial + parallel, iFUB, ExactSumSweep + bounding eccentricities,
//!   naive) × both BFS kernels × both direction-switch heuristics,
//!   with certificate checks (diametral pairs, central vertices,
//!   removal accounting, min-id farthest tie-breaks); plus the
//!   directed matrix — directed SumSweep (serial + bit-parallel) ×
//!   vertex orderings, directed kernels, and Tarjan-vs-Kosaraju.
//! * [`metamorphic`] — transforms with analytically predicted diameter
//!   effects (permutation, edge duplication, isolated vertices,
//!   disjoint unions, pendant paths, universal vertex); directed
//!   transforms predict through `None` = ∞ (arc reversal, universal
//!   source, symmetric closure, condensation idempotence).
//! * [`fuzz`] + [`strategies`] — seeded structured graph generation:
//!   plain `u64 → CsrGraph` / `u64 → DiGraph` fuzzers (shipped as the
//!   `fuzz-differential` binary CI runs nightly, `--directed` for the
//!   oriented stream) and proptest strategies over the same builders
//!   for shrinkable property tests.
//! * [`families`](mod@families) — miniature, oracle-sized analogues of the 17
//!   benchmark-suite generator families, plus seeded orientations of
//!   each ([`directed_family`]).
//!
//! This crate is a *dev-dependency* of the crates it verifies (cargo
//! permits the cycle: dev-dependencies don't participate in the
//! library dependency graph).

pub mod families;
pub mod fuzz;
pub mod harness;
pub mod metamorphic;
pub mod oracle;
pub mod strategies;

pub use families::{
    build_family, directed_families, directed_family, families, DIRECTED_BIDIR_PCTS, FAMILY_NAMES,
    NUM_FAMILIES,
};
pub use fuzz::{
    fuzz_case, fuzz_case_directed, run_fuzz, run_fuzz_directed, DirFuzzCase, FuzzCase, FuzzFailure,
    FuzzReport,
};
pub use harness::{
    assert_differential, assert_differential_directed, differential_check,
    differential_check_directed,
};
pub use metamorphic::{
    assert_metamorphic, assert_metamorphic_directed, directed_metamorphic_cases, metamorphic_cases,
    DirectedMetamorphicCase, MetamorphicCase,
};
pub use oracle::{
    bfs_tree_upper_bound, bound_violations, double_sweep_lower_bound, kosaraju_scc,
    reference_distances, reference_distances_directed, reference_farthest, DirectedOracle, Oracle,
};
