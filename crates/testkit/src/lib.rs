//! # fdiam-testkit
//!
//! Correctness-verification toolkit for the F-Diam workspace — the
//! backstop every performance PR regresses against. The paper's whole
//! claim is *exactness* (§1: F-Diam returns the true diameter, not a
//! bound), so the kit centers on an independent reference oracle and
//! layers three verification strategies on top of it:
//!
//! * [`oracle`] — textbook BFS-from-every-vertex eccentricities and
//!   diameter (no shared code with the optimized kernels), plus
//!   double-sweep lower / BFS-tree upper bounds as cheap sandwich
//!   invariants.
//! * [`harness`] — the differential matrix: all five codes (F-Diam
//!   serial + parallel, iFUB, ExactSumSweep + bounding eccentricities,
//!   naive) × both BFS kernels × both direction-switch heuristics,
//!   with certificate checks (diametral pairs, central vertices,
//!   removal accounting, min-id farthest tie-breaks).
//! * [`metamorphic`] — transforms with analytically predicted diameter
//!   effects (permutation, edge duplication, isolated vertices,
//!   disjoint unions, pendant paths, universal vertex).
//! * [`fuzz`] + [`strategies`] — seeded structured graph generation:
//!   a plain `u64 → CsrGraph` fuzzer (shipped as the
//!   `fuzz-differential` binary CI runs nightly) and proptest
//!   strategies over the same builders for shrinkable property tests.
//! * [`families`](mod@families) — miniature, oracle-sized analogues of the 17
//!   benchmark-suite generator families.
//!
//! This crate is a *dev-dependency* of the crates it verifies (cargo
//! permits the cycle: dev-dependencies don't participate in the
//! library dependency graph).

pub mod families;
pub mod fuzz;
pub mod harness;
pub mod metamorphic;
pub mod oracle;
pub mod strategies;

pub use families::{build_family, families, FAMILY_NAMES, NUM_FAMILIES};
pub use fuzz::{fuzz_case, run_fuzz, FuzzCase, FuzzFailure, FuzzReport};
pub use harness::{assert_differential, differential_check};
pub use metamorphic::{assert_metamorphic, metamorphic_cases, MetamorphicCase};
pub use oracle::{
    bfs_tree_upper_bound, bound_violations, double_sweep_lower_bound, reference_distances,
    reference_farthest, Oracle,
};
