//! Property-based testing of the directed stack. The SCC properties
//! pit the Tarjan implementation under test against the testkit's
//! reference Kosaraju on arbitrary oriented digraphs; the structural
//! properties pin the `DiGraph` transpose round-trip; the differential
//! property runs the whole directed code matrix. Failing cases shrink
//! in parameter space and persist in `proptest-regressions/`.

use fdiam_analytics::{condensation, StronglyConnectedComponents};
use fdiam_testkit::harness::differential_check_directed;
use fdiam_testkit::kosaraju_scc;
use fdiam_testkit::strategies::{arb_digraph, arb_dir_fuzz_graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tarjan and the reference Kosaraju normalize labels the same way
    /// (first occurrence in id order), so the vectors must be *equal*,
    /// which is strictly stronger than "same partition".
    #[test]
    fn tarjan_matches_kosaraju(g in arb_digraph()) {
        let scc = StronglyConnectedComponents::compute(&g);
        prop_assert_eq!(scc.labels(), kosaraju_scc(&g).as_slice());
        let max = scc.labels().iter().max().copied();
        prop_assert_eq!(
            scc.num_components(),
            max.map_or(0, |m| m as usize + 1)
        );
    }

    /// The condensation is a DAG: re-running SCC on it finds only
    /// singletons, and condensing again is the identity.
    #[test]
    fn condensation_is_a_dag(g in arb_digraph()) {
        let scc = StronglyConnectedComponents::compute(&g);
        let cond = condensation(&g, &scc);
        let scc2 = StronglyConnectedComponents::compute(&cond);
        prop_assert_eq!(scc2.num_components(), cond.num_vertices());
        prop_assert_eq!(condensation(&cond, &scc2), cond);
    }

    /// Transposing twice is the identity, and a single transpose
    /// swaps the out-/in-degree sequences arc for arc.
    #[test]
    fn transpose_round_trip(g in arb_digraph()) {
        let t = g.clone().transposed();
        prop_assert_eq!(g.num_arcs(), t.num_arcs());
        for v in g.vertices() {
            prop_assert_eq!(g.out_degree(v), t.in_degree(v));
            prop_assert_eq!(g.in_degree(v), t.out_degree(v));
        }
        prop_assert_eq!(t.transposed(), g);
    }
}

proptest! {
    // The full directed matrix (oracle + SumSweep × orderings ×
    // batching + kernels) is heavier per case — fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn directed_fuzzer_distribution_is_exact(g in arb_dir_fuzz_graph()) {
        let mismatches = differential_check_directed("proptest-dir-fuzz", &g);
        prop_assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
    }
}

/// Plain bounded directed fuzz smoke, mirroring the undirected one:
/// the seeded directed fuzzer runs under `cargo test` even where
/// proptest is unavailable; the full budget runs via
/// `fuzz-differential --directed` in CI.
#[test]
fn bounded_directed_fuzz_smoke() {
    let report = fdiam_testkit::run_fuzz_directed(0xD1, 30);
    assert_eq!(report.cases, 30);
    assert!(report.ok(), "failures: {:#?}", report.failures);
}
