//! Property-based differential testing over the structured strategies:
//! whatever graph the strategies produce, every code must agree with
//! the oracle. Failing cases shrink in parameter space and persist in
//! `proptest-regressions/` next to this file.

use fdiam_testkit::harness::differential_check;
use fdiam_testkit::strategies::{
    arb_degree_sequence_graph, arb_edge_soup, arb_family_graph, arb_graph,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn edge_soups_are_exact(g in arb_edge_soup()) {
        let mismatches = differential_check("proptest-edge-soup", &g);
        prop_assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
    }

    #[test]
    fn degree_sequence_graphs_are_exact(g in arb_degree_sequence_graph()) {
        let mismatches = differential_check("proptest-config-model", &g);
        prop_assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
    }

    #[test]
    fn family_instances_are_exact(g in arb_family_graph()) {
        let mismatches = differential_check("proptest-family", &g);
        prop_assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
    }

    #[test]
    fn fuzzer_distribution_is_exact(g in arb_graph()) {
        let mismatches = differential_check("proptest-fuzz", &g);
        prop_assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
    }
}

/// Plain (non-proptest) bounded fuzz smoke so the seeded fuzzer runs
/// under `cargo test` even where proptest is unavailable; the full
/// budget runs via the `fuzz-differential` binary in CI.
#[test]
fn bounded_fuzz_smoke() {
    let report = fdiam_testkit::run_fuzz(0xC1, 40);
    assert_eq!(report.cases, 40);
    assert!(report.ok(), "failures: {:#?}", report.failures);
}
