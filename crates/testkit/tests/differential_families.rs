//! The headline acceptance test: zero oracle mismatches across all
//! five codes × two kernels × two heuristics on every one of the 17
//! generator families (plus seed variation on a rotating subset, so
//! repeated CI runs don't always see the same instances).

use fdiam_testkit::{
    assert_differential, assert_differential_directed, build_family, directed_families,
    directed_family, families, FAMILY_NAMES, NUM_FAMILIES,
};

#[test]
fn all_17_families_pass_the_full_matrix() {
    for (name, g) in families(0xF_D1A) {
        assert_differential(name, &g);
    }
}

#[test]
fn family_seed_variation() {
    // Three extra instances per family at different seeds; families
    // are cheap enough that this is still a few seconds in debug.
    for (idx, name) in FAMILY_NAMES.iter().enumerate().take(NUM_FAMILIES) {
        for seed in 1..=3u64 {
            let g = build_family(idx, 0x5EED ^ (seed << 16) ^ idx as u64);
            assert_differential(&format!("{name}#{seed}"), &g);
        }
    }
}

#[test]
fn all_17_directed_families_pass_the_directed_matrix() {
    // The directed acceptance gate: directed SumSweep diameter and
    // radius bit-identical to the directed oracle across every family
    // orientation × {serial, bp64} × {none, degree, bfs} orderings —
    // including the non-strongly-connected instances the low
    // bidirectionality percentages produce.
    for (name, g) in directed_families(0xF_D1A) {
        assert_differential_directed(name, &g);
    }
}

#[test]
fn directed_family_seed_variation() {
    // Two extra orientations per family at different seeds; the pct
    // rotation is per-index, so seeds vary the instance and the arc
    // coin flips but keep the regime.
    for (idx, name) in FAMILY_NAMES.iter().enumerate().take(NUM_FAMILIES) {
        for seed in 1..=2u64 {
            let g = directed_family(idx, 0x5EED ^ (seed << 16) ^ idx as u64);
            assert_differential_directed(&format!("{name}#dir{seed}"), &g);
        }
    }
}

#[test]
fn metamorphic_suite_over_representative_families() {
    // Metamorphic closure over one instance each of a mesh, a
    // power-law graph, a disconnected Kronecker, and a road network.
    for idx in [0usize, 1, 10, 15] {
        let g = fdiam_testkit::build_family(idx, 0xF_D1A);
        fdiam_testkit::assert_metamorphic(FAMILY_NAMES[idx], &g, 0xF_D1A ^ idx as u64);
    }
}

#[test]
fn directed_metamorphic_suite_over_representative_families() {
    // One orientation each of a mesh (symmetric regime), a power-law
    // graph, a disconnected Kronecker, and a road network (near-pure
    // orientation regime).
    for idx in [0usize, 1, 10, 15] {
        let g = directed_family(idx, 0xF_D1A);
        fdiam_testkit::assert_metamorphic_directed(FAMILY_NAMES[idx], &g, 0xF_D1A ^ idx as u64);
    }
}
