//! The headline acceptance test: zero oracle mismatches across all
//! five codes × two kernels × two heuristics on every one of the 17
//! generator families (plus seed variation on a rotating subset, so
//! repeated CI runs don't always see the same instances).

use fdiam_testkit::{assert_differential, build_family, families, FAMILY_NAMES, NUM_FAMILIES};

#[test]
fn all_17_families_pass_the_full_matrix() {
    for (name, g) in families(0xF_D1A) {
        assert_differential(name, &g);
    }
}

#[test]
fn family_seed_variation() {
    // Three extra instances per family at different seeds; families
    // are cheap enough that this is still a few seconds in debug.
    for (idx, name) in FAMILY_NAMES.iter().enumerate().take(NUM_FAMILIES) {
        for seed in 1..=3u64 {
            let g = build_family(idx, 0x5EED ^ (seed << 16) ^ idx as u64);
            assert_differential(&format!("{name}#{seed}"), &g);
        }
    }
}

#[test]
fn metamorphic_suite_over_representative_families() {
    // Metamorphic closure over one instance each of a mesh, a
    // power-law graph, a disconnected Kronecker, and a road network.
    for idx in [0usize, 1, 10, 15] {
        let g = fdiam_testkit::build_family(idx, 0xF_D1A);
        fdiam_testkit::assert_metamorphic(FAMILY_NAMES[idx], &g, 0xF_D1A ^ idx as u64);
    }
}
