//! Property tests for the BFS substrate on arbitrary graphs: all
//! kernels must agree with each other and with first-principles
//! shortest-path properties.

use fdiam_bfs::distances::{bfs_distances_parallel, bfs_distances_serial, UNREACHABLE};
use fdiam_bfs::multisource::partial_bfs_serial;
use fdiam_bfs::{
    bfs_eccentricity_hybrid, bfs_eccentricity_serial, bfs_eccentricity_serial_hybrid, BfsConfig,
    VisitMarks,
};
use fdiam_graph::EdgeList;
use proptest::prelude::*;

fn arb_graph_and_source() -> impl Strategy<Value = (fdiam_graph::CsrGraph, u32)> {
    (1usize..50).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..100),
            0..n as u32,
        )
            .prop_map(move |(edges, src)| {
                (
                    EdgeList::from_undirected(n, &edges).to_undirected_csr(),
                    src,
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The four eccentricity kernels agree on arbitrary graphs.
    #[test]
    fn all_kernels_agree((g, src) in arb_graph_and_source()) {
        let n = g.num_vertices();
        let cfg = BfsConfig::default();
        let aggressive = BfsConfig { alpha: 0.0, serial_cutoff: 0, ..cfg };
        let mut m = VisitMarks::new(n);
        let a = bfs_eccentricity_serial(&g, src, &mut m);
        let b = bfs_eccentricity_hybrid(&g, src, &mut m, &cfg);
        let c = bfs_eccentricity_serial_hybrid(&g, src, &mut m, &cfg);
        let d = bfs_eccentricity_hybrid(&g, src, &mut m, &aggressive);
        prop_assert_eq!(a.eccentricity, b.eccentricity);
        prop_assert_eq!(a.eccentricity, c.eccentricity);
        prop_assert_eq!(a.eccentricity, d.eccentricity);
        prop_assert_eq!(a.visited, b.visited);
        prop_assert_eq!(a.visited, c.visited);
        prop_assert_eq!(a.visited, d.visited);
    }

    /// Distances satisfy the BFS defining property: d(src) = 0 and a
    /// vertex has distance k iff it has a neighbor at k−1 and none
    /// nearer.
    #[test]
    fn distances_are_shortest((g, src) in arb_graph_and_source()) {
        let mut dist = Vec::new();
        bfs_distances_serial(&g, src, &mut dist);
        prop_assert_eq!(dist[src as usize], 0);
        for v in g.vertices() {
            let d = dist[v as usize];
            if v == src { continue; }
            let neighbor_min = g
                .neighbors(v)
                .iter()
                .map(|&w| dist[w as usize])
                .min()
                .unwrap_or(UNREACHABLE);
            if d == UNREACHABLE {
                prop_assert_eq!(neighbor_min, UNREACHABLE);
            } else {
                prop_assert_eq!(d, neighbor_min.saturating_add(1));
            }
        }
    }

    /// Parallel distances equal serial distances.
    #[test]
    fn parallel_distances_agree((g, src) in arb_graph_and_source()) {
        let mut dist = Vec::new();
        let e1 = bfs_distances_serial(&g, src, &mut dist);
        let mut marks = VisitMarks::new(g.num_vertices());
        let (dist2, e2) = bfs_distances_parallel(&g, src, &mut marks);
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(dist, dist2);
    }

    /// A partial BFS capped at `k` levels visits exactly the vertices
    /// with 1 ≤ d(src, ·) ≤ k.
    #[test]
    fn partial_bfs_visits_ball((g, src) in arb_graph_and_source(), k in 0u32..8) {
        let mut dist = Vec::new();
        bfs_distances_serial(&g, src, &mut dist);
        let mut marks = VisitMarks::new(g.num_vertices());
        let mut seen = Vec::new();
        partial_bfs_serial(&g, &[src], &mut marks, k, |lvl, v| seen.push((lvl, v)));
        let mut expected: Vec<(u32, u32)> = g
            .vertices()
            .filter(|&v| dist[v as usize] != UNREACHABLE && (1..=k).contains(&dist[v as usize]))
            .map(|v| (dist[v as usize], v))
            .collect();
        expected.sort_unstable();
        seen.sort_unstable();
        prop_assert_eq!(seen, expected);
    }
}
