//! Property tests for the BFS substrate on arbitrary graphs: all
//! kernels must agree with each other and with first-principles
//! shortest-path properties.

use fdiam_bfs::bitmap::FrontierBitmap;
use fdiam_bfs::distances::{bfs_distances_parallel, bfs_distances_serial, UNREACHABLE};
use fdiam_bfs::frontier::sweep_bottom_up_serial;
use fdiam_bfs::multisource::partial_bfs_serial;
use fdiam_bfs::{
    bfs_eccentricity_hybrid, bfs_eccentricity_serial, bfs_eccentricity_serial_hybrid, BfsConfig,
    BfsScratch, SwitchHeuristic, VisitMarks,
};
use fdiam_graph::{CsrGraph, EdgeList, VertexId};
use proptest::prelude::*;

fn arb_graph_and_source() -> impl Strategy<Value = (fdiam_graph::CsrGraph, u32)> {
    (1usize..50).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..100),
            0..n as u32,
        )
            .prop_map(move |(edges, src)| {
                (
                    EdgeList::from_undirected(n, &edges).to_undirected_csr(),
                    src,
                )
            })
    })
}

/// Full BFS from `src` driven *entirely* by bitmap bottom-up sweeps,
/// recording per-vertex distances and parents. The parent of a claimed
/// vertex replicates the sweep's early-exit choice: its first neighbor
/// (in CSR order) that was visited before this level.
fn bitmap_bottom_up_tree(g: &CsrGraph, src: u32) -> (Vec<u32>, Vec<Option<VertexId>>) {
    let n = g.num_vertices();
    let mut marks = VisitMarks::new(n);
    let epoch = marks.next_epoch();
    marks.mark(src, epoch);
    let mut visited = FrontierBitmap::new(n);
    visited.fill_from_marks(&marks, epoch);
    let next = FrontierBitmap::new(n);
    let mut dist = vec![UNREACHABLE; n];
    dist[src as usize] = 0;
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut sparse = Vec::new();
    let mut level = 0u32;
    loop {
        let s = sweep_bottom_up_serial(g, &marks, epoch, &visited, &next);
        if s.count == 0 {
            return (dist, parent);
        }
        level += 1;
        sparse.clear();
        next.append_sparse_into(&mut sparse);
        for &v in &sparse {
            dist[v as usize] = level;
            parent[v as usize] = g.neighbors(v).iter().copied().find(|&w| visited.test(w));
        }
        visited.merge(&next);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The eccentricity kernels agree on arbitrary graphs, across the
    /// adaptive heuristic, the paper's fixed rule, and a forced
    /// bottom-up configuration.
    #[test]
    fn all_kernels_agree((g, src) in arb_graph_and_source()) {
        let n = g.num_vertices();
        let cfg = BfsConfig::default();
        let fidelity = BfsConfig::paper_fidelity();
        let aggressive = BfsConfig {
            heuristic: SwitchHeuristic::FixedFraction { threshold: 0.0 },
            serial_cutoff: 0,
            ..cfg
        };
        let mut m = VisitMarks::new(n);
        let mut s = BfsScratch::new(n);
        let a = bfs_eccentricity_serial(&g, src, &mut m);
        let b = bfs_eccentricity_hybrid(&g, src, &mut s, &cfg);
        let c = bfs_eccentricity_serial_hybrid(&g, src, &mut s, &cfg);
        let d = bfs_eccentricity_hybrid(&g, src, &mut s, &aggressive);
        let e = bfs_eccentricity_hybrid(&g, src, &mut s, &fidelity);
        prop_assert_eq!(a.eccentricity, b.eccentricity);
        prop_assert_eq!(a.eccentricity, c.eccentricity);
        prop_assert_eq!(a.eccentricity, d.eccentricity);
        prop_assert_eq!(a.eccentricity, e.eccentricity);
        prop_assert_eq!(a.visited, b.visited);
        prop_assert_eq!(a.visited, c.visited);
        prop_assert_eq!(a.visited, d.visited);
        prop_assert_eq!(a.visited, e.visited);
        let min_far = *a.last_frontier.iter().min().unwrap();
        prop_assert_eq!(b.farthest, min_far);
        prop_assert_eq!(c.farthest, min_far);
        prop_assert_eq!(d.farthest, min_far);
    }

    /// A pure bitmap bottom-up BFS produces serial BFS distances and a
    /// valid shortest-path tree: every reached non-source vertex has a
    /// parent that is a neighbor at distance exactly one less.
    #[test]
    fn bitmap_bottom_up_matches_serial_distances_and_parents(
        (g, src) in arb_graph_and_source()
    ) {
        let mut expect = Vec::new();
        bfs_distances_serial(&g, src, &mut expect);
        let (dist, parent) = bitmap_bottom_up_tree(&g, src);
        prop_assert_eq!(&dist, &expect);
        for v in g.vertices() {
            if v == src || dist[v as usize] == UNREACHABLE {
                prop_assert_eq!(parent[v as usize], None);
                continue;
            }
            let p = parent[v as usize];
            prop_assert!(p.is_some(), "reached vertex {} has no parent", v);
            let p = p.unwrap();
            prop_assert!(
                g.neighbors(v).contains(&p),
                "parent {} is not a neighbor of {}", p, v
            );
            prop_assert_eq!(dist[p as usize] + 1, dist[v as usize]);
        }
    }

    /// Distances satisfy the BFS defining property: d(src) = 0 and a
    /// vertex has distance k iff it has a neighbor at k−1 and none
    /// nearer.
    #[test]
    fn distances_are_shortest((g, src) in arb_graph_and_source()) {
        let mut dist = Vec::new();
        bfs_distances_serial(&g, src, &mut dist);
        prop_assert_eq!(dist[src as usize], 0);
        for v in g.vertices() {
            let d = dist[v as usize];
            if v == src { continue; }
            let neighbor_min = g
                .neighbors(v)
                .iter()
                .map(|&w| dist[w as usize])
                .min()
                .unwrap_or(UNREACHABLE);
            if d == UNREACHABLE {
                prop_assert_eq!(neighbor_min, UNREACHABLE);
            } else {
                prop_assert_eq!(d, neighbor_min.saturating_add(1));
            }
        }
    }

    /// Parallel distances equal serial distances.
    #[test]
    fn parallel_distances_agree((g, src) in arb_graph_and_source()) {
        let mut dist = Vec::new();
        let e1 = bfs_distances_serial(&g, src, &mut dist);
        let mut marks = VisitMarks::new(g.num_vertices());
        let (dist2, e2) = bfs_distances_parallel(&g, src, &mut marks);
        prop_assert_eq!(e1, e2);
        prop_assert_eq!(dist, dist2);
    }

    /// A partial BFS capped at `k` levels visits exactly the vertices
    /// with 1 ≤ d(src, ·) ≤ k.
    #[test]
    fn partial_bfs_visits_ball((g, src) in arb_graph_and_source(), k in 0u32..8) {
        let mut dist = Vec::new();
        bfs_distances_serial(&g, src, &mut dist);
        let mut marks = VisitMarks::new(g.num_vertices());
        let mut seen = Vec::new();
        partial_bfs_serial(&g, &[src], &mut marks, k, |lvl, v| seen.push((lvl, v)));
        let mut expected: Vec<(u32, u32)> = g
            .vertices()
            .filter(|&v| dist[v as usize] != UNREACHABLE && (1..=k).contains(&dist[v as usize]))
            .map(|v| (dist[v as usize], v))
            .collect();
        expected.sort_unstable();
        seen.sort_unstable();
        prop_assert_eq!(seen, expected);
    }
}

/// The α/β adaptive heuristic and the paper's fixed 10 % rule take
/// different direction-switch decisions but must agree on the final
/// distances — checked per source, on every generator family in the
/// suite, for both the parallel and the serial kernel.
#[test]
fn adaptive_and_fixed_rule_agree_on_all_generator_families() {
    use fdiam_graph::generators::*;
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("path", path(40)),
        ("cycle", cycle(33)),
        ("star", star(60)),
        ("complete", complete(12)),
        ("balanced_tree", balanced_tree(3, 4)),
        ("caterpillar", caterpillar(8, 2)),
        ("lollipop", lollipop(6, 8)),
        ("barbell", barbell(5, 3)),
        ("grid2d", grid2d(7, 9)),
        ("grid2d_torus", grid2d_torus(6, 6)),
        ("erdos_renyi", erdos_renyi_gnm(120, 200, 3)),
        ("barabasi_albert", barabasi_albert(150, 3, 5)),
        ("watts_strogatz", watts_strogatz(100, 4, 0.1, 7)),
        ("road_like", road_like(120, 0.15, 2)),
        ("rmat", rmat(7, 4, RmatProbabilities::LONESTAR, 11)),
        ("kronecker", kronecker_graph500(7, 6, 13)),
        ("random_geometric", random_geometric(90, 0.2, 17)),
    ];
    let adaptive = BfsConfig::default();
    let fixed = BfsConfig::paper_fidelity();
    for (name, g) in &graphs {
        let n = g.num_vertices();
        let mut s1 = BfsScratch::new(n);
        let mut s2 = BfsScratch::new(n);
        for v in g.vertices() {
            let a = bfs_eccentricity_hybrid(g, v, &mut s1, &adaptive);
            let b = bfs_eccentricity_hybrid(g, v, &mut s2, &fixed);
            assert_eq!(a, b, "parallel kernels disagree on {name} from {v}");
            let a = bfs_eccentricity_serial_hybrid(g, v, &mut s1, &adaptive);
            let b = bfs_eccentricity_serial_hybrid(g, v, &mut s2, &fixed);
            assert_eq!(a, b, "serial kernels disagree on {name} from {v}");
        }
    }
}
