//! Asserts the scratch-arena contract behind the zero-allocation
//! eccentricity loop: once a [`BfsScratch`]'s buffers have grown to a
//! graph's high-water mark, further traversals perform **no** heap
//! allocation. Measured with a counting global allocator on the serial
//! kernel — the parallel kernel runs the identical frontier state
//! machine but rayon's task bookkeeping would show up in the counter.

use fdiam_bfs::multisource::partial_bfs_scratch;
use fdiam_bfs::{
    bfs_eccentricity_serial_hybrid, bfs_eccentricity_serial_hybrid_observed, bp64_distances,
    bp64_eccentricities, BfsConfig, BfsScratch, MAX_LANES,
};
use fdiam_graph::generators::{barabasi_albert, grid2d};
use fdiam_obs::noop;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn eccentricity_loop_allocates_nothing_in_steady_state() {
    // A high-diameter grid (long top-down tail) and a low-diameter
    // power-law graph (bottom-up sweeps kick in): the two frontier
    // regimes of §6.2.
    for g in [grid2d(25, 25), barabasi_albert(1500, 8, 3)] {
        let n = g.num_vertices();
        let cfg = BfsConfig::default();
        let mut scratch = BfsScratch::new(n);
        // Two warm-up passes from every vertex grow the sparse worklists
        // to the graph's high-water mark. Two because the cur/next roles
        // swap once per level: after a single pass a buffer's capacity
        // can sit in the opposite role from the one the measured pass
        // needs, costing one final growth.
        for _ in 0..2 {
            for v in g.vertices() {
                bfs_eccentricity_serial_hybrid(&g, v, &mut scratch, &cfg);
            }
        }
        let allocs = allocations(|| {
            for v in g.vertices() {
                bfs_eccentricity_serial_hybrid(&g, v, &mut scratch, &cfg);
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state eccentricity loop allocated {allocs} times on n={n}"
        );
    }
}

#[test]
fn noop_observed_path_with_accounting_off_allocates_nothing() {
    // The observer plumbing must cost nothing when nobody listens: a
    // disabled observer skips span minting and, with load accounting
    // off, the kernel takes the original uninstrumented expansion
    // paths. Same warm-up discipline as the plain-kernel test above.
    let g = barabasi_albert(1500, 8, 3);
    let cfg = BfsConfig::default();
    let mut scratch = BfsScratch::new(g.num_vertices());
    scratch.set_load_accounting(None);
    for _ in 0..2 {
        for v in g.vertices() {
            bfs_eccentricity_serial_hybrid_observed(&g, v, &mut scratch, &cfg, noop());
        }
    }
    let allocs = allocations(|| {
        for v in g.vertices() {
            bfs_eccentricity_serial_hybrid_observed(&g, v, &mut scratch, &cfg, noop());
        }
    });
    assert_eq!(
        allocs, 0,
        "noop-observed steady-state loop allocated {allocs} times"
    );
    assert!(scratch.load().is_none(), "accounting stayed off");
}

#[test]
fn bounds_snapshot_publishing_allocates_nothing() {
    // The driver publishes a `BoundsSnapshot` after *every* sweep,
    // unconditionally — so the publish path must be free when nobody
    // (or only a registry with a pre-registered run slot) listens.
    // Snapshot construction is `Copy`-only; the registry stores it in a
    // pre-allocated per-run slot behind a mutex.
    use fdiam_obs::{BoundsSnapshot, Event, Observer, RunId, RunRegistry};

    let run = RunId::fresh();
    let snapshot = BoundsSnapshot {
        run,
        phase: "main_loop",
        bfs_count: 17,
        lb: 12,
        ub: 24,
        vertices_remaining: 900,
        elapsed_nanos: 123_456,
    };

    // Unobserved: the noop observer drops the event.
    let allocs = allocations(|| {
        for i in 0..1000u64 {
            let mut s = snapshot;
            s.bfs_count = i;
            noop().event(&Event::BoundsUpdate { snapshot: s });
        }
    });
    assert_eq!(allocs, 0, "noop publish allocated {allocs} times");

    // Observed by a registry: the latest-snapshot swap reuses the
    // registered run's slot. (Registration itself allocates; the
    // per-sweep hot path must not.)
    let registry = RunRegistry::new();
    registry.register(run, "fdiam", 1000, 2500);
    registry.publish(snapshot); // warm-up: Mutex<Option<_>> goes Some
    let allocs = allocations(|| {
        for i in 0..1000u64 {
            let mut s = snapshot;
            s.bfs_count = i;
            s.lb += (i % 7) as u32;
            registry.event(&Event::BoundsUpdate { snapshot: s });
        }
    });
    assert_eq!(allocs, 0, "registry publish allocated {allocs} times");
    assert_eq!(
        registry
            .get(run)
            .and_then(|i| i.latest)
            .map(|s| s.bfs_count),
        Some(999)
    );
    registry.deregister(run);
}

#[test]
fn load_accounting_toggle_reuses_slots_at_same_width() {
    // Enabling accounting allocates the padded slots once; re-enabling
    // at the same worker count must zero them in place, and disabling
    // is free — so a server reusing one scratch across jobs pays the
    // allocation a single time.
    let mut scratch = BfsScratch::new(64);
    scratch.set_load_accounting(Some(4));
    let allocs = allocations(|| {
        scratch.set_load_accounting(Some(4));
        scratch.set_load_accounting(None);
    });
    assert_eq!(
        allocs, 0,
        "same-width re-enable or disable allocated {allocs} times"
    );
}

#[test]
fn bit_parallel_batches_allocate_nothing_in_steady_state() {
    // The 64-lane kernel lives on the same arena: the lane word arrays
    // grow on the first traversal, the frontier worklists reach their
    // high-water mark under the same two-pass warm-up discipline as the
    // serial kernel, and the caller-owned distance buffer grows once.
    // After that, full-width batches over every source are free.
    for g in [grid2d(25, 25), barabasi_albert(1500, 8, 3)] {
        let n = g.num_vertices();
        let sources: Vec<u32> = g.vertices().collect();
        let mut scratch = BfsScratch::new(n);
        let mut dist = Vec::new();
        for _ in 0..2 {
            for batch in sources.chunks(MAX_LANES) {
                bp64_eccentricities(&g, batch, &mut scratch);
                bp64_distances(&g, batch, &mut scratch, &mut dist);
            }
        }
        let allocs = allocations(|| {
            for batch in sources.chunks(MAX_LANES) {
                bp64_eccentricities(&g, batch, &mut scratch);
                bp64_distances(&g, batch, &mut scratch, &mut dist);
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state bit-parallel loop allocated {allocs} times on n={n}"
        );
    }
}

#[test]
fn partial_bfs_on_scratch_allocates_nothing_in_steady_state() {
    let g = grid2d(20, 20);
    let mut scratch = BfsScratch::new(g.num_vertices());
    let seeds = [0u32, 399];
    partial_bfs_scratch(&g, &seeds, &mut scratch, 40, |_, _| {});
    let allocs = allocations(|| {
        for cap in [1, 5, 40] {
            partial_bfs_scratch(&g, &seeds, &mut scratch, cap, |_, _| {});
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state partial BFS allocated {allocs} times"
    );
}
