//! Event-volume guard: an always-on [`FlightRecorder`] must not
//! inflate what the BFS kernels emit.
//!
//! The kernels gate per-level detail on `Observer::wants_bfs_detail`,
//! and the recorder answers `false` — it never *requests* detail, it
//! only samples (1-in-N traversals) whatever detail another sink
//! already caused. These tests pin both halves of that contract at the
//! kernel boundary, because fdiam-serve tees the recorder into every
//! worker and a regression here would tax every request.

use fdiam_bfs::{bfs_eccentricity_hybrid_observed, BfsConfig, BfsScratch};
use fdiam_graph::generators::grid2d;
use fdiam_obs::json::{parse, JsonValue};
use fdiam_obs::{Event, FlightConfig, FlightRecorder, Observer, Tee};

/// A stand-in for `--trace`/`--progress`: a sink that wants detail.
struct WantsDetail;

impl Observer for WantsDetail {
    fn event(&self, _e: &Event<'_>) {}

    fn wants_bfs_detail(&self) -> bool {
        true
    }
}

fn count_types(dump: &str, ty: &str) -> usize {
    dump.lines()
        .filter(|l| {
            parse(l)
                .ok()
                .and_then(|v| v.get("type").and_then(JsonValue::as_str).map(String::from))
                .as_deref()
                == Some(ty)
        })
        .count()
}

#[test]
fn recorder_alone_never_requests_per_level_detail() {
    let g = grid2d(20, 20);
    let recorder = FlightRecorder::new(FlightConfig {
        shards: 1,
        capacity: 4096,
        detail_sample: 1, // would keep every level event, were any emitted
    });
    assert!(!recorder.wants_bfs_detail());

    let mut scratch = BfsScratch::new(g.num_vertices());
    for source in [0, 7, 199] {
        bfs_eccentricity_hybrid_observed(
            &g,
            source,
            &mut scratch,
            &BfsConfig::default(),
            &recorder,
        );
    }
    let dump = recorder.dump_jsonl();
    assert_eq!(count_types(&dump, "bfs_start"), 3, "{dump}");
    assert_eq!(count_types(&dump, "bfs_end"), 3, "{dump}");
    assert_eq!(
        count_types(&dump, "bfs_level"),
        0,
        "the kernel emitted detail nobody asked for:\n{dump}"
    );
}

#[test]
fn sampling_keeps_detail_for_one_in_n_traversals() {
    let g = grid2d(20, 20);
    let recorder = FlightRecorder::new(FlightConfig {
        shards: 1,
        capacity: 8192,
        detail_sample: 4,
    });
    // Another sink (a trace file, say) asks for detail; the tee ORs the
    // flags, so the kernel emits every level — and the recorder keeps
    // levels for only every 4th traversal.
    let wants = WantsDetail;
    let tee = Tee(&wants, &recorder);
    assert!(tee.wants_bfs_detail());

    const TRAVERSALS: usize = 16;
    let mut scratch = BfsScratch::new(g.num_vertices());
    for source in 0..TRAVERSALS as u32 {
        bfs_eccentricity_hybrid_observed(&g, source, &mut scratch, &BfsConfig::default(), &tee);
    }
    let dump = recorder.dump_jsonl();
    // Lifecycle events are never sampled away.
    assert_eq!(count_types(&dump, "bfs_start"), TRAVERSALS, "{dump}");
    assert_eq!(count_types(&dump, "bfs_end"), TRAVERSALS, "{dump}");

    // Levels belong to exactly 1-in-4 traversals: count the distinct
    // spans that recorded any level.
    let mut spans_with_detail = std::collections::BTreeSet::new();
    for line in dump.lines() {
        let v = parse(line).unwrap();
        if v.get("type").and_then(JsonValue::as_str) == Some("bfs_level") {
            spans_with_detail.insert(v.get("span").and_then(JsonValue::as_u64).unwrap());
        }
    }
    assert_eq!(
        spans_with_detail.len(),
        TRAVERSALS / 4,
        "expected 1-in-4 sampled traversals:\n{dump}"
    );

    // And with detail_sample = 0 the recorder keeps no levels at all,
    // even though the tee still requests them for the other sink.
    let none = FlightRecorder::new(FlightConfig {
        shards: 1,
        capacity: 8192,
        detail_sample: 0,
    });
    let tee = Tee(&wants, &none);
    let mut scratch = BfsScratch::new(g.num_vertices());
    for source in 0..8 {
        bfs_eccentricity_hybrid_observed(&g, source, &mut scratch, &BfsConfig::default(), &tee);
    }
    let dump = none.dump_jsonl();
    assert_eq!(count_types(&dump, "bfs_start"), 8, "{dump}");
    assert_eq!(count_types(&dump, "bfs_level"), 0, "{dump}");
}
