//! Differential proof for the bit-parallel 64-source kernel: across
//! all 17 testkit generator families × all three vertex orderings
//! (none / degree / BFS), packing sources into lanes is invisible —
//! every per-source eccentricity, farthest vertex, visited count, and
//! full distance row equals both the testkit's textbook oracle and the
//! serial queue kernel. Ragged final batches (n % 64 ≠ 0) arise
//! naturally in every family; single-vertex and empty graphs are
//! exercised explicitly.

use fdiam_bfs::distances::{bfs_distances_serial, UNREACHABLE};
use fdiam_bfs::{bp64_distances, bp64_eccentricities, BfsScratch, MAX_LANES};
use fdiam_graph::{CsrGraph, VertexId, VertexOrder};
use fdiam_testkit::{build_family, reference_distances, Oracle, FAMILY_NAMES, NUM_FAMILIES};

const SEED: u64 = 0xD1A_2026;

/// Batches every vertex of `g` through the bit-parallel kernel and
/// checks each lane against the oracle and the serial kernel.
fn check_graph(g: &CsrGraph, ctx: &str) {
    let n = g.num_vertices();
    let oracle = Oracle::compute(g);
    let sources: Vec<VertexId> = g.vertices().collect();
    let mut scratch = BfsScratch::new(n);
    let mut dist = Vec::new();
    let mut serial = Vec::new();
    let mut saw_ragged = false;
    for batch in sources.chunks(MAX_LANES) {
        saw_ragged |= batch.len() < MAX_LANES;
        let s = bp64_distances(g, batch, &mut scratch, &mut dist);
        assert_eq!(s.lanes, batch.len(), "{ctx}");
        for (k, &src) in batch.iter().enumerate() {
            // vs the textbook oracle (independent implementation)
            assert_eq!(
                s.ecc[k], oracle.eccentricities[src as usize],
                "{ctx}: ecc of {src} disagrees with oracle"
            );
            let (ref_dist, _) = reference_distances(g, src);
            let row = &dist[k * n..(k + 1) * n];
            assert_eq!(row, &ref_dist[..], "{ctx}: dist row of {src} vs oracle");
            // vs the repo's serial queue kernel (shared conventions)
            let e = bfs_distances_serial(g, src, &mut serial);
            assert_eq!(s.ecc[k], e, "{ctx}: ecc of {src} vs serial");
            assert_eq!(row, &serial[..], "{ctx}: dist row of {src} vs serial");
            let visited = serial.iter().filter(|&&d| d != UNREACHABLE).count();
            assert_eq!(s.visited[k] as usize, visited, "{ctx}: visited of {src}");
            let farthest = serial
                .iter()
                .position(|&d| d == e)
                .expect("source is at distance 0") as VertexId;
            assert_eq!(
                s.farthest[k], farthest,
                "{ctx}: farthest of {src} must be min-id at max distance"
            );
        }
        // The ecc-only entry point shares the inner loop; spot-check it
        // agrees so both public variants are covered per batch.
        let e = bp64_eccentricities(g, batch, &mut scratch);
        assert_eq!(e.ecc[..e.lanes], s.ecc[..s.lanes], "{ctx}: variants");
        assert_eq!(e.farthest[..e.lanes], s.farthest[..s.lanes], "{ctx}");
    }
    assert!(
        n % MAX_LANES != 0 || !saw_ragged,
        "{ctx}: ragged bookkeeping"
    );
}

#[test]
fn all_families_match_oracle_and_serial_under_every_ordering() {
    let mut ragged_families = 0;
    for (idx, &name) in FAMILY_NAMES.iter().enumerate().take(NUM_FAMILIES) {
        let g = build_family(idx, SEED);
        if g.num_vertices() % MAX_LANES != 0 {
            ragged_families += 1;
        }
        check_graph(&g, &format!("{name}/none"));
        for order in [VertexOrder::Degree, VertexOrder::Bfs] {
            let r = order.apply(&g).expect("non-none order relabels");
            check_graph(&r.graph, &format!("{name}/{}", order.as_str()));
            // Relabeling moves eccentricities with the vertices: the
            // internal-id result read back through the inverse map is
            // the original graph's eccentricity vector.
            let oracle = Oracle::compute(&g);
            let relabeled = Oracle::compute(&r.graph);
            let back = r.to_original_indexing(&relabeled.eccentricities);
            assert_eq!(back, oracle.eccentricities, "{name}/{}", order.as_str());
        }
    }
    // The satellite demands a ragged final batch: the families provide
    // plenty (any n % 64 ≠ 0). Guard that this stays true.
    assert!(
        ragged_families >= 10,
        "expected most families ragged, got {ragged_families}"
    );
}

#[test]
fn single_vertex_and_empty_graphs() {
    let single = CsrGraph::empty(1);
    check_graph(&single, "single-vertex");
    for order in [VertexOrder::Degree, VertexOrder::Bfs] {
        let r = order.apply(&single).unwrap();
        check_graph(&r.graph, "single-vertex relabeled");
    }
    // The empty graph has no sources to batch — the loop body never
    // runs, which is the correct degenerate behaviour for callers
    // iterating `vertices().chunks(64)`.
    let empty = CsrGraph::empty(0);
    let batches = empty.vertices().count().div_ceil(MAX_LANES);
    assert_eq!(batches, 0);
    check_graph(&empty, "empty");
}
