//! `BfsSummary` must be a pure function of (graph, source, config) —
//! in particular the min-id farthest-vertex tie-break may not depend
//! on scheduling. Verified against the testkit's textbook reference
//! under explicit rayon pools of 1, 2, and 8 threads (the equivalent
//! of a `RAYON_NUM_THREADS` matrix, but in-process so one `cargo test`
//! covers all three), for both kernels × both switch heuristics.

use fdiam_bfs::{
    bfs_eccentricity_hybrid, bfs_eccentricity_serial_hybrid, BfsConfig, BfsScratch, BfsSummary,
};
use fdiam_graph::generators::{barabasi_albert, erdos_renyi_gnm, grid2d, kronecker_graph500, star};
use fdiam_graph::transform::with_isolated_vertices;
use fdiam_graph::CsrGraph;
use fdiam_testkit::harness::sample_sources;
use fdiam_testkit::oracle::{reference_distances, reference_farthest, UNREACHED};

const POOL_SIZES: [usize; 3] = [1, 2, 8];

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        // star: every leaf ties for farthest — the sharpest tie-break test
        ("star", star(64)),
        ("grid", grid2d(12, 13)),
        ("ba", barabasi_albert(300, 3, 7)),
        ("gnm", erdos_renyi_gnm(200, 380, 11)),
        // disconnected + isolated vertices
        ("kron", kronecker_graph500(7, 12, 3)),
        ("iso", with_isolated_vertices(&grid2d(6, 6), 4)),
    ]
}

/// Runs `f` inside pools of 1, 2, and 8 threads and asserts all three
/// results are identical; returns the common value.
fn across_pools<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) -> T {
    let mut results: Vec<(usize, T)> = Vec::new();
    for threads in POOL_SIZES {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build pool");
        results.push((threads, pool.install(&f)));
    }
    let (_, first) = results.remove(0);
    for (threads, r) in results {
        assert_eq!(
            r, first,
            "result under a {threads}-thread pool diverged from 1 thread"
        );
    }
    first
}

#[test]
fn farthest_tie_break_is_thread_count_invariant() {
    for (name, g) in graphs() {
        let n = g.num_vertices();
        for src in sample_sources(n) {
            let want_far = reference_farthest(&g, src);
            let (dist, want_ecc) = reference_distances(&g, src);
            let want_visited = dist.iter().filter(|&&d| d != UNREACHED).count();
            for (hname, cfg) in [
                ("adaptive", BfsConfig::default()),
                ("paper10pct", BfsConfig::paper_fidelity()),
            ] {
                let summary: BfsSummary = across_pools(|| {
                    let mut scratch = BfsScratch::new(n);
                    bfs_eccentricity_hybrid(&g, src, &mut scratch, &cfg)
                });
                assert_eq!(
                    (summary.eccentricity, summary.visited, summary.farthest),
                    (want_ecc, want_visited, want_far),
                    "{name}/{hname} parallel kernel from {src}"
                );

                // The serial hybrid kernel must agree bit-for-bit with
                // the parallel one regardless of pool size.
                let mut scratch = BfsScratch::new(n);
                let serial = bfs_eccentricity_serial_hybrid(&g, src, &mut scratch, &cfg);
                assert_eq!(
                    serial, summary,
                    "{name}/{hname} serial vs parallel kernel from {src}"
                );
            }
        }
    }
}

#[test]
fn repeated_runs_in_one_pool_are_stable() {
    // Scheduling nondeterminism shows up across repeats too, not just
    // across pool sizes; hammer one mid-sized pool.
    let g = barabasi_albert(400, 4, 5);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("build pool");
    let cfg = BfsConfig::default();
    pool.install(|| {
        let mut scratch = BfsScratch::new(g.num_vertices());
        let first = bfs_eccentricity_hybrid(&g, 0, &mut scratch, &cfg);
        for _ in 0..20 {
            let again = bfs_eccentricity_hybrid(&g, 0, &mut scratch, &cfg);
            assert_eq!(again, first);
        }
    });
}
