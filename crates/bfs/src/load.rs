//! Per-rayon-worker work accounting for the parallel BFS kernels.
//!
//! The paper's §4.6 parallel-BFS discussion is fundamentally about how
//! evenly edge-scan work spreads across threads. [`WorkerLoad`] gives
//! that a production-observable shape: every accounted parallel
//! expansion records the edges it scanned and the wall-clock time it
//! was busy into the slot of the rayon worker that ran it. At the end
//! of a run the driver folds the slots into a single load-imbalance
//! figure (`max/mean` busy time) emitted as an
//! [`fdiam_obs::Event::WorkerLoad`] event.
//!
//! Accounting is strictly opt-in: kernels receive `Option<&WorkerLoad>`
//! and the `None` path (every unobserved run) performs no timing calls,
//! no atomics, and no allocation — the noop-observer hot path stays
//! zero-cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One worker's accumulators, cache-line padded so workers hammering
/// their own slot don't false-share.
#[repr(align(128))]
#[derive(Default)]
struct Slot {
    edges: AtomicU64,
    busy_nanos: AtomicU64,
}

/// Per-worker edge-scan and busy-time accounting (one slot per rayon
/// worker, indexed by [`rayon::current_thread_index`]).
pub struct WorkerLoad {
    slots: Box<[Slot]>,
}

/// Aggregate view of a [`WorkerLoad`], in the shape of the
/// `worker_load` trace event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadSummary {
    pub workers: usize,
    pub total_edges: u64,
    pub max_busy_nanos: u64,
    pub mean_busy_nanos: u64,
    /// `max/mean` busy time across all slots; 0.0 when nothing was
    /// accounted (e.g. the run never took a parallel expansion path).
    pub imbalance: f64,
}

impl WorkerLoad {
    /// Creates accounting slots for `workers` rayon workers (clamped to
    /// at least one).
    pub fn new(workers: usize) -> Self {
        Self {
            slots: (0..workers.max(1)).map(|_| Slot::default()).collect(),
        }
    }

    /// Sized for the current rayon pool.
    pub fn for_current_pool() -> Self {
        Self::new(rayon::current_num_threads())
    }

    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Credits `edges` scanned and the time since `started` to the
    /// calling rayon worker's slot. Calls from outside a rayon pool
    /// (or from a pool wider than `workers`) fold into a valid slot
    /// rather than panicking.
    #[inline]
    pub fn record(&self, edges: u64, started: Instant) {
        let idx = rayon::current_thread_index().unwrap_or(0) % self.slots.len();
        let slot = &self.slots[idx];
        slot.edges.fetch_add(edges, Ordering::Relaxed);
        slot.busy_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Zeroes every slot (serve workers reuse scratch across requests).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.edges.store(0, Ordering::Relaxed);
            s.busy_nanos.store(0, Ordering::Relaxed);
        }
    }

    /// Per-slot `(edges, busy_nanos)` values.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.slots
            .iter()
            .map(|s| {
                (
                    s.edges.load(Ordering::Relaxed),
                    s.busy_nanos.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Folds the slots into the run-level load summary. The mean is
    /// taken over *all* slots (an idle worker is imbalance, not a
    /// rounding detail), so a pool where one of eight workers did all
    /// the work reports an imbalance of 8.
    pub fn summary(&self) -> LoadSummary {
        let snap = self.snapshot();
        let workers = snap.len();
        let total_edges: u64 = snap.iter().map(|&(e, _)| e).sum();
        let total_busy: u64 = snap.iter().map(|&(_, b)| b).sum();
        let max_busy = snap.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let mean_busy = total_busy / workers as u64;
        let imbalance = if total_busy == 0 {
            0.0
        } else {
            max_busy as f64 * workers as f64 / total_busy as f64
        };
        LoadSummary {
            workers,
            total_edges,
            max_busy_nanos: max_busy,
            mean_busy_nanos: mean_busy,
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_load_reports_zero_imbalance() {
        let load = WorkerLoad::new(4);
        let s = load.summary();
        assert_eq!(s.workers, 4);
        assert_eq!(s.total_edges, 0);
        assert_eq!(s.max_busy_nanos, 0);
        assert_eq!(s.imbalance, 0.0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let load = WorkerLoad::new(0);
        assert_eq!(load.workers(), 1);
        load.record(10, Instant::now());
        assert!(load.summary().total_edges == 10);
    }

    #[test]
    fn record_accumulates_and_reset_clears() {
        let load = WorkerLoad::new(1);
        let t = Instant::now();
        load.record(5, t);
        load.record(7, t);
        let s = load.summary();
        assert_eq!(s.total_edges, 12);
        assert!(s.imbalance >= 1.0 || s.max_busy_nanos == 0);
        load.reset();
        assert_eq!(load.summary().total_edges, 0);
    }

    #[test]
    fn single_busy_slot_out_of_many_is_full_imbalance() {
        let load = WorkerLoad::new(4);
        // Bypass rayon indexing: hammer slot 0 directly via record from
        // this (non-pool) thread, which maps to slot 0.
        let t = Instant::now() - std::time::Duration::from_millis(1);
        load.record(100, t);
        let s = load.summary();
        assert!(s.max_busy_nanos > 0);
        // One slot holds all busy time → max/mean == workers.
        assert!(
            (s.imbalance - 4.0).abs() < 1e-9,
            "imbalance = {}",
            s.imbalance
        );
    }
}
