//! Reusable per-thread BFS scratch arena.
//!
//! F-Diam performs thousands of traversals over one graph; allocating
//! frontier storage per BFS would dominate the small-frontier levels
//! that make up most of a high-diameter traversal. [`BfsScratch`] owns
//! every piece of transient state a traversal needs — the epoch-based
//! visit marks, the double-buffered sparse worklists, and the dense
//! bitmaps of the bottom-up machinery — so steady-state eccentricity
//! loops perform **zero heap allocation** per BFS: buffers grow to the
//! graph's high-water mark once and are reused thereafter (asserted by
//! the `scratch_alloc` integration test).

use crate::bitmap::FrontierBitmap;
use crate::load::WorkerLoad;
use crate::visited::VisitMarks;
use fdiam_graph::VertexId;

/// Owned scratch state for repeated BFS traversals over one graph.
pub struct BfsScratch {
    marks: VisitMarks,
    /// Sparse worklists (`wl1`/`wl2` in the paper's Algorithm 2),
    /// swapped each level; after a traversal `cur` holds the last
    /// non-empty frontier.
    cur: Vec<VertexId>,
    next: Vec<VertexId>,
    /// Dense visited set, rebuilt from `marks` at each
    /// top-down→bottom-up switch and merged forward per level.
    visited_bm: FrontierBitmap,
    /// Dense frontier double buffer for bottom-up levels.
    cur_bm: FrontierBitmap,
    next_bm: FrontierBitmap,
    /// Per-vertex u64 lane words for the bit-parallel multi-source
    /// kernel (`crate::bitparallel`): one visited word and a
    /// current/next frontier double buffer per vertex. Grown lazily on
    /// the first bit-parallel traversal so single-source workloads pay
    /// nothing; between traversals `lane_cur`/`lane_next` are all-zero
    /// (the kernel's invariant) and `lane_visited` is stale.
    lane_visited: Vec<u64>,
    lane_cur: Vec<u64>,
    lane_next: Vec<u64>,
    /// Per-rayon-worker accounting, allocated only when an enabled
    /// observer asks for it ([`BfsScratch::set_load_accounting`]); the
    /// noop path keeps this `None` and stays allocation-free.
    load: Option<WorkerLoad>,
}

/// Disjoint `&mut` views of every [`BfsScratch`] component, so kernels
/// can hold the marks and several buffers simultaneously.
pub struct ScratchParts<'a> {
    pub marks: &'a mut VisitMarks,
    pub cur: &'a mut Vec<VertexId>,
    pub next: &'a mut Vec<VertexId>,
    pub visited_bm: &'a mut FrontierBitmap,
    pub cur_bm: &'a mut FrontierBitmap,
    pub next_bm: &'a mut FrontierBitmap,
    /// Bit-parallel lane words (see [`BfsScratch`] field docs).
    pub lane_visited: &'a mut Vec<u64>,
    pub lane_cur: &'a mut Vec<u64>,
    pub lane_next: &'a mut Vec<u64>,
    /// Shared (atomic) accounting view — `None` when disabled.
    pub load: Option<&'a WorkerLoad>,
}

impl BfsScratch {
    /// Scratch for an `n`-vertex graph. All dense structures are sized
    /// up front; the sparse worklists grow on first use and keep their
    /// capacity.
    pub fn new(n: usize) -> Self {
        Self {
            marks: VisitMarks::new(n),
            cur: Vec::new(),
            next: Vec::new(),
            visited_bm: FrontierBitmap::new(n),
            cur_bm: FrontierBitmap::new(n),
            next_bm: FrontierBitmap::new(n),
            lane_visited: Vec::new(),
            lane_cur: Vec::new(),
            lane_next: Vec::new(),
            load: None,
        }
    }

    /// Number of vertices this scratch covers.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True if sized for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Shared view of the visit marks (epoch queries).
    pub fn marks(&self) -> &VisitMarks {
        &self.marks
    }

    /// Exclusive view of the visit marks, for code that drives its own
    /// traversal (Winnow/Eliminate partial BFS, chain processing).
    /// Epochs keep the marks consistent across such mixed use.
    pub fn marks_mut(&mut self) -> &mut VisitMarks {
        &mut self.marks
    }

    /// The last non-empty frontier of the most recent traversal run on
    /// this scratch: every vertex at distance `eccentricity` from that
    /// traversal's source, in ascending id order when the final level
    /// ran bottom-up (discovery order otherwise). Valid until the next
    /// traversal reuses the buffers.
    pub fn last_frontier(&self) -> &[VertexId] {
        &self.cur
    }

    /// Resizes the arena for an `n`-vertex graph if it isn't already
    /// sized for one. A long-lived worker (e.g. a server thread pool)
    /// calls this once per job: when consecutive jobs hit the same
    /// graph — the common case behind a cache — the arena is reused
    /// allocation-free; a size change rebuilds it wholesale, which is
    /// no worse than the fresh allocation it replaces.
    pub fn ensure(&mut self, n: usize) {
        if self.len() != n {
            let load = self.load.take();
            *self = Self::new(n);
            self.load = load;
        }
    }

    /// Turns per-worker load accounting on (sized for `workers` rayon
    /// workers, zeroed) or off. The driver enables this only when an
    /// enabled observer is attached; runs with accounting off take the
    /// original uninstrumented expansion paths.
    pub fn set_load_accounting(&mut self, workers: Option<usize>) {
        match workers {
            Some(w) => match &self.load {
                Some(load) if load.workers() == w.max(1) => load.reset(),
                _ => self.load = Some(WorkerLoad::new(w)),
            },
            None => self.load = None,
        }
    }

    /// The accounting slots, when enabled.
    pub fn load(&self) -> Option<&WorkerLoad> {
        self.load.as_ref()
    }

    /// Splits the scratch into disjoint mutable parts for a kernel.
    pub fn parts(&mut self) -> ScratchParts<'_> {
        ScratchParts {
            marks: &mut self.marks,
            cur: &mut self.cur,
            next: &mut self.next,
            visited_bm: &mut self.visited_bm,
            cur_bm: &mut self.cur_bm,
            next_bm: &mut self.next_bm,
            lane_visited: &mut self.lane_visited,
            lane_cur: &mut self.lane_cur,
            lane_next: &mut self.lane_next,
            load: self.load.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_to_graph() {
        let s = BfsScratch::new(100);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert!(BfsScratch::new(0).is_empty());
    }

    #[test]
    fn marks_epochs_survive_part_splits() {
        let mut s = BfsScratch::new(8);
        let e1 = s.marks_mut().next_epoch();
        s.marks().mark(3, e1);
        {
            let p = s.parts();
            let e2 = p.marks.next_epoch();
            assert!(!p.marks.is_visited(3, e2));
        }
        assert!(s.marks().is_visited(3, e1));
    }
}
