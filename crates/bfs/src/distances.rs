//! Full single-source distance computation.
//!
//! The baselines need more than the eccentricity: iFUB partitions
//! vertices into fringe sets by their distance from the start vertex,
//! and Graph-Diameter updates per-vertex eccentricity upper bounds with
//! `ecc(x) ≤ d(x, y) + ecc(y)` — both require the whole distance array
//! of a BFS. `u32::MAX` denotes "unreachable".

use crate::visited::VisitMarks;
use fdiam_graph::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Distance from a BFS, `u32::MAX` for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Serial BFS filling `dist` (resized and reset to [`UNREACHABLE`]).
/// Returns the eccentricity of `source` within its component.
pub fn bfs_distances_serial(g: &CsrGraph, source: VertexId, dist: &mut Vec<u32>) -> u32 {
    dist.clear();
    dist.resize(g.num_vertices(), UNREACHABLE);
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0u32;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        level += 1;
        next.clear();
        for &v in &frontier {
            for &n in g.neighbors(v) {
                let d = &mut dist[n as usize];
                if *d == UNREACHABLE {
                    *d = level;
                    next.push(n);
                }
            }
        }
        if next.is_empty() {
            return level - 1;
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    0
}

/// Parallel BFS returning a fresh distance vector and the eccentricity.
/// Uses atomic claims on a shared [`VisitMarks`]; distances are written
/// only by claim winners, so plain atomic stores suffice.
pub fn bfs_distances_parallel(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
) -> (Vec<u32>, u32) {
    let n = g.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHABLE)).collect();
    let epoch = marks.next_epoch();
    marks.mark(source, epoch);
    dist[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut level = 0u32;
    loop {
        level += 1;
        let next: Vec<VertexId> = frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                for &nb in g.neighbors(v) {
                    if marks.try_claim(nb, epoch) {
                        dist[nb as usize].store(level, Ordering::Relaxed);
                        acc.push(nb);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        if next.is_empty() {
            let dist_out: Vec<u32> = dist.into_iter().map(AtomicU32::into_inner).collect();
            return (dist_out, level - 1);
        }
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{cycle, grid2d, path, star};
    use fdiam_graph::transform::disjoint_union;

    #[test]
    fn path_distances() {
        let g = path(5);
        let mut dist = Vec::new();
        let ecc = bfs_distances_serial(&g, 0, &mut dist);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(ecc, 4);
    }

    #[test]
    fn unreachable_marked() {
        let g = disjoint_union(&path(3), &path(2));
        let mut dist = Vec::new();
        let ecc = bfs_distances_serial(&g, 0, &mut dist);
        assert_eq!(dist, vec![0, 1, 2, UNREACHABLE, UNREACHABLE]);
        assert_eq!(ecc, 2);
    }

    #[test]
    fn isolated_source_distance() {
        let g = fdiam_graph::CsrGraph::empty(2);
        let mut dist = Vec::new();
        let ecc = bfs_distances_serial(&g, 0, &mut dist);
        assert_eq!(ecc, 0);
        assert_eq!(dist, vec![0, UNREACHABLE]);
    }

    #[test]
    fn parallel_matches_serial() {
        for g in [path(20), cycle(13), star(30), grid2d(6, 8)] {
            let mut marks = VisitMarks::new(g.num_vertices());
            for src in [0u32, (g.num_vertices() / 2) as u32] {
                let mut d1 = Vec::new();
                let e1 = bfs_distances_serial(&g, src, &mut d1);
                let (d2, e2) = bfs_distances_parallel(&g, src, &mut marks);
                assert_eq!(d1, d2);
                assert_eq!(e1, e2);
            }
        }
    }

    #[test]
    fn distances_respect_triangle_inequality() {
        let g = grid2d(5, 5);
        let mut dist = Vec::new();
        bfs_distances_serial(&g, 12, &mut dist);
        for (u, v) in g.arcs() {
            let (du, dv) = (dist[u as usize] as i64, dist[v as usize] as i64);
            assert!((du - dv).abs() <= 1, "adjacent distance gap > 1");
        }
    }
}
