//! Sequential eccentricity BFS — the kernel of "F-Diam (ser)" in the
//! paper's Tables 2–3.

use crate::frontier::expand_top_down_serial;
use crate::visited::VisitMarks;
use crate::BfsResult;
use fdiam_graph::{CsrGraph, VertexId};

/// Level-synchronous sequential BFS from `source`; returns the
/// eccentricity (within the source's component), the visit count, and
/// the last non-empty frontier.
pub fn bfs_eccentricity_serial(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
) -> BfsResult {
    let epoch = marks.next_epoch();
    marks.mark(source, epoch);
    let mut frontier = vec![source];
    let mut visited = 1usize;
    let mut level = 0u32;
    loop {
        let next = expand_top_down_serial(g, &frontier, marks, epoch);
        if next.is_empty() {
            return BfsResult {
                eccentricity: level,
                visited,
                last_frontier: frontier,
            };
        }
        visited += next.len();
        level += 1;
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{complete, cycle, grid2d, path, star};
    use fdiam_graph::transform::disjoint_union;
    use fdiam_graph::CsrGraph;

    fn ecc(g: &CsrGraph, v: VertexId) -> u32 {
        let mut marks = VisitMarks::new(g.num_vertices());
        bfs_eccentricity_serial(g, v, &mut marks).eccentricity
    }

    #[test]
    fn path_eccentricities() {
        let g = path(5);
        assert_eq!(ecc(&g, 0), 4);
        assert_eq!(ecc(&g, 2), 2);
        assert_eq!(ecc(&g, 4), 4);
    }

    #[test]
    fn cycle_eccentricities() {
        let g = cycle(8);
        for v in g.vertices() {
            assert_eq!(ecc(&g, v), 4);
        }
    }

    #[test]
    fn star_and_complete() {
        assert_eq!(ecc(&star(6), 0), 1);
        assert_eq!(ecc(&star(6), 3), 2);
        assert_eq!(ecc(&complete(5), 2), 1);
    }

    #[test]
    fn grid_corner_to_corner() {
        let g = grid2d(4, 6);
        assert_eq!(ecc(&g, 0), 3 + 5);
    }

    #[test]
    fn isolated_vertex_has_zero_ecc() {
        let g = CsrGraph::empty(3);
        assert_eq!(ecc(&g, 1), 0);
    }

    #[test]
    fn disconnected_visits_only_component() {
        let g = disjoint_union(&path(4), &path(3));
        let mut marks = VisitMarks::new(7);
        let r = bfs_eccentricity_serial(&g, 0, &mut marks);
        assert_eq!(r.eccentricity, 3);
        assert_eq!(r.visited, 4);
    }

    #[test]
    fn last_frontier_is_farthest_set() {
        let g = path(5);
        let mut marks = VisitMarks::new(5);
        let r = bfs_eccentricity_serial(&g, 2, &mut marks);
        let mut lf = r.last_frontier.clone();
        lf.sort_unstable();
        assert_eq!(lf, vec![0, 4]);
    }

    #[test]
    fn reusing_marks_across_traversals() {
        let g = path(4);
        let mut marks = VisitMarks::new(4);
        for v in g.vertices() {
            // no reset between calls — epochs isolate them
            let r = bfs_eccentricity_serial(&g, v, &mut marks);
            assert_eq!(r.visited, 4);
        }
    }
}
