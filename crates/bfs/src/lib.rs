//! # fdiam-bfs
//!
//! BFS substrate for the F-Diam diameter library.
//!
//! The paper computes eccentricities with a *level-synchronous* BFS
//! (Algorithm 2) and relies on three ingredients reproduced here:
//!
//! * [`VisitMarks`] — per-vertex visit *epochs* instead of boolean
//!   flags, so no O(n) reset is needed between the thousands of
//!   (partial) traversals F-Diam performs.
//! * [`hybrid`] — direction-optimized BFS (Beamer et al.): top-down
//!   frontier expansion switches to bottom-up scanning when the
//!   frontier exceeds 10 % of the vertices (the paper's experimentally
//!   determined threshold, §4.6), and back again when it shrinks.
//! * [`multisource`] — partial, optionally multi-source BFS with a
//!   per-visit callback; this is the engine behind Winnow, Eliminate,
//!   and their incremental extensions (§4.2, §4.4, §4.5).
//!
//! Parallel variants use rayon with atomic claims
//! (`compare_exchange`) exactly as the paper's OpenMP code uses atomic
//! operations on the worklists.

pub mod distances;
pub mod frontier;
pub mod hybrid;
pub mod multisource;
pub mod serial;
pub mod serial_hybrid;
pub mod visited;

pub use hybrid::{bfs_eccentricity_hybrid, bfs_eccentricity_hybrid_observed, BfsConfig};
pub use serial::bfs_eccentricity_serial;
pub use serial_hybrid::{bfs_eccentricity_serial_hybrid, bfs_eccentricity_serial_hybrid_observed};
pub use visited::VisitMarks;

use fdiam_graph::VertexId;

/// Outcome of an eccentricity BFS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// Largest BFS level reached = eccentricity of the source *within
    /// its connected component* (0 for an isolated vertex).
    pub eccentricity: u32,
    /// Number of vertices visited (including the source). Less than
    /// `n` exactly when the graph is disconnected.
    pub visited: usize,
    /// The final non-empty frontier: all vertices at distance
    /// `eccentricity` from the source. The 2-sweep (§4.1) picks its
    /// next source from here (`wl1[0]` in Algorithm 1).
    pub last_frontier: Vec<VertexId>,
}
