//! # fdiam-bfs
//!
//! BFS substrate for the F-Diam diameter library.
//!
//! The paper computes eccentricities with a *level-synchronous* BFS
//! (Algorithm 2) and relies on three ingredients reproduced here:
//!
//! * [`VisitMarks`] — per-vertex visit *epochs* instead of boolean
//!   flags, so no O(n) reset is needed between the thousands of
//!   (partial) traversals F-Diam performs.
//! * [`hybrid`] — direction-optimized BFS (Beamer et al.) over a dual
//!   frontier representation: sparse worklists for top-down levels and
//!   a dense atomic bitmap ([`bitmap::FrontierBitmap`]) for chunked
//!   bottom-up sweeps. The direction switch defaults to the Beamer
//!   α/β edge-count heuristic, with the paper's fixed 10 %-of-`|V|`
//!   rule (§4.6) available for reproduction-fidelity runs
//!   ([`hybrid::SwitchHeuristic`]).
//! * [`scratch`] — a reusable per-BFS arena ([`BfsScratch`]) holding
//!   the marks, worklists and bitmaps, so eccentricity loops perform
//!   zero steady-state heap allocation.
//! * [`multisource`] — partial, optionally multi-source BFS with a
//!   per-visit callback; this is the engine behind Winnow, Eliminate,
//!   and their incremental extensions (§4.2, §4.4, §4.5).
//!
//! Parallel variants use rayon with atomic claims
//! (`compare_exchange`) exactly as the paper's OpenMP code uses atomic
//! operations on the worklists.

pub mod bitmap;
pub mod bitparallel;
pub mod directed;
pub mod distances;
pub mod frontier;
pub mod hybrid;
pub mod load;
pub mod multisource;
pub mod scratch;
pub mod serial;
pub mod serial_hybrid;
pub mod visited;

pub use bitmap::FrontierBitmap;
pub use bitparallel::{
    bp64_distances, bp64_distances_cancellable, bp64_eccentricities,
    bp64_eccentricities_cancellable, LaneBatchSummary, MAX_LANES,
};
pub use directed::{bfs_distances_directed, bp64_distances_directed, SweepDirection};
pub use hybrid::{
    bfs_eccentricity_hybrid, bfs_eccentricity_hybrid_cancellable, bfs_eccentricity_hybrid_observed,
    BfsConfig, SwitchHeuristic,
};
pub use load::{LoadSummary, WorkerLoad};
pub use scratch::BfsScratch;
pub use serial::bfs_eccentricity_serial;
pub use serial_hybrid::{
    bfs_eccentricity_serial_hybrid, bfs_eccentricity_serial_hybrid_cancellable,
    bfs_eccentricity_serial_hybrid_observed,
};
pub use visited::VisitMarks;

use fdiam_graph::VertexId;

/// Allocation-free outcome of a scratch-based eccentricity BFS.
///
/// The full last frontier (every vertex at distance `eccentricity`)
/// stays in the scratch arena — read it via
/// [`BfsScratch::last_frontier`] before the next traversal reuses the
/// buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BfsSummary {
    /// Largest BFS level reached = eccentricity of the source *within
    /// its connected component* (0 for an isolated vertex).
    pub eccentricity: u32,
    /// Number of vertices visited (including the source). Less than
    /// `n` exactly when the graph is disconnected.
    pub visited: usize,
    /// The smallest-id vertex of the last non-empty frontier. The
    /// 2-sweep (§4.1) picks its next source from here (`wl1[0]` in
    /// Algorithm 1); taking the minimum makes the choice deterministic
    /// across kernels and thread counts.
    pub farthest: VertexId,
}

/// Outcome of an eccentricity BFS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// Largest BFS level reached = eccentricity of the source *within
    /// its connected component* (0 for an isolated vertex).
    pub eccentricity: u32,
    /// Number of vertices visited (including the source). Less than
    /// `n` exactly when the graph is disconnected.
    pub visited: usize,
    /// The final non-empty frontier: all vertices at distance
    /// `eccentricity` from the source. The 2-sweep (§4.1) picks its
    /// next source from here (`wl1[0]` in Algorithm 1).
    pub last_frontier: Vec<VertexId>,
}
