//! Directed variants of the serial and bit-parallel BFS kernels.
//!
//! A [`DiGraph`] stores the arc set twice — forward and transposed —
//! and both sides are plain [`CsrGraph`]s, so the undirected kernels
//! apply verbatim: a *forward* sweep (distances `d(s, ·)`) scans the
//! forward CSR and a *backward* sweep (distances `d(·, s)`) scans the
//! transpose. The transpose is also exactly the bottom-up direction of
//! a forward traversal ("which of my in-neighbors is on the
//! frontier?"), which is why the hybrid frontier machinery needs no
//! directed rewrite — these wrappers only select the side.

use crate::distances::bfs_distances_serial;
use crate::scratch::BfsScratch;
use crate::{bp64_distances, LaneBatchSummary};
use fdiam_graph::{CsrGraph, DiGraph, VertexId};

/// Which distance function a directed sweep computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepDirection {
    /// `d(source, ·)` — scan the forward CSR.
    Forward,
    /// `d(·, source)` — scan the transposed CSR.
    Backward,
}

impl SweepDirection {
    /// The CSR side a sweep in this direction traverses.
    #[inline]
    pub fn csr(self, g: &DiGraph) -> &CsrGraph {
        match self {
            SweepDirection::Forward => g.forward(),
            SweepDirection::Backward => g.transpose(),
        }
    }

    /// The opposite direction.
    #[inline]
    pub fn reversed(self) -> Self {
        match self {
            SweepDirection::Forward => SweepDirection::Backward,
            SweepDirection::Backward => SweepDirection::Forward,
        }
    }
}

/// Serial directed BFS: fills `dist` with `d(source, v)` (forward) or
/// `d(v, source)` (backward), [`crate::distances::UNREACHABLE`] where
/// no such path exists. Returns the largest finite distance — the
/// eccentricity of `source` restricted to its reachable set.
pub fn bfs_distances_directed(
    g: &DiGraph,
    source: VertexId,
    direction: SweepDirection,
    dist: &mut Vec<u32>,
) -> u32 {
    bfs_distances_serial(direction.csr(g), source, dist)
}

/// Directed 64-source bit-parallel BFS: lane-major distance rows with
/// the same semantics as [`bfs_distances_directed`], one row per
/// source. See [`bp64_distances`] for the row layout.
pub fn bp64_distances_directed(
    g: &DiGraph,
    sources: &[VertexId],
    direction: SweepDirection,
    scratch: &mut BfsScratch,
    dist: &mut Vec<u32>,
) -> LaneBatchSummary {
    bp64_distances(direction.csr(g), sources, scratch, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distances::UNREACHABLE;
    use fdiam_graph::EdgeList;

    /// 0 → 1 → 2 → 3 with a shortcut 0 → 2 and a back arc 3 → 0.
    fn fixture() -> DiGraph {
        let mut el = EdgeList::new(4);
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (0, 2), (3, 0)] {
            el.push(u, v);
        }
        DiGraph::from_edge_list(&el)
    }

    #[test]
    fn forward_and_backward_distances() {
        let g = fixture();
        let mut dist = Vec::new();
        let e = bfs_distances_directed(&g, 0, SweepDirection::Forward, &mut dist);
        assert_eq!(dist, vec![0, 1, 1, 2]);
        assert_eq!(e, 2);
        let e = bfs_distances_directed(&g, 0, SweepDirection::Backward, &mut dist);
        // d(v, 0): 1→2→3→0 so d(1,0)=3, d(2,0)=2, d(3,0)=1
        assert_eq!(dist, vec![0, 3, 2, 1]);
        assert_eq!(e, 3);
    }

    #[test]
    fn backward_equals_forward_on_transposed_graph() {
        let g = fixture();
        let t = g.clone().transposed();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for s in g.vertices() {
            let ea = bfs_distances_directed(&g, s, SweepDirection::Backward, &mut a);
            let eb = bfs_distances_directed(&t, s, SweepDirection::Forward, &mut b);
            assert_eq!(a, b);
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn unreachable_vertices_stay_unreachable() {
        // 0 → 1, 2 isolated
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        let g = DiGraph::from_edge_list(&el);
        let mut dist = Vec::new();
        bfs_distances_directed(&g, 0, SweepDirection::Forward, &mut dist);
        assert_eq!(dist, vec![0, 1, UNREACHABLE]);
        bfs_distances_directed(&g, 0, SweepDirection::Backward, &mut dist);
        assert_eq!(dist, vec![0, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn bp64_rows_match_serial_rows_both_directions() {
        let g = DiGraph::from_csr(fdiam_graph::generators::barabasi_albert(120, 3, 5));
        let sources: Vec<VertexId> = (0..70).step_by(3).collect();
        let mut scratch = BfsScratch::new(g.num_vertices());
        let (mut rows, mut serial) = (Vec::new(), Vec::new());
        for dir in [SweepDirection::Forward, SweepDirection::Backward] {
            let summary = bp64_distances_directed(&g, &sources, dir, &mut scratch, &mut rows);
            for (k, &s) in sources.iter().enumerate() {
                let e = bfs_distances_directed(&g, s, dir, &mut serial);
                let n = g.num_vertices();
                assert_eq!(&rows[k * n..(k + 1) * n], &serial[..], "lane {k}");
                assert_eq!(summary.ecc[k], e);
            }
        }
    }

    #[test]
    fn direction_selects_the_expected_csr() {
        let g = fixture();
        assert_eq!(SweepDirection::Forward.csr(&g), g.forward());
        assert_eq!(SweepDirection::Backward.csr(&g), g.transpose());
        assert_eq!(SweepDirection::Forward.reversed(), SweepDirection::Backward);
        assert_eq!(SweepDirection::Backward.reversed(), SweepDirection::Forward);
    }
}
