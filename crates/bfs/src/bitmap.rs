//! Dense frontier/visited bitmaps for bottom-up BFS sweeps.
//!
//! A bottom-up step scans *all* vertices, so its working set is the
//! whole visited predicate. Storing that predicate as one bit per
//! vertex (instead of the 8-byte epochs of
//! [`VisitMarks`](crate::VisitMarks)) cuts the scan's memory traffic by
//! 64× and lets whole 64-vertex blocks of already-visited vertices be
//! skipped with a single word compare. The chunked sweeps in
//! [`crate::frontier`] partition the bitmap on word boundaries, so each
//! parallel task owns its output words outright and can publish them
//! with plain relaxed stores — no read-modify-write traffic inside a
//! level.
//!
//! Conversions between the sparse (`Vec<VertexId>`) and dense
//! representations cost O(n/64 + |frontier|): a word-granular clear or
//! scan plus one bit per member.

use fdiam_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bits per bitmap word.
pub const WORD_BITS: usize = 64;

/// Words per parallel sweep chunk (4096 vertices). Word-aligned by
/// construction, so concurrent chunk tasks never share an output word.
pub const CHUNK_WORDS: usize = 64;

/// A fixed-capacity atomic bitset over vertex ids `0..n`.
pub struct FrontierBitmap {
    words: Vec<AtomicU64>,
    n: usize,
}

impl FrontierBitmap {
    /// An all-clear bitmap covering `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            words: (0..n.div_ceil(WORD_BITS))
                .map(|_| AtomicU64::new(0))
                .collect(),
            n,
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if no vertices are covered.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The backing words; chunked sweeps index these directly.
    pub fn words(&self) -> &[AtomicU64] {
        &self.words
    }

    /// Clears every bit. Non-atomic (`&mut self`), compiles to a memset.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Sets bit `v` with a relaxed read-modify-write; safe to call from
    /// concurrent claimants of different vertices in the same word.
    #[inline]
    pub fn set(&self, v: VertexId) {
        self.words[v as usize / WORD_BITS]
            .fetch_or(1u64 << (v as usize % WORD_BITS), Ordering::Relaxed);
    }

    /// True iff bit `v` is set (relaxed load).
    #[inline]
    pub fn test(&self, v: VertexId) -> bool {
        self.words[v as usize / WORD_BITS].load(Ordering::Relaxed) >> (v as usize % WORD_BITS) & 1
            != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// O(n/64 + |sparse|) sparse→dense conversion: clear, then set one
    /// bit per member.
    pub fn fill_from_sparse(&mut self, sparse: &[VertexId]) {
        self.clear();
        for &v in sparse {
            let w = self.words[v as usize / WORD_BITS].get_mut();
            *w |= 1u64 << (v as usize % WORD_BITS);
        }
    }

    /// O(n/64 + |frontier|) dense→sparse conversion: appends the set
    /// bits to `out` in ascending vertex order (reusing its capacity).
    pub fn append_sparse_into(&self, out: &mut Vec<VertexId>) {
        for (wi, w) in self.words.iter().enumerate() {
            let mut bits = w.load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((wi * WORD_BITS) as VertexId + b);
                bits &= bits - 1;
            }
        }
    }

    /// Folds another bitmap in (`self |= other`), word by word.
    /// Non-atomic (`&mut self`); used at the level barrier to merge the
    /// freshly swept frontier into the visited set.
    pub fn merge(&mut self, other: &FrontierBitmap) {
        debug_assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a.get_mut() |= b.load(Ordering::Relaxed);
        }
    }

    /// Rebuilds the bitmap as "visited in `epoch`" from the epoch marks
    /// — done once per top-down→bottom-up switch, amortized by the O(n)
    /// sweep that follows.
    pub fn fill_from_marks(&mut self, marks: &crate::visited::VisitMarks, epoch: u64) {
        debug_assert_eq!(self.n, marks.len());
        for (wi, w) in self.words.iter_mut().enumerate() {
            let mut bits = 0u64;
            let base = wi * WORD_BITS;
            for b in 0..WORD_BITS.min(self.n - base) {
                if marks.is_visited((base + b) as VertexId, epoch) {
                    bits |= 1u64 << b;
                }
            }
            *w.get_mut() = bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visited::VisitMarks;

    #[test]
    fn set_test_count() {
        let bm = FrontierBitmap::new(130);
        assert_eq!(bm.len(), 130);
        for v in [0u32, 63, 64, 129] {
            assert!(!bm.test(v));
            bm.set(v);
            assert!(bm.test(v));
        }
        assert_eq!(bm.count(), 4);
    }

    #[test]
    fn sparse_roundtrip_is_sorted() {
        let mut bm = FrontierBitmap::new(200);
        bm.fill_from_sparse(&[77, 3, 199, 64, 3]);
        let mut out = vec![999]; // append semantics: existing content kept
        bm.append_sparse_into(&mut out);
        assert_eq!(out, vec![999, 3, 64, 77, 199]);
    }

    #[test]
    fn fill_from_sparse_clears_previous_content() {
        let mut bm = FrontierBitmap::new(70);
        bm.fill_from_sparse(&[1, 2, 3]);
        bm.fill_from_sparse(&[69]);
        assert_eq!(bm.count(), 1);
        assert!(bm.test(69) && !bm.test(2));
    }

    #[test]
    fn merge_is_union() {
        let mut a = FrontierBitmap::new(100);
        let mut b = FrontierBitmap::new(100);
        a.fill_from_sparse(&[1, 50]);
        b.fill_from_sparse(&[50, 99]);
        a.merge(&b);
        let mut out = Vec::new();
        a.append_sparse_into(&mut out);
        assert_eq!(out, vec![1, 50, 99]);
    }

    #[test]
    fn fill_from_marks_reflects_epoch() {
        let mut marks = VisitMarks::new(100);
        let e1 = marks.next_epoch();
        marks.mark(10, e1);
        let e2 = marks.next_epoch();
        marks.mark(20, e2);
        marks.mark(99, e2);
        let mut bm = FrontierBitmap::new(100);
        bm.fill_from_marks(&marks, e2);
        let mut out = Vec::new();
        bm.append_sparse_into(&mut out);
        assert_eq!(out, vec![20, 99], "previous-epoch marks must not leak in");
    }

    #[test]
    fn zero_sized_bitmap() {
        let mut bm = FrontierBitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count(), 0);
        bm.clear();
        let mut out = Vec::new();
        bm.append_sparse_into(&mut out);
        assert!(out.is_empty());
    }
}
