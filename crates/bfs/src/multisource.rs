//! Partial, multi-source, level-synchronous BFS with a per-visit
//! callback.
//!
//! This is the workhorse behind three of F-Diam's stages:
//!
//! * **Winnow** (Algorithm 3) — single-source partial BFS of
//!   `⌊bound/2⌋` levels that marks every reached vertex as winnowed.
//! * **Eliminate** (Algorithm 5) — single-source partial BFS of
//!   `bound − ecc` levels recording eccentricity upper bounds.
//! * **Extension** (§4.5) — when the diameter bound rises, one
//!   *multi-source* partial BFS from all frontier vertices of prior
//!   eliminations (and from the saved Winnow frontier) extends the
//!   removed regions.
//!
//! The callback fires exactly once per newly visited vertex (the claim
//! winner), with the level (1-based from the seeds) at which it was
//! reached. Seeds themselves are marked visited but do not trigger the
//! callback — in every use above, the seeds are already removed from
//! consideration.

use crate::frontier::{
    expand_top_down_parallel, expand_top_down_serial, expand_top_down_serial_into,
};
use crate::scratch::{BfsScratch, ScratchParts};
use crate::visited::VisitMarks;
use fdiam_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Result of a partial BFS: the final frontier (vertices at exactly
/// `levels_run` from the seed set) and how many levels actually ran
/// (less than `max_levels` if the traversal died out early).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialBfs {
    pub frontier: Vec<VertexId>,
    pub levels_run: u32,
    pub visited: usize,
}

/// Serial partial BFS. `on_visit(level, v)` is called once per newly
/// reached vertex; levels start at 1 for direct neighbors of seeds.
pub fn partial_bfs_serial(
    g: &CsrGraph,
    seeds: &[VertexId],
    marks: &mut VisitMarks,
    max_levels: u32,
    mut on_visit: impl FnMut(u32, VertexId),
) -> PartialBfs {
    let epoch = marks.next_epoch();
    for &s in seeds {
        marks.mark(s, epoch);
    }
    let mut frontier = seeds.to_vec();
    let mut level = 0u32;
    let mut visited = 0usize;
    while level < max_levels && !frontier.is_empty() {
        level += 1;
        let next = expand_top_down_serial(g, &frontier, marks, epoch);
        if next.is_empty() {
            return PartialBfs {
                frontier,
                levels_run: level - 1,
                visited,
            };
        }
        for &v in &next {
            on_visit(level, v);
        }
        visited += next.len();
        frontier = next;
    }
    PartialBfs {
        frontier,
        levels_run: level,
        visited,
    }
}

/// Result of a scratch-based partial BFS. The final frontier stays in
/// the arena — read it via [`BfsScratch::last_frontier`] before the
/// next traversal reuses the buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartialBfsStats {
    pub levels_run: u32,
    pub visited: usize,
}

/// [`partial_bfs_serial`] on a reusable [`BfsScratch`]: identical
/// traversal and callback contract, but the frontier double buffer is
/// borrowed from the arena so steady-state Eliminate/extension loops
/// allocate nothing. `seeds` must not alias the scratch buffers (pass
/// a caller-owned seed list).
pub fn partial_bfs_scratch(
    g: &CsrGraph,
    seeds: &[VertexId],
    scratch: &mut BfsScratch,
    max_levels: u32,
    mut on_visit: impl FnMut(u32, VertexId),
) -> PartialBfsStats {
    let ScratchParts {
        marks, cur, next, ..
    } = scratch.parts();
    let epoch = marks.next_epoch();
    cur.clear();
    cur.extend_from_slice(seeds);
    for &s in seeds {
        marks.mark(s, epoch);
    }
    let mut level = 0u32;
    let mut visited = 0usize;
    while level < max_levels && !cur.is_empty() {
        level += 1;
        expand_top_down_serial_into(g, cur, marks, epoch, next);
        if next.is_empty() {
            return PartialBfsStats {
                levels_run: level - 1,
                visited,
            };
        }
        for &v in next.iter() {
            on_visit(level, v);
        }
        visited += next.len();
        std::mem::swap(cur, next);
    }
    PartialBfsStats {
        levels_run: level,
        visited,
    }
}

/// Frontiers below this size are expanded serially even in the
/// "parallel" partial BFS — same rationale as
/// [`crate::BfsConfig::serial_cutoff`].
const SERIAL_CUTOFF: usize = 1024;

/// Parallel partial BFS; `on_visit` must be thread-safe. The outer
/// frontier loop is parallelized with atomic claims, matching the
/// paper's parallel Winnow ("we parallelize the outer *for each* loop
/// using atomic operations", §4.2). Small frontiers fall back to the
/// serial step.
pub fn partial_bfs_parallel(
    g: &CsrGraph,
    seeds: &[VertexId],
    marks: &mut VisitMarks,
    max_levels: u32,
    on_visit: impl Fn(u32, VertexId) + Sync,
) -> PartialBfs {
    let epoch = marks.next_epoch();
    seeds.par_iter().for_each(|&s| marks.mark(s, epoch));
    let mut frontier = seeds.to_vec();
    let mut level = 0u32;
    let mut visited = 0usize;
    while level < max_levels && !frontier.is_empty() {
        level += 1;
        let next = if frontier.len() < SERIAL_CUTOFF {
            crate::frontier::expand_top_down_serial(g, &frontier, marks, epoch)
        } else {
            expand_top_down_parallel(g, &frontier, marks, epoch)
        };
        if next.is_empty() {
            return PartialBfs {
                frontier,
                levels_run: level - 1,
                visited,
            };
        }
        if next.len() < SERIAL_CUTOFF {
            next.iter().for_each(|&v| on_visit(level, v));
        } else {
            next.par_iter().for_each(|&v| on_visit(level, v));
        }
        visited += next.len();
        frontier = next;
    }
    PartialBfs {
        frontier,
        levels_run: level,
        visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{grid2d, path, star};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn levels_are_distances() {
        let g = path(6);
        let mut marks = VisitMarks::new(6);
        let mut seen = Vec::new();
        partial_bfs_serial(&g, &[0], &mut marks, 3, |lvl, v| seen.push((lvl, v)));
        assert_eq!(seen, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn respects_level_cap() {
        let g = path(10);
        let mut marks = VisitMarks::new(10);
        let r = partial_bfs_serial(&g, &[0], &mut marks, 4, |_, _| {});
        assert_eq!(r.levels_run, 4);
        assert_eq!(r.frontier, vec![4]);
        assert_eq!(r.visited, 4);
    }

    #[test]
    fn early_exhaustion_keeps_last_frontier() {
        let g = path(3);
        let mut marks = VisitMarks::new(3);
        let r = partial_bfs_serial(&g, &[0], &mut marks, 10, |_, _| {});
        assert_eq!(r.levels_run, 2);
        assert_eq!(r.frontier, vec![2]);
    }

    #[test]
    fn zero_levels_is_noop() {
        let g = star(4);
        let mut marks = VisitMarks::new(4);
        let mut count = 0;
        let r = partial_bfs_serial(&g, &[0], &mut marks, 0, |_, _| count += 1);
        assert_eq!(count, 0);
        assert_eq!(r.frontier, vec![0]);
        assert_eq!(r.levels_run, 0);
    }

    #[test]
    fn multi_source_meets_in_middle() {
        let g = path(7);
        let mut marks = VisitMarks::new(7);
        let mut seen = Vec::new();
        partial_bfs_serial(&g, &[0, 6], &mut marks, 10, |lvl, v| seen.push((lvl, v)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 1), (1, 5), (2, 2), (2, 4), (3, 3)]);
    }

    #[test]
    fn seeds_do_not_fire_callback() {
        let g = path(4);
        let mut marks = VisitMarks::new(4);
        let mut seen = Vec::new();
        partial_bfs_serial(&g, &[1, 2], &mut marks, 10, |_, v| seen.push(v));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 3]);
    }

    #[test]
    fn scratch_variant_matches_serial() {
        let g = grid2d(5, 8);
        let n = g.num_vertices();
        let mut marks = VisitMarks::new(n);
        let mut scratch = crate::BfsScratch::new(n);
        for (seeds, cap) in [(vec![0u32], 3), (vec![0, 39], 10), (vec![7], 0)] {
            let mut a: Vec<(u32, u32)> = Vec::new();
            let r1 = partial_bfs_serial(&g, &seeds, &mut marks, cap, |l, v| a.push((l, v)));
            let mut b: Vec<(u32, u32)> = Vec::new();
            let r2 = partial_bfs_scratch(&g, &seeds, &mut scratch, cap, |l, v| b.push((l, v)));
            assert_eq!(a, b);
            assert_eq!(r1.levels_run, r2.levels_run);
            assert_eq!(r1.visited, r2.visited);
            let mut f1 = r1.frontier.clone();
            f1.sort_unstable();
            let mut f2 = scratch.last_frontier().to_vec();
            f2.sort_unstable();
            assert_eq!(f1, f2);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let g = grid2d(7, 9);
        let mut m1 = VisitMarks::new(g.num_vertices());
        let mut m2 = VisitMarks::new(g.num_vertices());
        let mut serial_seen: Vec<(u32, u32)> = Vec::new();
        let r1 = partial_bfs_serial(&g, &[0, 62], &mut m1, 5, |l, v| serial_seen.push((l, v)));
        let par_seen = parking_lot_free_collect(&g, &mut m2);
        let mut r2_frontier = par_seen.1.frontier.clone();
        serial_seen.sort_unstable();
        let mut par_list = par_seen.0;
        par_list.sort_unstable();
        assert_eq!(serial_seen, par_list);
        let mut f1 = r1.frontier.clone();
        f1.sort_unstable();
        r2_frontier.sort_unstable();
        assert_eq!(f1, r2_frontier);
        assert_eq!(r1.visited, par_seen.1.visited);
    }

    // helper: run the parallel variant collecting (level, v) pairs via a mutex-free vec
    fn parallel_collect_impl(
        g: &fdiam_graph::CsrGraph,
        marks: &mut VisitMarks,
        seeds: &[u32],
        max_levels: u32,
    ) -> (Vec<(u32, u32)>, PartialBfs) {
        let n = g.num_vertices();
        let level_of: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let r = partial_bfs_parallel(g, seeds, marks, max_levels, |lvl, v| {
            level_of[v as usize].store(lvl as usize, Ordering::Relaxed);
        });
        let pairs = level_of
            .iter()
            .enumerate()
            .filter_map(|(v, l)| {
                let l = l.load(Ordering::Relaxed);
                (l != usize::MAX).then_some((l as u32, v as u32))
            })
            .collect();
        (pairs, r)
    }

    fn parking_lot_free_collect(
        g: &fdiam_graph::CsrGraph,
        marks: &mut VisitMarks,
    ) -> (Vec<(u32, u32)>, PartialBfs) {
        parallel_collect_impl(g, marks, &[0, 62], 5)
    }

    #[test]
    fn parallel_callback_fires_once_per_vertex() {
        let g = star(100);
        let mut marks = VisitMarks::new(100);
        let count = AtomicUsize::new(0);
        partial_bfs_parallel(&g, &[0], &mut marks, 2, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 99);
    }

    #[test]
    fn empty_seed_set() {
        let g = path(3);
        let mut marks = VisitMarks::new(3);
        let r = partial_bfs_serial(&g, &[], &mut marks, 5, |_, _| {});
        assert_eq!(r.levels_run, 0);
        assert!(r.frontier.is_empty());
    }
}
