//! Sequential *direction-optimized* eccentricity BFS.
//!
//! The paper's serial F-Diam also "incorporates state-of-the-art
//! direction-optimized BFS" (§7) — the top-down/bottom-up switch is an
//! edge-examination optimization orthogonal to parallelism (Beamer et
//! al.). This is the serial analogue of
//! [`crate::hybrid::bfs_eccentricity_hybrid`]: identical switching
//! logic, no atomics, no thread pool.

use crate::hybrid::BfsConfig;
use crate::visited::VisitMarks;
use crate::BfsResult;
use fdiam_graph::{CsrGraph, VertexId};

/// Serial BFS with the same 10 %-threshold direction switching as the
/// parallel hybrid.
pub fn bfs_eccentricity_serial_hybrid(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
    config: &BfsConfig,
) -> BfsResult {
    let epoch = marks.next_epoch();
    marks.mark(source, epoch);
    let threshold = ((g.num_vertices() as f64) * config.alpha) as usize;
    let mut frontier = vec![source];
    let mut visited = 1usize;
    let mut level = 0u32;
    loop {
        let next = if config.direction_optimized && frontier.len() > threshold {
            bottom_up_serial(g, marks, epoch)
        } else {
            crate::frontier::expand_top_down_serial(g, &frontier, marks, epoch)
        };
        if next.is_empty() {
            return BfsResult {
                eccentricity: level,
                visited,
                last_frontier: frontier,
            };
        }
        visited += next.len();
        level += 1;
        frontier = next;
    }
}

/// Serial bottom-up step: every unvisited vertex joins the next
/// frontier if any neighbor is visited (early exit on the first hit —
/// the "wasted work" of bottom-up shrinks as the visited set grows).
fn bottom_up_serial(g: &CsrGraph, marks: &VisitMarks, epoch: u64) -> Vec<VertexId> {
    let n = g.num_vertices() as VertexId;
    let mut next = Vec::new();
    for v in 0..n {
        if !marks.is_visited(v, epoch)
            && g.neighbors(v).iter().any(|&w| marks.is_visited(w, epoch))
        {
            next.push(v);
        }
    }
    for &v in &next {
        marks.mark(v, epoch);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_eccentricity_serial;
    use fdiam_graph::generators::*;

    #[test]
    fn matches_plain_serial() {
        for g in [
            path(20),
            cycle(11),
            star(40),
            grid2d(6, 9),
            barabasi_albert(300, 4, 1),
            kronecker_graph500(8, 8, 2),
        ] {
            let mut m1 = VisitMarks::new(g.num_vertices());
            let mut m2 = VisitMarks::new(g.num_vertices());
            let cfg = BfsConfig::default();
            for v in g.vertices() {
                let a = bfs_eccentricity_serial(&g, v, &mut m1);
                let b = bfs_eccentricity_serial_hybrid(&g, v, &mut m2, &cfg);
                assert_eq!(a.eccentricity, b.eccentricity);
                assert_eq!(a.visited, b.visited);
                let mut fa = a.last_frontier;
                let mut fb = b.last_frontier;
                fa.sort_unstable();
                fb.sort_unstable();
                assert_eq!(fa, fb);
            }
        }
    }

    #[test]
    fn forced_bottom_up_matches() {
        let g = barabasi_albert(200, 3, 7);
        let cfg = BfsConfig {
            alpha: 0.0,
            ..BfsConfig::default()
        };
        let mut m1 = VisitMarks::new(g.num_vertices());
        let mut m2 = VisitMarks::new(g.num_vertices());
        for v in g.vertices() {
            let a = bfs_eccentricity_serial(&g, v, &mut m1);
            let b = bfs_eccentricity_serial_hybrid(&g, v, &mut m2, &cfg);
            assert_eq!(a.eccentricity, b.eccentricity);
        }
    }
}
