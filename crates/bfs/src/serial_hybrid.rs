//! Sequential *direction-optimized* eccentricity BFS.
//!
//! The paper's serial F-Diam also "incorporates state-of-the-art
//! direction-optimized BFS" (§7) — the top-down/bottom-up switch is an
//! edge-examination optimization orthogonal to parallelism (Beamer et
//! al.). These entry points run the exact same dual-representation
//! kernel as [`crate::hybrid::bfs_eccentricity_hybrid`] — same switch
//! heuristic, same bitmap sweeps, same scratch reuse — with the
//! sequential expansion/sweep twins selected, so no rayon tasks are
//! spawned and levels execute on the calling thread.

use crate::hybrid::{kernel, BfsConfig};
use crate::scratch::BfsScratch;
use crate::BfsSummary;
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::{noop, CancelToken, Observer};

/// Serial BFS with the same direction switching as the parallel hybrid.
pub fn bfs_eccentricity_serial_hybrid(
    g: &CsrGraph,
    source: VertexId,
    scratch: &mut BfsScratch,
    config: &BfsConfig,
) -> BfsSummary {
    bfs_eccentricity_serial_hybrid_observed(g, source, scratch, config, noop())
}

/// [`bfs_eccentricity_serial_hybrid`] emitting telemetry to `obs` —
/// the serial analogue of
/// [`crate::hybrid::bfs_eccentricity_hybrid_observed`].
pub fn bfs_eccentricity_serial_hybrid_observed(
    g: &CsrGraph,
    source: VertexId,
    scratch: &mut BfsScratch,
    config: &BfsConfig,
    obs: &dyn Observer,
) -> BfsSummary {
    kernel(g, source, scratch, config, obs, false, None).expect("no cancel token")
}

/// [`bfs_eccentricity_serial_hybrid_observed`] polling `cancel` at
/// every level barrier — the serial analogue of
/// [`crate::hybrid::bfs_eccentricity_hybrid_cancellable`]. Returns
/// `None` once cancellation is observed (within one BFS level).
pub fn bfs_eccentricity_serial_hybrid_cancellable(
    g: &CsrGraph,
    source: VertexId,
    scratch: &mut BfsScratch,
    config: &BfsConfig,
    obs: &dyn Observer,
    cancel: &CancelToken,
) -> Option<BfsSummary> {
    kernel(g, source, scratch, config, obs, false, Some(cancel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_eccentricity_serial;
    use crate::visited::VisitMarks;
    use fdiam_graph::generators::*;

    #[test]
    fn matches_plain_serial() {
        for g in [
            path(20),
            cycle(11),
            star(40),
            grid2d(6, 9),
            barabasi_albert(300, 4, 1),
            kronecker_graph500(8, 8, 2),
        ] {
            let mut m1 = VisitMarks::new(g.num_vertices());
            let mut scratch = BfsScratch::new(g.num_vertices());
            let cfg = BfsConfig::default();
            for v in g.vertices() {
                let a = bfs_eccentricity_serial(&g, v, &mut m1);
                let b = bfs_eccentricity_serial_hybrid(&g, v, &mut scratch, &cfg);
                assert_eq!(a.eccentricity, b.eccentricity);
                assert_eq!(a.visited, b.visited);
                let mut fa = a.last_frontier;
                fa.sort_unstable();
                let mut fb = scratch.last_frontier().to_vec();
                fb.sort_unstable();
                assert_eq!(fa, fb);
            }
        }
    }

    #[test]
    fn forced_bottom_up_matches() {
        let g = barabasi_albert(200, 3, 7);
        let cfg = BfsConfig {
            heuristic: crate::hybrid::SwitchHeuristic::FixedFraction { threshold: 0.0 },
            ..BfsConfig::default()
        };
        let mut m1 = VisitMarks::new(g.num_vertices());
        let mut scratch = BfsScratch::new(g.num_vertices());
        for v in g.vertices() {
            let a = bfs_eccentricity_serial(&g, v, &mut m1);
            let b = bfs_eccentricity_serial_hybrid(&g, v, &mut scratch, &cfg);
            assert_eq!(a.eccentricity, b.eccentricity);
        }
    }

    #[test]
    fn agrees_with_parallel_kernel() {
        let g = kronecker_graph500(9, 6, 4);
        let cfg = BfsConfig::default();
        let mut ss = BfsScratch::new(g.num_vertices());
        let mut sp = BfsScratch::new(g.num_vertices());
        for v in (0..g.num_vertices() as u32).step_by(37) {
            let a = bfs_eccentricity_serial_hybrid(&g, v, &mut ss, &cfg);
            let b = crate::hybrid::bfs_eccentricity_hybrid(&g, v, &mut sp, &cfg);
            assert_eq!(a, b, "serial/parallel kernels diverge at source {v}");
        }
    }

    #[test]
    fn observed_matches_and_emits_detail() {
        use fdiam_obs::{Event, Observer};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Counts {
            levels: Mutex<u64>,
            switches: Mutex<u64>,
            ends: Mutex<u64>,
        }
        impl Observer for Counts {
            fn event(&self, e: &Event<'_>) {
                match e {
                    Event::BfsLevel { .. } => *self.levels.lock().unwrap() += 1,
                    Event::DirectionSwitch { .. } => *self.switches.lock().unwrap() += 1,
                    Event::BfsEnd { .. } => *self.ends.lock().unwrap() += 1,
                    _ => {}
                }
            }
        }

        let g = star(100);
        let cfg = BfsConfig::default();
        let mut s1 = BfsScratch::new(100);
        let mut s2 = BfsScratch::new(100);
        let c = Counts::default();
        let a = bfs_eccentricity_serial_hybrid(&g, 0, &mut s1, &cfg);
        let b = bfs_eccentricity_serial_hybrid_observed(&g, 0, &mut s2, &cfg, &c);
        assert_eq!(a.eccentricity, b.eccentricity);
        assert_eq!(a.visited, b.visited);
        // From the center the out-degree sum (99) exceeds m_u/α at once,
        // so level 1 and the empty final sweep both run bottom-up →
        // 2 levels, 1 switch.
        assert_eq!(*c.levels.lock().unwrap(), 2);
        assert_eq!(*c.switches.lock().unwrap(), 1);
        assert_eq!(*c.ends.lock().unwrap(), 1);
    }
}
