//! Sequential *direction-optimized* eccentricity BFS.
//!
//! The paper's serial F-Diam also "incorporates state-of-the-art
//! direction-optimized BFS" (§7) — the top-down/bottom-up switch is an
//! edge-examination optimization orthogonal to parallelism (Beamer et
//! al.). This is the serial analogue of
//! [`crate::hybrid::bfs_eccentricity_hybrid`]: identical switching
//! logic, no atomics, no thread pool.

use crate::frontier::frontier_edge_count;
use crate::hybrid::BfsConfig;
use crate::visited::VisitMarks;
use crate::BfsResult;
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::{noop, Event, Observer};

/// Serial BFS with the same 10 %-threshold direction switching as the
/// parallel hybrid.
pub fn bfs_eccentricity_serial_hybrid(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
    config: &BfsConfig,
) -> BfsResult {
    bfs_eccentricity_serial_hybrid_observed(g, source, marks, config, noop())
}

/// [`bfs_eccentricity_serial_hybrid`] emitting telemetry to `obs` —
/// the serial analogue of
/// [`crate::hybrid::bfs_eccentricity_hybrid_observed`].
pub fn bfs_eccentricity_serial_hybrid_observed(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
    config: &BfsConfig,
    obs: &dyn Observer,
) -> BfsResult {
    let rollovers_before = marks.rollovers();
    let epoch = marks.next_epoch();
    let enabled = obs.enabled();
    if enabled {
        if marks.rollovers() != rollovers_before {
            obs.event(&Event::EpochRollover {
                rollovers: marks.rollovers(),
            });
        }
        obs.event(&Event::BfsStart { source });
    }
    let detail = obs.wants_bfs_detail();
    marks.mark(source, epoch);
    let threshold = ((g.num_vertices() as f64) * config.alpha) as usize;
    let mut frontier = vec![source];
    let mut visited = 1usize;
    let mut level = 0u32;
    let mut was_bottom_up = false;
    loop {
        let bottom_up = config.direction_optimized && frontier.len() > threshold;
        if detail && bottom_up != was_bottom_up {
            obs.event(&Event::DirectionSwitch {
                level: level + 1,
                bottom_up,
            });
        }
        was_bottom_up = bottom_up;
        let (next, edges_scanned) = if bottom_up {
            if detail {
                bottom_up_serial_counted(g, marks, epoch)
            } else {
                (bottom_up_serial(g, marks, epoch), 0)
            }
        } else {
            let edges = if detail {
                frontier_edge_count(g, &frontier)
            } else {
                0
            };
            (
                crate::frontier::expand_top_down_serial(g, &frontier, marks, epoch),
                edges,
            )
        };
        if detail {
            obs.event(&Event::BfsLevel {
                level: level + 1,
                frontier: next.len(),
                edges_scanned,
                bottom_up,
            });
        }
        if next.is_empty() {
            if enabled {
                obs.event(&Event::BfsEnd {
                    source,
                    eccentricity: level,
                    visited,
                });
            }
            return BfsResult {
                eccentricity: level,
                visited,
                last_frontier: frontier,
            };
        }
        visited += next.len();
        level += 1;
        frontier = next;
    }
}

/// Serial bottom-up step: every unvisited vertex joins the next
/// frontier if any neighbor is visited (early exit on the first hit —
/// the "wasted work" of bottom-up shrinks as the visited set grows).
fn bottom_up_serial(g: &CsrGraph, marks: &VisitMarks, epoch: u64) -> Vec<VertexId> {
    let n = g.num_vertices() as VertexId;
    let mut next = Vec::new();
    for v in 0..n {
        if !marks.is_visited(v, epoch) && g.neighbors(v).iter().any(|&w| marks.is_visited(w, epoch))
        {
            next.push(v);
        }
    }
    for &v in &next {
        marks.mark(v, epoch);
    }
    next
}

/// [`bottom_up_serial`] that also counts the edges examined (neighbors
/// scanned until the first visited hit).
fn bottom_up_serial_counted(g: &CsrGraph, marks: &VisitMarks, epoch: u64) -> (Vec<VertexId>, u64) {
    let n = g.num_vertices() as VertexId;
    let mut next = Vec::new();
    let mut edges = 0u64;
    for v in 0..n {
        if marks.is_visited(v, epoch) {
            continue;
        }
        let mut hit = false;
        for &w in g.neighbors(v) {
            edges += 1;
            if marks.is_visited(w, epoch) {
                hit = true;
                break;
            }
        }
        if hit {
            next.push(v);
        }
    }
    for &v in &next {
        marks.mark(v, epoch);
    }
    (next, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_eccentricity_serial;
    use fdiam_graph::generators::*;

    #[test]
    fn matches_plain_serial() {
        for g in [
            path(20),
            cycle(11),
            star(40),
            grid2d(6, 9),
            barabasi_albert(300, 4, 1),
            kronecker_graph500(8, 8, 2),
        ] {
            let mut m1 = VisitMarks::new(g.num_vertices());
            let mut m2 = VisitMarks::new(g.num_vertices());
            let cfg = BfsConfig::default();
            for v in g.vertices() {
                let a = bfs_eccentricity_serial(&g, v, &mut m1);
                let b = bfs_eccentricity_serial_hybrid(&g, v, &mut m2, &cfg);
                assert_eq!(a.eccentricity, b.eccentricity);
                assert_eq!(a.visited, b.visited);
                let mut fa = a.last_frontier;
                let mut fb = b.last_frontier;
                fa.sort_unstable();
                fb.sort_unstable();
                assert_eq!(fa, fb);
            }
        }
    }

    #[test]
    fn forced_bottom_up_matches() {
        let g = barabasi_albert(200, 3, 7);
        let cfg = BfsConfig {
            alpha: 0.0,
            ..BfsConfig::default()
        };
        let mut m1 = VisitMarks::new(g.num_vertices());
        let mut m2 = VisitMarks::new(g.num_vertices());
        for v in g.vertices() {
            let a = bfs_eccentricity_serial(&g, v, &mut m1);
            let b = bfs_eccentricity_serial_hybrid(&g, v, &mut m2, &cfg);
            assert_eq!(a.eccentricity, b.eccentricity);
        }
    }

    #[test]
    fn observed_matches_and_emits_detail() {
        use fdiam_obs::{Event, Observer};
        use std::sync::Mutex;

        #[derive(Default)]
        struct Counts {
            levels: Mutex<u64>,
            switches: Mutex<u64>,
            ends: Mutex<u64>,
        }
        impl Observer for Counts {
            fn event(&self, e: &Event<'_>) {
                match e {
                    Event::BfsLevel { .. } => *self.levels.lock().unwrap() += 1,
                    Event::DirectionSwitch { .. } => *self.switches.lock().unwrap() += 1,
                    Event::BfsEnd { .. } => *self.ends.lock().unwrap() += 1,
                    _ => {}
                }
            }
        }

        let g = star(100);
        let cfg = BfsConfig::default();
        let mut m1 = VisitMarks::new(100);
        let mut m2 = VisitMarks::new(100);
        let c = Counts::default();
        let a = bfs_eccentricity_serial_hybrid(&g, 0, &mut m1, &cfg);
        let b = bfs_eccentricity_serial_hybrid_observed(&g, 0, &mut m2, &cfg, &c);
        assert_eq!(a.eccentricity, b.eccentricity);
        assert_eq!(a.visited, b.visited);
        // From the center: level 1 (99 leaves, top-down) then the
        // empty final expansion runs bottom-up → 2 levels, 1 switch.
        assert_eq!(*c.levels.lock().unwrap(), 2);
        assert_eq!(*c.switches.lock().unwrap(), 1);
        assert_eq!(*c.ends.lock().unwrap(), 1);
    }
}
