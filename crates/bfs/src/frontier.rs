//! Frontier expansion steps shared by the BFS drivers.
//!
//! A level-synchronous BFS alternates between two worklists (`wl1`,
//! `wl2` in the paper's pseudocode). These helpers produce the next
//! worklist from the current one:
//!
//! * [`expand_top_down_serial`] / [`expand_top_down_parallel`] — scan
//!   the out-edges of the frontier, claiming unvisited neighbors
//!   (Algorithm 2 lines 10–14).
//! * [`expand_bottom_up`] — scan all *unvisited* vertices and add those
//!   with a visited neighbor (Algorithm 2 lines 16–23). Because each
//!   vertex only adds itself, no atomic claims are needed; new vertices
//!   are marked afterwards to keep the step level-synchronous.
//!
//! The allocation-free variants used by the scratch-arena kernels
//! ([`crate::hybrid`], [`crate::serial_hybrid`]) live here too:
//!
//! * [`expand_top_down_serial_into`] / [`expand_top_down_into_bitmap`]
//!   — top-down steps writing into reused buffers.
//! * [`sweep_bottom_up_serial`] / [`sweep_bottom_up_parallel`] —
//!   bottom-up sweeps over the dense [`FrontierBitmap`] visited set,
//!   chunked on word boundaries so parallel tasks publish their output
//!   words with plain stores.

use crate::bitmap::{FrontierBitmap, CHUNK_WORDS, WORD_BITS};
use crate::load::WorkerLoad;
use crate::visited::VisitMarks;
use fdiam_graph::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::time::Instant;

/// Frontier vertices per accounted task: large enough that the two
/// `Instant::now` calls per task vanish against the edge scans, small
/// enough that work still spreads across the pool.
const ACCOUNT_CHUNK: usize = 256;

/// Sequential top-down step: returns the next frontier.
pub fn expand_top_down_serial(
    g: &CsrGraph,
    frontier: &[VertexId],
    marks: &VisitMarks,
    epoch: u64,
) -> Vec<VertexId> {
    let mut next = Vec::new();
    for &v in frontier {
        for &n in g.neighbors(v) {
            if !marks.is_visited(n, epoch) {
                marks.mark(n, epoch);
                next.push(n);
            }
        }
    }
    next
}

/// Parallel top-down step: the frontier is processed with rayon and
/// neighbors are claimed atomically, matching the paper's description
/// of threads that "atomically check if these neighbors have already
/// been visited" (§4.6).
pub fn expand_top_down_parallel(
    g: &CsrGraph,
    frontier: &[VertexId],
    marks: &VisitMarks,
    epoch: u64,
) -> Vec<VertexId> {
    frontier
        .par_iter()
        .fold(Vec::new, |mut acc, &v| {
            for &n in g.neighbors(v) {
                if marks.try_claim(n, epoch) {
                    acc.push(n);
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

/// Parallel bottom-up step: every unvisited vertex checks whether any
/// neighbor is already visited. In a level-synchronous BFS, "visited"
/// implies "at distance ≤ current level", so an unvisited vertex with a
/// visited neighbor is at exactly the next level — which is why the
/// paper's Algorithm 2 tests the counter rather than frontier
/// membership. Newly found vertices are marked in a second pass
/// (Algorithm 2 lines 22–23) so the scan itself needs no atomics.
pub fn expand_bottom_up(g: &CsrGraph, marks: &VisitMarks, epoch: u64) -> Vec<VertexId> {
    let n = g.num_vertices() as VertexId;
    let next: Vec<VertexId> = (0..n)
        .into_par_iter()
        .filter(|&v| {
            !marks.is_visited(v, epoch)
                && g.neighbors(v).iter().any(|&w| marks.is_visited(w, epoch))
        })
        .collect();
    next.par_iter().for_each(|&v| marks.mark(v, epoch));
    next
}

/// Edges a top-down expansion of `frontier` will scan: the sum of the
/// frontier's out-degrees (top-down examines every incident edge).
pub fn frontier_edge_count(g: &CsrGraph, frontier: &[VertexId]) -> u64 {
    frontier.iter().map(|&v| g.neighbors(v).len() as u64).sum()
}

/// Sequential top-down step into a reused buffer. `next` is cleared and
/// refilled (keeping its capacity); returns the out-degree sum of the
/// *new* frontier, which the caller feeds straight into the α/β switch
/// decision without a second degree pass.
pub fn expand_top_down_serial_into(
    g: &CsrGraph,
    frontier: &[VertexId],
    marks: &VisitMarks,
    epoch: u64,
    next: &mut Vec<VertexId>,
) -> u64 {
    next.clear();
    let mut degree_sum = 0u64;
    for &v in frontier {
        for &n in g.neighbors(v) {
            if !marks.is_visited(n, epoch) {
                marks.mark(n, epoch);
                degree_sum += g.neighbors(n).len() as u64;
                next.push(n);
            }
        }
    }
    degree_sum
}

/// Parallel top-down step that claims neighbors into a dense bitmap
/// instead of per-task `Vec`s, so the step allocates nothing. The
/// caller clears `next_bm` beforehand and materializes the sparse
/// frontier afterwards with
/// [`FrontierBitmap::append_sparse_into`](crate::bitmap::FrontierBitmap::append_sparse_into).
/// Returns `(count, degree_sum)` of the newly claimed frontier.
///
/// With `load` set, the expansion runs in `ACCOUNT_CHUNK`-vertex
/// tasks that credit their edge scans and busy time to the executing
/// rayon worker; with `None` the original uninstrumented fold runs —
/// no timing calls, no accounting atomics.
pub fn expand_top_down_into_bitmap(
    g: &CsrGraph,
    frontier: &[VertexId],
    marks: &VisitMarks,
    epoch: u64,
    next_bm: &FrontierBitmap,
    load: Option<&WorkerLoad>,
) -> (usize, u64) {
    if let Some(load) = load {
        return frontier
            .par_chunks(ACCOUNT_CHUNK)
            .map(|chunk| {
                let started = Instant::now();
                let mut count = 0usize;
                let mut degree_sum = 0u64;
                let mut edges = 0u64;
                for &v in chunk {
                    let nbrs = g.neighbors(v);
                    edges += nbrs.len() as u64;
                    for &n in nbrs {
                        if marks.try_claim(n, epoch) {
                            next_bm.set(n);
                            count += 1;
                            degree_sum += g.neighbors(n).len() as u64;
                        }
                    }
                }
                load.record(edges, started);
                (count, degree_sum)
            })
            .reduce(|| (0, 0), |(ca, da), (cb, db)| (ca + cb, da + db));
    }
    frontier
        .par_iter()
        .fold(
            || (0usize, 0u64),
            |(mut count, mut degree_sum), &v| {
                for &n in g.neighbors(v) {
                    if marks.try_claim(n, epoch) {
                        next_bm.set(n);
                        count += 1;
                        degree_sum += g.neighbors(n).len() as u64;
                    }
                }
                (count, degree_sum)
            },
        )
        .reduce(|| (0, 0), |(ca, da), (cb, db)| (ca + cb, da + db))
}

/// Totals produced by one bottom-up sweep level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BottomUpSweep {
    /// Vertices claimed into the next frontier.
    pub count: usize,
    /// Out-degree sum of the claimed vertices (the `m_f` of the next
    /// level, for the switch heuristic).
    pub degree_sum: u64,
    /// Edges examined, counting each unvisited vertex's early exit at
    /// its first visited neighbor.
    pub edges_scanned: u64,
}

impl BottomUpSweep {
    fn add(self, o: BottomUpSweep) -> BottomUpSweep {
        BottomUpSweep {
            count: self.count + o.count,
            degree_sum: self.degree_sum + o.degree_sum,
            edges_scanned: self.edges_scanned + o.edges_scanned,
        }
    }
}

/// Sweeps the words of one [`CHUNK_WORDS`]-word chunk. Because chunks
/// are word-aligned, the task owns its `next_bm` output words outright
/// and publishes each with one plain relaxed store — the store also
/// *overwrites* stale content, so `next_bm` needs no clear pass between
/// levels. Newly found vertices are epoch-marked in-sweep (each vertex
/// is claimed by exactly one chunk, so no atomic RMW is needed).
///
/// In a level-synchronous BFS every visited vertex is at distance ≤ the
/// current level, so "some neighbor is visited" is equivalent to "some
/// neighbor is in the current frontier" (Algorithm 2's counter test):
/// the sweep tests the single `visited_bm` bit instead of a separate
/// frontier membership structure.
fn sweep_chunk(
    g: &CsrGraph,
    marks: &VisitMarks,
    epoch: u64,
    visited_bm: &FrontierBitmap,
    next_bm: &FrontierBitmap,
    chunk: usize,
) -> BottomUpSweep {
    let n = visited_bm.len();
    let words = visited_bm.words();
    let out_words = next_bm.words();
    let start = chunk * CHUNK_WORDS;
    let end = (start + CHUNK_WORDS).min(words.len());
    let mut totals = BottomUpSweep::default();
    for wi in start..end {
        let base = wi * WORD_BITS;
        let valid = if n - base >= WORD_BITS {
            !0u64
        } else {
            (1u64 << (n - base)) - 1
        };
        let unvisited = !words[wi].load(std::sync::atomic::Ordering::Relaxed) & valid;
        let mut found = 0u64;
        let mut bits = unvisited;
        while bits != 0 {
            let b = bits.trailing_zeros();
            bits &= bits - 1;
            let v = (base + b as usize) as VertexId;
            let nbrs = g.neighbors(v);
            let mut hit = false;
            for (i, &w) in nbrs.iter().enumerate() {
                if visited_bm.test(w) {
                    totals.edges_scanned += i as u64 + 1;
                    hit = true;
                    break;
                }
            }
            if hit {
                found |= 1u64 << b;
                totals.count += 1;
                totals.degree_sum += nbrs.len() as u64;
                marks.mark(v, epoch);
            } else {
                totals.edges_scanned += nbrs.len() as u64;
            }
        }
        out_words[wi].store(found, std::sync::atomic::Ordering::Relaxed);
    }
    totals
}

/// Serial bottom-up sweep over the dense visited set: fills `next_bm`
/// with the next frontier (overwriting all its words) and epoch-marks
/// the finds. The caller merges `next_bm` into `visited_bm` and swaps
/// buffers at the level barrier.
pub fn sweep_bottom_up_serial(
    g: &CsrGraph,
    marks: &VisitMarks,
    epoch: u64,
    visited_bm: &FrontierBitmap,
    next_bm: &FrontierBitmap,
) -> BottomUpSweep {
    let chunks = visited_bm.words().len().div_ceil(CHUNK_WORDS);
    let mut totals = BottomUpSweep::default();
    for c in 0..chunks {
        totals = totals.add(sweep_chunk(g, marks, epoch, visited_bm, next_bm, c));
    }
    totals
}

/// Parallel bottom-up sweep: one rayon task per word-aligned chunk.
/// Same contract as [`sweep_bottom_up_serial`]. With `load` set, each
/// chunk task credits its edge scans and busy time to the executing
/// rayon worker.
pub fn sweep_bottom_up_parallel(
    g: &CsrGraph,
    marks: &VisitMarks,
    epoch: u64,
    visited_bm: &FrontierBitmap,
    next_bm: &FrontierBitmap,
    load: Option<&WorkerLoad>,
) -> BottomUpSweep {
    let chunks = visited_bm.words().len().div_ceil(CHUNK_WORDS);
    match load {
        Some(load) => (0..chunks)
            .into_par_iter()
            .map(|c| {
                let started = Instant::now();
                let s = sweep_chunk(g, marks, epoch, visited_bm, next_bm, c);
                load.record(s.edges_scanned, started);
                s
            })
            .reduce(BottomUpSweep::default, BottomUpSweep::add),
        None => (0..chunks)
            .into_par_iter()
            .map(|c| sweep_chunk(g, marks, epoch, visited_bm, next_bm, c))
            .reduce(BottomUpSweep::default, BottomUpSweep::add),
    }
}

/// [`expand_bottom_up`] that also reports how many edges it examined.
/// Each unvisited vertex scans neighbors only until its first visited
/// hit, so the count captures the early-exit saving that motivates the
/// bottom-up direction (Beamer et al.).
pub fn expand_bottom_up_counted(
    g: &CsrGraph,
    marks: &VisitMarks,
    epoch: u64,
) -> (Vec<VertexId>, u64) {
    let n = g.num_vertices() as VertexId;
    let (next, edges) = (0..n)
        .into_par_iter()
        .fold(
            || (Vec::new(), 0u64),
            |(mut acc, mut edges), v| {
                if !marks.is_visited(v, epoch) {
                    for (i, &w) in g.neighbors(v).iter().enumerate() {
                        if marks.is_visited(w, epoch) {
                            edges += i as u64 + 1;
                            acc.push(v);
                            return (acc, edges);
                        }
                    }
                    edges += g.neighbors(v).len() as u64;
                }
                (acc, edges)
            },
        )
        .reduce(
            || (Vec::new(), 0u64),
            |(mut a, ea), (mut b, eb)| {
                a.append(&mut b);
                (a, ea + eb)
            },
        );
    next.par_iter().for_each(|&v| marks.mark(v, epoch));
    (next, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{path, star};

    #[test]
    fn serial_and_parallel_top_down_agree() {
        let g = star(10);
        let mut m1 = VisitMarks::new(10);
        let e1 = m1.next_epoch();
        m1.mark(0, e1);
        let mut a = expand_top_down_serial(&g, &[0], &m1, e1);

        let mut m2 = VisitMarks::new(10);
        let e2 = m2.next_epoch();
        m2.mark(0, e2);
        let mut b = expand_top_down_parallel(&g, &[0], &m2, e2);

        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn bottom_up_matches_top_down() {
        let g = path(6);
        // visit {0,1}; next level must be {2} under both schemes
        let mut m = VisitMarks::new(6);
        let e = m.next_epoch();
        m.mark(0, e);
        m.mark(1, e);
        let bu = expand_bottom_up(&g, &m, e);
        assert_eq!(bu, vec![2]);
        assert!(m.is_visited(2, e), "bottom-up must mark its finds");
    }

    #[test]
    fn counted_bottom_up_matches_uncounted() {
        let g = path(6);
        let mut m1 = VisitMarks::new(6);
        let mut m2 = VisitMarks::new(6);
        let e1 = m1.next_epoch();
        let e2 = m2.next_epoch();
        for v in [0, 1] {
            m1.mark(v, e1);
            m2.mark(v, e2);
        }
        let plain = expand_bottom_up(&g, &m1, e1);
        let (counted, edges) = expand_bottom_up_counted(&g, &m2, e2);
        assert_eq!(plain, counted);
        // Unvisited 2..=5 each scan until first visited hit or
        // exhaustion: vertex 2 hits neighbor 1 immediately (1 edge);
        // 3, 4 scan both neighbors; 5 scans its single neighbor.
        assert_eq!(edges, 1 + 2 + 2 + 1);
    }

    #[test]
    fn frontier_edge_count_sums_degrees() {
        let g = star(5); // center 0 has degree 4, leaves degree 1
        assert_eq!(frontier_edge_count(&g, &[0]), 4);
        assert_eq!(frontier_edge_count(&g, &[1, 2, 3]), 3);
        assert_eq!(frontier_edge_count(&g, &[]), 0);
    }

    #[test]
    fn top_down_into_reuses_buffer_and_sums_degrees() {
        let g = star(10); // center 0, leaves 1..=9 with degree 1
        let mut m = VisitMarks::new(10);
        let e = m.next_epoch();
        m.mark(0, e);
        let mut next = vec![42, 43]; // stale content must be cleared
        let deg = expand_top_down_serial_into(&g, &[0], &m, e, &mut next);
        assert_eq!(next.len(), 9);
        assert_eq!(deg, 9, "nine leaves of degree 1 each");
        // Second use from a fresh epoch reuses the same buffer.
        let e2 = m.next_epoch();
        m.mark(1, e2);
        let deg2 = expand_top_down_serial_into(&g, &[1], &m, e2, &mut next);
        assert_eq!(next, vec![0]);
        assert_eq!(deg2, 9);
    }

    #[test]
    fn top_down_into_bitmap_matches_serial() {
        let g = path(9);
        let mut m1 = VisitMarks::new(9);
        let e1 = m1.next_epoch();
        for v in [3, 4] {
            m1.mark(v, e1);
        }
        let mut next = Vec::new();
        expand_top_down_serial_into(&g, &[3, 4], &m1, e1, &mut next);
        next.sort_unstable();

        let mut m2 = VisitMarks::new(9);
        let e2 = m2.next_epoch();
        for v in [3, 4] {
            m2.mark(v, e2);
        }
        let mut bm = FrontierBitmap::new(9);
        bm.clear();
        let (count, deg) = expand_top_down_into_bitmap(&g, &[3, 4], &m2, e2, &bm, None);
        let mut sparse = Vec::new();
        bm.append_sparse_into(&mut sparse);
        assert_eq!(sparse, next);
        assert_eq!(count, sparse.len());
        assert_eq!(deg, frontier_edge_count(&g, &sparse));
    }

    #[test]
    fn bitmap_sweep_matches_expand_bottom_up() {
        let g = path(300); // spans several words, exercises masking
        let mut m1 = VisitMarks::new(300);
        let e1 = m1.next_epoch();
        for v in 0..=150u32 {
            m1.mark(v, e1);
        }
        let expected = expand_bottom_up(&g, &m1, e1);

        let mut m2 = VisitMarks::new(300);
        let e2 = m2.next_epoch();
        for v in 0..=150u32 {
            m2.mark(v, e2);
        }
        let mut visited = FrontierBitmap::new(300);
        visited.fill_from_marks(&m2, e2);
        let next = FrontierBitmap::new(300);
        let s = sweep_bottom_up_serial(&g, &m2, e2, &visited, &next);
        let mut sparse = Vec::new();
        next.append_sparse_into(&mut sparse);
        assert_eq!(sparse, expected);
        assert_eq!(s.count, expected.len());
        assert_eq!(s.degree_sum, frontier_edge_count(&g, &expected));
        assert!(m2.is_visited(151, e2), "sweep must epoch-mark its finds");

        // Parallel sweep agrees, including when next_bm holds stale bits.
        let mut m3 = VisitMarks::new(300);
        let e3 = m3.next_epoch();
        for v in 0..=150u32 {
            m3.mark(v, e3);
        }
        let mut visited3 = FrontierBitmap::new(300);
        visited3.fill_from_marks(&m3, e3);
        let mut stale = FrontierBitmap::new(300);
        stale.fill_from_sparse(&[7, 200, 299]);
        let p = sweep_bottom_up_parallel(&g, &m3, e3, &visited3, &stale, None);
        let mut sparse_p = Vec::new();
        stale.append_sparse_into(&mut sparse_p);
        assert_eq!(sparse_p, expected, "full-word stores must erase stale bits");
        assert_eq!(p, s);
    }

    #[test]
    fn sweep_counts_early_exit_edges() {
        let g = path(6);
        let mut m = VisitMarks::new(6);
        let e = m.next_epoch();
        for v in [0, 1] {
            m.mark(v, e);
        }
        let mut visited = FrontierBitmap::new(6);
        visited.fill_from_marks(&m, e);
        let next = FrontierBitmap::new(6);
        let s = sweep_bottom_up_serial(&g, &m, e, &visited, &next);
        // Same accounting as `expand_bottom_up_counted`: 2 hits neighbor
        // 1 after 1 edge; 3 and 4 scan both neighbors; 5 scans one.
        assert_eq!(s.edges_scanned, 1 + 2 + 2 + 1);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn no_duplicates_in_parallel_expansion() {
        // diamond: 0-1, 0-2, 1-3, 2-3 → from {1,2}, vertex 3 found once
        let g = fdiam_graph::EdgeList::from_undirected(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
            .to_undirected_csr();
        let mut m = VisitMarks::new(4);
        let e = m.next_epoch();
        for v in [0, 1, 2] {
            m.mark(v, e);
        }
        let next = expand_top_down_parallel(&g, &[1, 2], &m, e);
        assert_eq!(next, vec![3]);
    }
}
