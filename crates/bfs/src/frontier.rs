//! Frontier expansion steps shared by the BFS drivers.
//!
//! A level-synchronous BFS alternates between two worklists (`wl1`,
//! `wl2` in the paper's pseudocode). These helpers produce the next
//! worklist from the current one:
//!
//! * [`expand_top_down_serial`] / [`expand_top_down_parallel`] — scan
//!   the out-edges of the frontier, claiming unvisited neighbors
//!   (Algorithm 2 lines 10–14).
//! * [`expand_bottom_up`] — scan all *unvisited* vertices and add those
//!   with a visited neighbor (Algorithm 2 lines 16–23). Because each
//!   vertex only adds itself, no atomic claims are needed; new vertices
//!   are marked afterwards to keep the step level-synchronous.

use crate::visited::VisitMarks;
use fdiam_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Sequential top-down step: returns the next frontier.
pub fn expand_top_down_serial(
    g: &CsrGraph,
    frontier: &[VertexId],
    marks: &VisitMarks,
    epoch: u64,
) -> Vec<VertexId> {
    let mut next = Vec::new();
    for &v in frontier {
        for &n in g.neighbors(v) {
            if !marks.is_visited(n, epoch) {
                marks.mark(n, epoch);
                next.push(n);
            }
        }
    }
    next
}

/// Parallel top-down step: the frontier is processed with rayon and
/// neighbors are claimed atomically, matching the paper's description
/// of threads that "atomically check if these neighbors have already
/// been visited" (§4.6).
pub fn expand_top_down_parallel(
    g: &CsrGraph,
    frontier: &[VertexId],
    marks: &VisitMarks,
    epoch: u64,
) -> Vec<VertexId> {
    frontier
        .par_iter()
        .fold(Vec::new, |mut acc, &v| {
            for &n in g.neighbors(v) {
                if marks.try_claim(n, epoch) {
                    acc.push(n);
                }
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

/// Parallel bottom-up step: every unvisited vertex checks whether any
/// neighbor is already visited. In a level-synchronous BFS, "visited"
/// implies "at distance ≤ current level", so an unvisited vertex with a
/// visited neighbor is at exactly the next level — which is why the
/// paper's Algorithm 2 tests the counter rather than frontier
/// membership. Newly found vertices are marked in a second pass
/// (Algorithm 2 lines 22–23) so the scan itself needs no atomics.
pub fn expand_bottom_up(g: &CsrGraph, marks: &VisitMarks, epoch: u64) -> Vec<VertexId> {
    let n = g.num_vertices() as VertexId;
    let next: Vec<VertexId> = (0..n)
        .into_par_iter()
        .filter(|&v| {
            !marks.is_visited(v, epoch)
                && g.neighbors(v).iter().any(|&w| marks.is_visited(w, epoch))
        })
        .collect();
    next.par_iter().for_each(|&v| marks.mark(v, epoch));
    next
}

/// Edges a top-down expansion of `frontier` will scan: the sum of the
/// frontier's out-degrees (top-down examines every incident edge).
pub fn frontier_edge_count(g: &CsrGraph, frontier: &[VertexId]) -> u64 {
    frontier.iter().map(|&v| g.neighbors(v).len() as u64).sum()
}

/// [`expand_bottom_up`] that also reports how many edges it examined.
/// Each unvisited vertex scans neighbors only until its first visited
/// hit, so the count captures the early-exit saving that motivates the
/// bottom-up direction (Beamer et al.).
pub fn expand_bottom_up_counted(
    g: &CsrGraph,
    marks: &VisitMarks,
    epoch: u64,
) -> (Vec<VertexId>, u64) {
    let n = g.num_vertices() as VertexId;
    let (next, edges) = (0..n)
        .into_par_iter()
        .fold(
            || (Vec::new(), 0u64),
            |(mut acc, mut edges), v| {
                if !marks.is_visited(v, epoch) {
                    for (i, &w) in g.neighbors(v).iter().enumerate() {
                        if marks.is_visited(w, epoch) {
                            edges += i as u64 + 1;
                            acc.push(v);
                            return (acc, edges);
                        }
                    }
                    edges += g.neighbors(v).len() as u64;
                }
                (acc, edges)
            },
        )
        .reduce(
            || (Vec::new(), 0u64),
            |(mut a, ea), (mut b, eb)| {
                a.append(&mut b);
                (a, ea + eb)
            },
        );
    next.par_iter().for_each(|&v| marks.mark(v, epoch));
    (next, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{path, star};

    #[test]
    fn serial_and_parallel_top_down_agree() {
        let g = star(10);
        let mut m1 = VisitMarks::new(10);
        let e1 = m1.next_epoch();
        m1.mark(0, e1);
        let mut a = expand_top_down_serial(&g, &[0], &m1, e1);

        let mut m2 = VisitMarks::new(10);
        let e2 = m2.next_epoch();
        m2.mark(0, e2);
        let mut b = expand_top_down_parallel(&g, &[0], &m2, e2);

        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn bottom_up_matches_top_down() {
        let g = path(6);
        // visit {0,1}; next level must be {2} under both schemes
        let mut m = VisitMarks::new(6);
        let e = m.next_epoch();
        m.mark(0, e);
        m.mark(1, e);
        let bu = expand_bottom_up(&g, &m, e);
        assert_eq!(bu, vec![2]);
        assert!(m.is_visited(2, e), "bottom-up must mark its finds");
    }

    #[test]
    fn counted_bottom_up_matches_uncounted() {
        let g = path(6);
        let mut m1 = VisitMarks::new(6);
        let mut m2 = VisitMarks::new(6);
        let e1 = m1.next_epoch();
        let e2 = m2.next_epoch();
        for v in [0, 1] {
            m1.mark(v, e1);
            m2.mark(v, e2);
        }
        let plain = expand_bottom_up(&g, &m1, e1);
        let (counted, edges) = expand_bottom_up_counted(&g, &m2, e2);
        assert_eq!(plain, counted);
        // Unvisited 2..=5 each scan until first visited hit or
        // exhaustion: vertex 2 hits neighbor 1 immediately (1 edge);
        // 3, 4 scan both neighbors; 5 scans its single neighbor.
        assert_eq!(edges, 1 + 2 + 2 + 1);
    }

    #[test]
    fn frontier_edge_count_sums_degrees() {
        let g = star(5); // center 0 has degree 4, leaves degree 1
        assert_eq!(frontier_edge_count(&g, &[0]), 4);
        assert_eq!(frontier_edge_count(&g, &[1, 2, 3]), 3);
        assert_eq!(frontier_edge_count(&g, &[]), 0);
    }

    #[test]
    fn no_duplicates_in_parallel_expansion() {
        // diamond: 0-1, 0-2, 1-3, 2-3 → from {1,2}, vertex 3 found once
        let g = fdiam_graph::EdgeList::from_undirected(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
            .to_undirected_csr();
        let mut m = VisitMarks::new(4);
        let e = m.next_epoch();
        for v in [0, 1, 2] {
            m.mark(v, e);
        }
        let next = expand_top_down_parallel(&g, &[1, 2], &m, e);
        assert_eq!(next, vec![3]);
    }
}
