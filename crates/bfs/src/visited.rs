//! Epoch-based visited marks.
//!
//! The paper uses "a *counter* value to check whether a vertex has
//! already been visited in the current iteration … rather than a flag
//! to avoid a costly reset procedure after each BFS traversal" (§4).
//! [`VisitMarks`] is that counter array: each traversal bumps the
//! epoch, and a vertex is visited iff its mark equals the current
//! epoch. Parallel traversals claim vertices with a relaxed
//! `compare_exchange`; the level-synchronous barrier (rayon joining
//! each parallel loop) provides the necessary ordering between levels.

use fdiam_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-vertex visit epochs.
pub struct VisitMarks {
    marks: Vec<AtomicU64>,
    epoch: u64,
    rollovers: u64,
}

impl VisitMarks {
    /// Fresh marks for an `n`-vertex graph. Epoch starts at 0 and every
    /// mark at 0, so vertices read as "visited" for epoch 0; always call
    /// [`Self::next_epoch`] before a traversal.
    pub fn new(n: usize) -> Self {
        Self {
            marks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            epoch: 0,
            rollovers: 0,
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True if no vertices are covered.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Starts a new traversal: bumps and returns the fresh epoch.
    /// Requires `&mut self`, so a traversal has exclusive use of the
    /// epoch it was handed.
    ///
    /// If the epoch counter would wrap, every mark is reset to 0 first
    /// and counting restarts at 1 — the one O(n) reset the epoch scheme
    /// amortizes away (after 2⁶⁴−1 traversals). Wraps are counted and
    /// reported via [`Self::rollovers`] so instrumentation can surface
    /// them.
    pub fn next_epoch(&mut self) -> u64 {
        if self.epoch == u64::MAX {
            for m in &mut self.marks {
                *m.get_mut() = 0;
            }
            self.epoch = 0;
            self.rollovers += 1;
        }
        self.epoch += 1;
        self.epoch
    }

    /// The epoch most recently handed out.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of times the epoch counter wrapped (each wrap performs
    /// the O(n) mark reset that epochs normally avoid).
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }

    /// Atomically claims `v` for `epoch`. Returns `true` iff this call
    /// was the first to visit `v` in this epoch.
    #[inline]
    pub fn try_claim(&self, v: VertexId, epoch: u64) -> bool {
        let m = &self.marks[v as usize];
        // Fast path: already visited.
        if m.load(Ordering::Relaxed) == epoch {
            return false;
        }
        m.swap(epoch, Ordering::Relaxed) != epoch
    }

    /// Non-atomic-claim mark (used by bottom-up steps where each vertex
    /// is written only by itself, and by serial code).
    #[inline]
    pub fn mark(&self, v: VertexId, epoch: u64) {
        self.marks[v as usize].store(epoch, Ordering::Relaxed);
    }

    /// True iff `v` has been visited in `epoch`.
    #[inline]
    pub fn is_visited(&self, v: VertexId, epoch: u64) -> bool {
        self.marks[v as usize].load(Ordering::Relaxed) == epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_epoch_unvisited() {
        let mut m = VisitMarks::new(4);
        let e = m.next_epoch();
        assert!(!m.is_visited(0, e));
        assert!(m.try_claim(0, e));
        assert!(m.is_visited(0, e));
        assert!(!m.try_claim(0, e), "second claim must fail");
    }

    #[test]
    fn epochs_isolate_traversals() {
        let mut m = VisitMarks::new(2);
        let e1 = m.next_epoch();
        m.mark(0, e1);
        let e2 = m.next_epoch();
        assert!(!m.is_visited(0, e2), "new epoch resets visibility");
        assert!(m.is_visited(0, e1), "old epoch still readable");
    }

    #[test]
    fn parallel_claim_unique_winner() {
        use rayon::prelude::*;
        let mut m = VisitMarks::new(1);
        let e = m.next_epoch();
        let winners: usize = (0..1000)
            .into_par_iter()
            .map(|_| usize::from(m.try_claim(0, e)))
            .sum();
        assert_eq!(winners, 1);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(VisitMarks::new(7).len(), 7);
        assert!(VisitMarks::new(0).is_empty());
    }

    #[test]
    fn epoch_rollover_resets_marks() {
        let mut m = VisitMarks::new(3);
        let e = m.next_epoch();
        m.mark(1, e);
        assert_eq!(m.rollovers(), 0);

        m.epoch = u64::MAX; // simulate 2⁶⁴−1 traversals
        m.mark(2, u64::MAX);
        let e2 = m.next_epoch();
        assert_eq!(e2, 1, "counting restarts after the wrap");
        assert_eq!(m.rollovers(), 1);
        for v in 0..3 {
            assert!(!m.is_visited(v, e2), "wrap must reset all marks");
        }
        assert!(m.try_claim(2, e2), "vertex marked pre-wrap is claimable");
    }
}
