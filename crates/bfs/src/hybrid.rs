//! Direction-optimized parallel eccentricity BFS (Algorithm 2).
//!
//! Implements the paper's hybrid scheme (§4.6): a data-driven top-down
//! expansion while the frontier is small, switching to a
//! topology-driven bottom-up scan once the frontier exceeds
//! `alpha · |V|` (the paper determined `alpha = 0.1` experimentally),
//! and switching back when the frontier shrinks below the threshold
//! again — "in line with the latest direction-optimized BFS
//! implementations".

use crate::frontier::{expand_bottom_up, expand_top_down_parallel};
use crate::visited::VisitMarks;
use crate::BfsResult;
use fdiam_graph::{CsrGraph, VertexId};

/// Tuning knobs for the hybrid BFS.
#[derive(Clone, Copy, Debug)]
pub struct BfsConfig {
    /// Frontier-size fraction of `|V|` above which the bottom-up step
    /// is used. The paper's value is 0.1.
    pub alpha: f64,
    /// Disable the bottom-up path entirely (pure parallel top-down).
    pub direction_optimized: bool,
    /// Frontiers smaller than this are expanded serially: on
    /// high-diameter inputs (road maps with 30k+ levels) nearly every
    /// frontier holds a handful of vertices, where fork-join overhead
    /// dwarfs the work. The paper observes the same regime ("the BFS
    /// traversals start out with little parallelism", §6.2).
    pub serial_cutoff: usize,
}

impl Default for BfsConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            direction_optimized: true,
            serial_cutoff: 1024,
        }
    }
}

/// Parallel direction-optimized BFS from `source`.
pub fn bfs_eccentricity_hybrid(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
    config: &BfsConfig,
) -> BfsResult {
    let epoch = marks.next_epoch();
    marks.mark(source, epoch);
    let threshold = ((g.num_vertices() as f64) * config.alpha) as usize;
    let mut frontier = vec![source];
    let mut visited = 1usize;
    let mut level = 0u32;
    loop {
        let bottom_up = config.direction_optimized && frontier.len() > threshold;
        let next = if bottom_up {
            expand_bottom_up(g, marks, epoch)
        } else if frontier.len() < config.serial_cutoff {
            crate::frontier::expand_top_down_serial(g, &frontier, marks, epoch)
        } else {
            expand_top_down_parallel(g, &frontier, marks, epoch)
        };
        if next.is_empty() {
            return BfsResult {
                eccentricity: level,
                visited,
                last_frontier: frontier,
            };
        }
        visited += next.len();
        level += 1;
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_eccentricity_serial;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::disjoint_union;
    use fdiam_graph::CsrGraph;

    fn check_matches_serial(g: &CsrGraph, config: &BfsConfig) {
        let mut ms = VisitMarks::new(g.num_vertices());
        let mut mh = VisitMarks::new(g.num_vertices());
        for v in g.vertices() {
            let s = bfs_eccentricity_serial(g, v, &mut ms);
            let h = bfs_eccentricity_hybrid(g, v, &mut mh, config);
            assert_eq!(s.eccentricity, h.eccentricity, "ecc mismatch at {v}");
            assert_eq!(s.visited, h.visited, "visit count mismatch at {v}");
            let mut sf = s.last_frontier;
            let mut hf = h.last_frontier;
            sf.sort_unstable();
            hf.sort_unstable();
            assert_eq!(sf, hf, "frontier mismatch at {v}");
        }
    }

    #[test]
    fn matches_serial_on_shapes() {
        let cfg = BfsConfig::default();
        for g in [
            path(17),
            cycle(12),
            star(20),
            complete(9),
            grid2d(5, 7),
            balanced_tree(3, 3),
            lollipop(6, 5),
        ] {
            check_matches_serial(&g, &cfg);
        }
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let cfg = BfsConfig::default();
        for seed in 0..4 {
            check_matches_serial(&erdos_renyi_gnm(120, 200, seed), &cfg);
            check_matches_serial(&barabasi_albert(150, 3, seed), &cfg);
        }
    }

    #[test]
    fn matches_serial_when_bottom_up_forced() {
        // alpha = 0 forces bottom-up from the very first level
        let cfg = BfsConfig {
            alpha: 0.0,
            serial_cutoff: 0,
            ..BfsConfig::default()
        };
        check_matches_serial(&grid2d(6, 6), &cfg);
        check_matches_serial(&barabasi_albert(100, 4, 1), &cfg);
    }

    #[test]
    fn matches_serial_with_direction_opt_disabled() {
        let cfg = BfsConfig {
            direction_optimized: false,
            ..BfsConfig::default()
        };
        check_matches_serial(&cycle(15), &cfg);
    }

    #[test]
    fn disconnected_graph() {
        let g = disjoint_union(&star(5), &path(4));
        let mut m = VisitMarks::new(9);
        let r = bfs_eccentricity_hybrid(&g, 0, &mut m, &BfsConfig::default());
        assert_eq!(r.eccentricity, 1);
        assert_eq!(r.visited, 5);
    }

    #[test]
    fn isolated_source() {
        let g = CsrGraph::empty(2);
        let mut m = VisitMarks::new(2);
        let r = bfs_eccentricity_hybrid(&g, 1, &mut m, &BfsConfig::default());
        assert_eq!(r.eccentricity, 0);
        assert_eq!(r.visited, 1);
        assert_eq!(r.last_frontier, vec![1]);
    }
}
