//! Direction-optimized parallel eccentricity BFS (Algorithm 2).
//!
//! Implements the paper's hybrid scheme (§4.6): a data-driven top-down
//! expansion while the frontier is small, switching to a
//! topology-driven bottom-up scan once the frontier exceeds
//! `alpha · |V|` (the paper determined `alpha = 0.1` experimentally),
//! and switching back when the frontier shrinks below the threshold
//! again — "in line with the latest direction-optimized BFS
//! implementations".

use crate::frontier::{
    expand_bottom_up, expand_bottom_up_counted, expand_top_down_parallel, frontier_edge_count,
};
use crate::visited::VisitMarks;
use crate::BfsResult;
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::{noop, Event, Observer};

/// Tuning knobs for the hybrid BFS.
#[derive(Clone, Copy, Debug)]
pub struct BfsConfig {
    /// Frontier-size fraction of `|V|` above which the bottom-up step
    /// is used. The paper's value is 0.1.
    pub alpha: f64,
    /// Disable the bottom-up path entirely (pure parallel top-down).
    pub direction_optimized: bool,
    /// Frontiers smaller than this are expanded serially: on
    /// high-diameter inputs (road maps with 30k+ levels) nearly every
    /// frontier holds a handful of vertices, where fork-join overhead
    /// dwarfs the work. The paper observes the same regime ("the BFS
    /// traversals start out with little parallelism", §6.2).
    pub serial_cutoff: usize,
}

impl Default for BfsConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            direction_optimized: true,
            serial_cutoff: 1024,
        }
    }
}

/// Parallel direction-optimized BFS from `source`.
pub fn bfs_eccentricity_hybrid(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
    config: &BfsConfig,
) -> BfsResult {
    bfs_eccentricity_hybrid_observed(g, source, marks, config, noop())
}

/// [`bfs_eccentricity_hybrid`] emitting telemetry to `obs`: lifecycle
/// ([`Event::BfsStart`]/[`Event::BfsEnd`]), epoch rollovers, and — only
/// when [`Observer::wants_bfs_detail`] — per-level frontier sizes,
/// edge-scan counts and direction switches. With the no-op observer the
/// uninstrumented expansion paths run and no events are constructed.
pub fn bfs_eccentricity_hybrid_observed(
    g: &CsrGraph,
    source: VertexId,
    marks: &mut VisitMarks,
    config: &BfsConfig,
    obs: &dyn Observer,
) -> BfsResult {
    let rollovers_before = marks.rollovers();
    let epoch = marks.next_epoch();
    let enabled = obs.enabled();
    if enabled {
        if marks.rollovers() != rollovers_before {
            obs.event(&Event::EpochRollover {
                rollovers: marks.rollovers(),
            });
        }
        obs.event(&Event::BfsStart { source });
    }
    let detail = obs.wants_bfs_detail();
    marks.mark(source, epoch);
    let threshold = ((g.num_vertices() as f64) * config.alpha) as usize;
    let mut frontier = vec![source];
    let mut visited = 1usize;
    let mut level = 0u32;
    let mut was_bottom_up = false;
    loop {
        let bottom_up = config.direction_optimized && frontier.len() > threshold;
        if detail && bottom_up != was_bottom_up {
            obs.event(&Event::DirectionSwitch {
                level: level + 1,
                bottom_up,
            });
        }
        was_bottom_up = bottom_up;
        let (next, edges_scanned) = if bottom_up {
            if detail {
                expand_bottom_up_counted(g, marks, epoch)
            } else {
                (expand_bottom_up(g, marks, epoch), 0)
            }
        } else {
            // Top-down scans exactly the frontier's incident edges, so
            // the count is free — no counted expansion variant needed.
            let edges = if detail {
                frontier_edge_count(g, &frontier)
            } else {
                0
            };
            let next = if frontier.len() < config.serial_cutoff {
                crate::frontier::expand_top_down_serial(g, &frontier, marks, epoch)
            } else {
                expand_top_down_parallel(g, &frontier, marks, epoch)
            };
            (next, edges)
        };
        if detail {
            obs.event(&Event::BfsLevel {
                level: level + 1,
                frontier: next.len(),
                edges_scanned,
                bottom_up,
            });
        }
        if next.is_empty() {
            if enabled {
                obs.event(&Event::BfsEnd {
                    source,
                    eccentricity: level,
                    visited,
                });
            }
            return BfsResult {
                eccentricity: level,
                visited,
                last_frontier: frontier,
            };
        }
        visited += next.len();
        level += 1;
        frontier = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_eccentricity_serial;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::disjoint_union;
    use fdiam_graph::CsrGraph;

    fn check_matches_serial(g: &CsrGraph, config: &BfsConfig) {
        let mut ms = VisitMarks::new(g.num_vertices());
        let mut mh = VisitMarks::new(g.num_vertices());
        for v in g.vertices() {
            let s = bfs_eccentricity_serial(g, v, &mut ms);
            let h = bfs_eccentricity_hybrid(g, v, &mut mh, config);
            assert_eq!(s.eccentricity, h.eccentricity, "ecc mismatch at {v}");
            assert_eq!(s.visited, h.visited, "visit count mismatch at {v}");
            let mut sf = s.last_frontier;
            let mut hf = h.last_frontier;
            sf.sort_unstable();
            hf.sort_unstable();
            assert_eq!(sf, hf, "frontier mismatch at {v}");
        }
    }

    #[test]
    fn matches_serial_on_shapes() {
        let cfg = BfsConfig::default();
        for g in [
            path(17),
            cycle(12),
            star(20),
            complete(9),
            grid2d(5, 7),
            balanced_tree(3, 3),
            lollipop(6, 5),
        ] {
            check_matches_serial(&g, &cfg);
        }
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let cfg = BfsConfig::default();
        for seed in 0..4 {
            check_matches_serial(&erdos_renyi_gnm(120, 200, seed), &cfg);
            check_matches_serial(&barabasi_albert(150, 3, seed), &cfg);
        }
    }

    #[test]
    fn matches_serial_when_bottom_up_forced() {
        // alpha = 0 forces bottom-up from the very first level
        let cfg = BfsConfig {
            alpha: 0.0,
            serial_cutoff: 0,
            ..BfsConfig::default()
        };
        check_matches_serial(&grid2d(6, 6), &cfg);
        check_matches_serial(&barabasi_albert(100, 4, 1), &cfg);
    }

    #[test]
    fn matches_serial_with_direction_opt_disabled() {
        let cfg = BfsConfig {
            direction_optimized: false,
            ..BfsConfig::default()
        };
        check_matches_serial(&cycle(15), &cfg);
    }

    #[test]
    fn disconnected_graph() {
        let g = disjoint_union(&star(5), &path(4));
        let mut m = VisitMarks::new(9);
        let r = bfs_eccentricity_hybrid(&g, 0, &mut m, &BfsConfig::default());
        assert_eq!(r.eccentricity, 1);
        assert_eq!(r.visited, 5);
    }

    #[test]
    fn isolated_source() {
        let g = CsrGraph::empty(2);
        let mut m = VisitMarks::new(2);
        let r = bfs_eccentricity_hybrid(&g, 1, &mut m, &BfsConfig::default());
        assert_eq!(r.eccentricity, 0);
        assert_eq!(r.visited, 1);
        assert_eq!(r.last_frontier, vec![1]);
    }

    use std::sync::Mutex;

    struct Recorder(Mutex<Vec<String>>);

    impl Recorder {
        fn new() -> Self {
            Recorder(Mutex::new(Vec::new()))
        }
        fn names(&self) -> Vec<String> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Observer for Recorder {
        fn event(&self, e: &Event<'_>) {
            let tag = match *e {
                Event::BfsLevel {
                    level,
                    frontier,
                    edges_scanned,
                    bottom_up,
                } => format!("level {level} f={frontier} e={edges_scanned} bu={bottom_up}"),
                Event::DirectionSwitch { level, bottom_up } => {
                    format!("switch {level} bu={bottom_up}")
                }
                _ => e.name().to_string(),
            };
            self.0.lock().unwrap().push(tag);
        }
    }

    #[test]
    fn observed_emits_lifecycle_and_levels() {
        let g = path(4); // 0-1-2-3
        let mut m = VisitMarks::new(4);
        let r = Recorder::new();
        // Pure top-down so the per-level edge counts are the frontier
        // degree sums (on 4 vertices the 10 % threshold is 0 and the
        // default config would go bottom-up immediately).
        let cfg = BfsConfig {
            direction_optimized: false,
            ..BfsConfig::default()
        };
        let res = bfs_eccentricity_hybrid_observed(&g, 0, &mut m, &cfg, &r);
        assert_eq!(res.eccentricity, 3);
        assert_eq!(
            r.names(),
            vec![
                "bfs_start",
                "level 1 f=1 e=1 bu=false", // {0} scans 1 edge → {1}
                "level 2 f=1 e=2 bu=false", // {1} scans 2 edges → {2}
                "level 3 f=1 e=2 bu=false",
                "level 4 f=0 e=1 bu=false", // final empty expansion
                "bfs_end",
            ]
        );
    }

    #[test]
    fn observed_reports_direction_switch_on_star() {
        // From the center of star(200): level 1 is all 199 leaves,
        // far above the 10 % threshold, so the final (empty) expansion
        // runs bottom-up — one direction switch.
        let g = star(200);
        let mut m = VisitMarks::new(200);
        let r = Recorder::new();
        let res = bfs_eccentricity_hybrid_observed(&g, 0, &mut m, &BfsConfig::default(), &r);
        assert_eq!(res.eccentricity, 1);
        let names = r.names();
        assert!(
            names
                .iter()
                .any(|n| n.starts_with("switch ") && n.ends_with("bu=true")),
            "expected a bottom-up switch, got {names:?}"
        );
    }

    #[test]
    fn observed_with_noop_matches_unobserved() {
        let g = barabasi_albert(150, 3, 2);
        let mut m1 = VisitMarks::new(150);
        let mut m2 = VisitMarks::new(150);
        let cfg = BfsConfig::default();
        for v in g.vertices() {
            let a = bfs_eccentricity_hybrid(&g, v, &mut m1, &cfg);
            let b = bfs_eccentricity_hybrid_observed(&g, v, &mut m2, &cfg, fdiam_obs::noop());
            assert_eq!(a.eccentricity, b.eccentricity);
            assert_eq!(a.visited, b.visited);
        }
    }
}
