//! Direction-optimized parallel eccentricity BFS (Algorithm 2).
//!
//! Implements the paper's hybrid scheme (§4.6) on a dual-representation
//! frontier: sparse `Vec<VertexId>` worklists for top-down levels, a
//! dense atomic bitmap for bottom-up sweeps, and O(n/64 + |frontier|)
//! conversions between the two. All transient state lives in a caller
//! supplied [`BfsScratch`], so repeated traversals (the eccentricity
//! loops in `fdiam-core`) allocate nothing in steady state.
//!
//! The direction switch defaults to the Beamer-style α/β heuristic
//! ([`SwitchHeuristic::Adaptive`]): go bottom-up when the frontier's
//! out-degree sum exceeds `1/α` of the unexplored edges, and return
//! top-down once the frontier shrinks below `|V|/β`. The paper's
//! simpler fixed 10 %-of-`|V|` rule remains available as
//! [`SwitchHeuristic::FixedFraction`] (see [`BfsConfig::paper_fidelity`])
//! for reproduction-fidelity runs of Table 2 / Fig. 6.

use crate::frontier::{
    expand_top_down_into_bitmap, expand_top_down_serial_into, sweep_bottom_up_parallel,
    sweep_bottom_up_serial,
};
use crate::scratch::{BfsScratch, ScratchParts};
use crate::BfsSummary;
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::{noop, CancelToken, Event, Observer, SpanId};

/// Default α of [`SwitchHeuristic::Adaptive`]: switch top-down →
/// bottom-up when the frontier's out-degree sum exceeds `m_u / α`
/// (Beamer et al. suggest 14–15 for low-diameter graphs).
pub const DEFAULT_ALPHA: f64 = 14.0;

/// Default β of [`SwitchHeuristic::Adaptive`]: switch bottom-up →
/// top-down when the frontier shrinks below `|V| / β`.
pub const DEFAULT_BETA: f64 = 24.0;

/// When to run a level bottom-up instead of top-down.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SwitchHeuristic {
    /// Beamer-style adaptive rule on edge counts: top-down → bottom-up
    /// when `m_f > m_u / alpha` (the frontier would scan more edges
    /// than a full bottom-up sweep is likely to), bottom-up → top-down
    /// when `n_f < n / beta` (the frontier is too small for a whole
    /// graph scan to pay off). `m_u` is the running count of arcs out
    /// of unvisited vertices.
    Adaptive {
        /// Top-down → bottom-up edge-ratio threshold.
        alpha: f64,
        /// Bottom-up → top-down frontier-fraction divisor.
        beta: f64,
    },
    /// The paper's rule (§4.6): bottom-up whenever the frontier holds
    /// more than `threshold · |V|` vertices ("the best performance was
    /// achieved with a threshold of 10 %").
    FixedFraction {
        /// Frontier-size fraction of `|V|`; the paper's value is 0.1.
        threshold: f64,
    },
}

impl SwitchHeuristic {
    /// Decide the direction of the next level from the current frontier
    /// size `n_f`, its out-degree sum `m_f`, the unexplored-arc count
    /// `m_u`, and the direction of the previous level.
    #[inline]
    pub fn decide(&self, n: usize, n_f: usize, m_f: u64, m_u: u64, was_bottom_up: bool) -> bool {
        match *self {
            SwitchHeuristic::Adaptive { alpha, beta } => {
                if was_bottom_up {
                    // Stay bottom-up until the frontier is small again.
                    (n_f as f64) >= (n as f64) / beta
                } else {
                    (m_f as f64) > (m_u as f64) / alpha
                }
            }
            SwitchHeuristic::FixedFraction { threshold } => n_f > ((n as f64) * threshold) as usize,
        }
    }
}

impl Default for SwitchHeuristic {
    fn default() -> Self {
        SwitchHeuristic::Adaptive {
            alpha: DEFAULT_ALPHA,
            beta: DEFAULT_BETA,
        }
    }
}

/// Tuning knobs for the hybrid BFS.
#[derive(Clone, Copy, Debug)]
pub struct BfsConfig {
    /// Direction-switch policy; defaults to the adaptive α/β rule.
    pub heuristic: SwitchHeuristic,
    /// Disable the bottom-up path entirely (pure top-down).
    pub direction_optimized: bool,
    /// Frontiers smaller than this are expanded serially: on
    /// high-diameter inputs (road maps with 30k+ levels) nearly every
    /// frontier holds a handful of vertices, where fork-join overhead
    /// dwarfs the work. The paper observes the same regime ("the BFS
    /// traversals start out with little parallelism", §6.2).
    pub serial_cutoff: usize,
}

impl Default for BfsConfig {
    fn default() -> Self {
        Self {
            heuristic: SwitchHeuristic::default(),
            direction_optimized: true,
            serial_cutoff: 1024,
        }
    }
}

impl BfsConfig {
    /// The configuration matching the paper's description verbatim:
    /// fixed 10 % switch threshold, no adaptive rule. Used for
    /// reproduction-fidelity runs of Table 2 / Fig. 6.
    pub fn paper_fidelity() -> Self {
        Self {
            heuristic: SwitchHeuristic::FixedFraction { threshold: 0.1 },
            ..Self::default()
        }
    }
}

/// Parallel direction-optimized BFS from `source`, using (and reusing)
/// `scratch` for all transient state. The full last frontier is
/// available afterwards via [`BfsScratch::last_frontier`].
pub fn bfs_eccentricity_hybrid(
    g: &CsrGraph,
    source: VertexId,
    scratch: &mut BfsScratch,
    config: &BfsConfig,
) -> BfsSummary {
    bfs_eccentricity_hybrid_observed(g, source, scratch, config, noop())
}

/// [`bfs_eccentricity_hybrid`] emitting telemetry to `obs`: lifecycle
/// ([`Event::BfsStart`]/[`Event::BfsEnd`]), epoch rollovers, and — only
/// when [`Observer::wants_bfs_detail`] — per-level frontier sizes,
/// edge-scan counts and direction switches. With the no-op observer no
/// events are constructed.
pub fn bfs_eccentricity_hybrid_observed(
    g: &CsrGraph,
    source: VertexId,
    scratch: &mut BfsScratch,
    config: &BfsConfig,
    obs: &dyn Observer,
) -> BfsSummary {
    kernel(g, source, scratch, config, obs, true, None).expect("no cancel token")
}

/// [`bfs_eccentricity_hybrid_observed`] polling `cancel` at every level
/// barrier. Returns `None` as soon as cancellation (explicit or by
/// deadline) is observed — within one BFS level of the request — in
/// which case the scratch state is mid-traversal and no summary exists.
pub fn bfs_eccentricity_hybrid_cancellable(
    g: &CsrGraph,
    source: VertexId,
    scratch: &mut BfsScratch,
    config: &BfsConfig,
    obs: &dyn Observer,
    cancel: &CancelToken,
) -> Option<BfsSummary> {
    kernel(g, source, scratch, config, obs, true, Some(cancel))
}

/// The shared direction-optimized kernel. `parallel` selects rayon
/// expansion/sweeps (the hybrid entry points) or their sequential twins
/// ([`crate::serial_hybrid`]); the frontier state machine is identical.
/// `cancel` is polled once per level (not per vertex — the check is two
/// atomic loads and must stay off the inner loops); observing it
/// abandons the traversal and returns `None`.
///
/// Representation protocol: the epoch marks are authoritative for
/// "visited". The dense `visited_bm` mirror is rebuilt from the marks
/// at each top-down→bottom-up switch and merged forward while sweeps
/// continue; sweeps publish the next frontier into `next_bm` with
/// full-word stores (which also erase its stale content) and the dense
/// double buffer is swapped at the level barrier. Top-down levels keep
/// the frontier sparse, converting from dense first when the previous
/// level ran bottom-up. On exit the last non-empty frontier is always
/// materialized into the sparse buffer.
pub(crate) fn kernel(
    g: &CsrGraph,
    source: VertexId,
    scratch: &mut BfsScratch,
    config: &BfsConfig,
    obs: &dyn Observer,
    parallel: bool,
    cancel: Option<&CancelToken>,
) -> Option<BfsSummary> {
    let ScratchParts {
        marks,
        cur,
        next,
        visited_bm,
        cur_bm,
        next_bm,
        load,
        ..
    } = scratch.parts();
    let rollovers_before = marks.rollovers();
    let epoch = marks.next_epoch();
    let enabled = obs.enabled();
    // One span per traversal, tagging every per-level event; disabled
    // observers skip the id allocation entirely.
    let span = if enabled {
        SpanId::fresh()
    } else {
        SpanId::NONE
    };
    if enabled {
        if marks.rollovers() != rollovers_before {
            obs.event(&Event::EpochRollover {
                rollovers: marks.rollovers(),
            });
        }
        obs.event(&Event::BfsStart { source, span });
    }
    let detail = obs.wants_bfs_detail();
    marks.mark(source, epoch);
    cur.clear();
    cur.push(source);
    let n = g.num_vertices();
    let src_deg = g.neighbors(source).len() as u64;
    // Arcs out of unvisited vertices, maintained by subtracting each new
    // frontier's out-degree sum (computed for free during expansion).
    let mut m_u = (g.num_arcs() as u64).saturating_sub(src_deg);
    let mut m_f = src_deg;
    let mut n_f = 1usize;
    let mut visited = 1usize;
    let mut level = 0u32;
    let mut was_bottom_up = false;
    // True while the current frontier lives in `cur`; false while it
    // lives in `cur_bm` (consecutive bottom-up levels never convert).
    let mut sparse = true;
    loop {
        // An aborted traversal emits no BfsEnd: the lifecycle event
        // marks *completed* eccentricity computations (bfs.traversals).
        if cancel.is_some_and(|token| token.is_cancelled()) {
            return None;
        }
        let bottom_up =
            config.direction_optimized && config.heuristic.decide(n, n_f, m_f, m_u, was_bottom_up);
        if detail && bottom_up != was_bottom_up {
            obs.event(&Event::DirectionSwitch {
                level: level + 1,
                bottom_up,
                span,
            });
        }
        let (next_n, next_m, edges_scanned) = if bottom_up {
            if !was_bottom_up {
                visited_bm.fill_from_marks(marks, epoch);
            }
            let s = if parallel {
                sweep_bottom_up_parallel(g, marks, epoch, visited_bm, next_bm, load)
            } else {
                sweep_bottom_up_serial(g, marks, epoch, visited_bm, next_bm)
            };
            if s.count > 0 {
                visited_bm.merge(next_bm);
                std::mem::swap(cur_bm, next_bm);
                sparse = false;
            }
            (s.count, s.degree_sum, s.edges_scanned)
        } else {
            if !sparse {
                cur.clear();
                cur_bm.append_sparse_into(cur);
                sparse = true;
            }
            // Top-down scans exactly the frontier's incident edges, so
            // the scan count is the tracked degree sum — free.
            let edges = m_f;
            let (count, deg) = if parallel && n_f >= config.serial_cutoff {
                next_bm.clear();
                let (count, deg) = expand_top_down_into_bitmap(g, cur, marks, epoch, next_bm, load);
                next.clear();
                next_bm.append_sparse_into(next);
                (count, deg)
            } else {
                let deg = expand_top_down_serial_into(g, cur, marks, epoch, next);
                (next.len(), deg)
            };
            if count > 0 {
                std::mem::swap(cur, next);
            }
            (count, deg, edges)
        };
        was_bottom_up = bottom_up;
        if detail {
            obs.event(&Event::BfsLevel {
                level: level + 1,
                frontier: next_n,
                edges_scanned,
                bottom_up,
                span,
            });
        }
        if next_n == 0 {
            if !sparse {
                cur.clear();
                cur_bm.append_sparse_into(cur);
            }
            let farthest = cur.iter().copied().min().unwrap_or(source);
            if enabled {
                obs.event(&Event::BfsEnd {
                    source,
                    eccentricity: level,
                    visited,
                    span,
                });
            }
            return Some(BfsSummary {
                eccentricity: level,
                visited,
                farthest,
            });
        }
        visited += next_n;
        m_u = m_u.saturating_sub(next_m);
        m_f = next_m;
        n_f = next_n;
        level += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_eccentricity_serial;
    use crate::visited::VisitMarks;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::disjoint_union;
    use fdiam_graph::CsrGraph;

    fn check_matches_serial(g: &CsrGraph, config: &BfsConfig) {
        let mut ms = VisitMarks::new(g.num_vertices());
        let mut scratch = BfsScratch::new(g.num_vertices());
        for v in g.vertices() {
            let s = bfs_eccentricity_serial(g, v, &mut ms);
            let h = bfs_eccentricity_hybrid(g, v, &mut scratch, config);
            assert_eq!(s.eccentricity, h.eccentricity, "ecc mismatch at {v}");
            assert_eq!(s.visited, h.visited, "visit count mismatch at {v}");
            let mut sf = s.last_frontier;
            sf.sort_unstable();
            let mut hf = scratch.last_frontier().to_vec();
            hf.sort_unstable();
            assert_eq!(sf, hf, "frontier mismatch at {v}");
            assert_eq!(
                h.farthest, sf[0],
                "farthest must be the min-id frontier vertex"
            );
        }
    }

    #[test]
    fn matches_serial_on_shapes() {
        let cfg = BfsConfig::default();
        for g in [
            path(17),
            cycle(12),
            star(20),
            complete(9),
            grid2d(5, 7),
            balanced_tree(3, 3),
            lollipop(6, 5),
        ] {
            check_matches_serial(&g, &cfg);
        }
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let cfg = BfsConfig::default();
        for seed in 0..4 {
            check_matches_serial(&erdos_renyi_gnm(120, 200, seed), &cfg);
            check_matches_serial(&barabasi_albert(150, 3, seed), &cfg);
        }
    }

    #[test]
    fn paper_fidelity_matches_serial() {
        let cfg = BfsConfig::paper_fidelity();
        for g in [grid2d(8, 8), star(50), barabasi_albert(200, 3, 3)] {
            check_matches_serial(&g, &cfg);
        }
    }

    #[test]
    fn matches_serial_when_bottom_up_forced() {
        // threshold = 0 forces bottom-up from the very first level
        let cfg = BfsConfig {
            heuristic: SwitchHeuristic::FixedFraction { threshold: 0.0 },
            serial_cutoff: 0,
            ..BfsConfig::default()
        };
        check_matches_serial(&grid2d(6, 6), &cfg);
        check_matches_serial(&barabasi_albert(100, 4, 1), &cfg);
    }

    #[test]
    fn matches_serial_with_parallel_top_down_forced() {
        // serial_cutoff = 0 with bottom-up disabled: every level takes
        // the bitmap-claiming parallel top-down path.
        let cfg = BfsConfig {
            direction_optimized: false,
            serial_cutoff: 0,
            ..BfsConfig::default()
        };
        check_matches_serial(&grid2d(6, 7), &cfg);
        check_matches_serial(&erdos_renyi_gnm(150, 300, 5), &cfg);
    }

    #[test]
    fn matches_serial_with_direction_opt_disabled() {
        let cfg = BfsConfig {
            direction_optimized: false,
            ..BfsConfig::default()
        };
        check_matches_serial(&cycle(15), &cfg);
    }

    #[test]
    fn disconnected_graph() {
        let g = disjoint_union(&star(5), &path(4));
        let mut s = BfsScratch::new(9);
        let r = bfs_eccentricity_hybrid(&g, 0, &mut s, &BfsConfig::default());
        assert_eq!(r.eccentricity, 1);
        assert_eq!(r.visited, 5);
    }

    #[test]
    fn isolated_source() {
        let g = CsrGraph::empty(2);
        let mut s = BfsScratch::new(2);
        let r = bfs_eccentricity_hybrid(&g, 1, &mut s, &BfsConfig::default());
        assert_eq!(r.eccentricity, 0);
        assert_eq!(r.visited, 1);
        assert_eq!(r.farthest, 1);
        assert_eq!(s.last_frontier(), &[1]);
    }

    #[test]
    fn adaptive_decide_switches_both_ways() {
        let h = SwitchHeuristic::default();
        // Hub-dominated frontier: m_f well above m_u/α → bottom-up.
        assert!(h.decide(1000, 10, 5000, 10_000, false));
        // Sparse frontier with most edges unexplored → stay top-down.
        assert!(!h.decide(1000, 10, 50, 100_000, false));
        // Bottom-up persists while the frontier is large...
        assert!(h.decide(1000, 500, 1, 1, true));
        // ...and yields once it shrinks below n/β.
        assert!(!h.decide(1000, 10, 1, 1, true));
    }

    #[test]
    fn fixed_fraction_keeps_truncation_semantics() {
        let h = SwitchHeuristic::FixedFraction { threshold: 0.1 };
        // 10 % of 35 truncates to 3: a 4-vertex frontier switches.
        assert!(h.decide(35, 4, 0, 0, false));
        assert!(!h.decide(35, 3, 0, 0, false));
        // threshold 0 switches on any non-empty frontier.
        let h0 = SwitchHeuristic::FixedFraction { threshold: 0.0 };
        assert!(h0.decide(10, 1, 0, 0, false));
    }

    use std::sync::Mutex;

    struct Recorder(Mutex<Vec<String>>);

    impl Recorder {
        fn new() -> Self {
            Recorder(Mutex::new(Vec::new()))
        }
        fn names(&self) -> Vec<String> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Observer for Recorder {
        fn event(&self, e: &Event<'_>) {
            let tag = match *e {
                Event::BfsLevel {
                    level,
                    frontier,
                    edges_scanned,
                    bottom_up,
                    ..
                } => format!("level {level} f={frontier} e={edges_scanned} bu={bottom_up}"),
                Event::DirectionSwitch {
                    level, bottom_up, ..
                } => {
                    format!("switch {level} bu={bottom_up}")
                }
                _ => e.name().to_string(),
            };
            self.0.lock().unwrap().push(tag);
        }
    }

    #[test]
    fn observed_emits_lifecycle_and_levels() {
        let g = path(4); // 0-1-2-3
        let mut s = BfsScratch::new(4);
        let r = Recorder::new();
        // Pure top-down so the per-level edge counts are the frontier
        // degree sums.
        let cfg = BfsConfig {
            direction_optimized: false,
            ..BfsConfig::default()
        };
        let res = bfs_eccentricity_hybrid_observed(&g, 0, &mut s, &cfg, &r);
        assert_eq!(res.eccentricity, 3);
        assert_eq!(
            r.names(),
            vec![
                "bfs_start",
                "level 1 f=1 e=1 bu=false", // {0} scans 1 edge → {1}
                "level 2 f=1 e=2 bu=false", // {1} scans 2 edges → {2}
                "level 3 f=1 e=2 bu=false",
                "level 4 f=0 e=1 bu=false", // final empty expansion
                "bfs_end",
            ]
        );
    }

    #[test]
    fn observed_reports_direction_switch_on_star() {
        // From the center of star(200): the center's out-degree sum
        // (199) dwarfs m_u/α, so the first expansion already runs
        // bottom-up — one direction switch.
        let g = star(200);
        let mut s = BfsScratch::new(200);
        let r = Recorder::new();
        let res = bfs_eccentricity_hybrid_observed(&g, 0, &mut s, &BfsConfig::default(), &r);
        assert_eq!(res.eccentricity, 1);
        let names = r.names();
        assert!(
            names
                .iter()
                .any(|n| n.starts_with("switch ") && n.ends_with("bu=true")),
            "expected a bottom-up switch, got {names:?}"
        );
    }

    #[test]
    fn cancellable_with_live_token_matches_observed() {
        let g = grid2d(9, 11);
        let mut s1 = BfsScratch::new(99);
        let mut s2 = BfsScratch::new(99);
        let cfg = BfsConfig::default();
        let token = fdiam_obs::CancelToken::new();
        for v in g.vertices() {
            let a = bfs_eccentricity_hybrid(&g, v, &mut s1, &cfg);
            let b = bfs_eccentricity_hybrid_cancellable(
                &g,
                v,
                &mut s2,
                &cfg,
                fdiam_obs::noop(),
                &token,
            )
            .expect("live token never cancels");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pre_cancelled_token_aborts_before_any_level() {
        let g = path(50);
        let mut s = BfsScratch::new(50);
        let token = fdiam_obs::CancelToken::new();
        token.cancel();
        let r = Recorder::new();
        let out =
            bfs_eccentricity_hybrid_cancellable(&g, 0, &mut s, &BfsConfig::default(), &r, &token);
        assert!(out.is_none());
        // BfsStart fires (the traversal was admitted) but no level ran
        // and no BfsEnd marks it complete.
        let names = r.names();
        assert!(names.iter().all(|n| !n.starts_with("level")), "{names:?}");
        assert!(!names.iter().any(|n| n == "bfs_end"), "{names:?}");
    }

    /// Observer that cancels the token the moment a given level is
    /// reported — proving the kernel re-polls at every level barrier.
    struct CancelAtLevel {
        token: fdiam_obs::CancelToken,
        at: u32,
        seen: Mutex<u32>,
    }

    impl Observer for CancelAtLevel {
        fn event(&self, e: &Event<'_>) {
            if let Event::BfsLevel { level, .. } = *e {
                *self.seen.lock().unwrap() = level;
                if level == self.at {
                    self.token.cancel();
                }
            }
        }
        fn wants_bfs_detail(&self) -> bool {
            true
        }
    }

    #[test]
    fn mid_traversal_cancel_stops_at_the_next_level_barrier() {
        let g = path(500); // eccentricity 499 from vertex 0: many levels
        let mut s = BfsScratch::new(500);
        let obs = CancelAtLevel {
            token: fdiam_obs::CancelToken::new(),
            at: 3,
            seen: Mutex::new(0),
        };
        let token = obs.token.clone();
        let out =
            bfs_eccentricity_hybrid_cancellable(&g, 0, &mut s, &BfsConfig::default(), &obs, &token);
        assert!(out.is_none(), "cancelled traversal must not complete");
        let last = *obs.seen.lock().unwrap();
        assert_eq!(
            last, 3,
            "exactly the cancelling level runs; the next barrier aborts"
        );
    }

    #[test]
    fn observed_with_noop_matches_unobserved() {
        let g = barabasi_albert(150, 3, 2);
        let mut s1 = BfsScratch::new(150);
        let mut s2 = BfsScratch::new(150);
        let cfg = BfsConfig::default();
        for v in g.vertices() {
            let a = bfs_eccentricity_hybrid(&g, v, &mut s1, &cfg);
            let b = bfs_eccentricity_hybrid_observed(&g, v, &mut s2, &cfg, fdiam_obs::noop());
            assert_eq!(a, b);
        }
    }
}
