//! Bit-parallel multi-source BFS: up to 64 sources per traversal, one
//! `u64` lane word per vertex (ROADMAP item 4).
//!
//! Every code in this repo spends its time in near-identical BFS
//! sweeps; Magnien–Latapy–Habib observe that on massive sparse graphs
//! the sweep *count* dominates. Packing 64 sources into one traversal
//! amortizes the edge scan: bit `k` of a vertex's lane word means
//! "visited by source `k`", and one pass over a frontier vertex's
//! neighbor list advances **all** lanes whose frontiers contain it with
//! a single `OR`. On small-world graphs the per-source frontiers
//! overlap heavily after two or three levels, so most edges are
//! scanned once instead of 64 times; on high-diameter grids the lanes
//! spread across levels and the sharing shrinks — which is exactly the
//! serial-vs-batched trade-off `bench ecc_sweeps` measures.
//!
//! The traversal is level-synchronous over three per-vertex word
//! arrays living in the [`BfsScratch`] arena (`lane_visited`,
//! `lane_cur`, `lane_next`) plus the arena's sparse worklists; the
//! per-level frontier is re-sorted into ascending id order through the
//! arena's dense [`FrontierBitmap`](crate::bitmap::FrontierBitmap), which
//! makes the farthest-vertex tie-break (min id at the final level)
//! deterministic and identical to the serial kernels' `BfsSummary`
//! convention. Steady-state traversals perform **zero** heap
//! allocation (asserted in `tests/scratch_alloc.rs`).
//!
//! Results are bit-for-bit identical to running
//! [`bfs_distances_serial`](crate::distances::bfs_distances_serial)
//! once per source: BFS levels don't depend on visit order.

use crate::distances::UNREACHABLE;
use crate::scratch::BfsScratch;
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::CancelToken;

/// Lane capacity of one traversal: the width of a `u64` word.
pub const MAX_LANES: usize = 64;

/// Per-source outcome of one bit-parallel traversal. Fixed-size arrays
/// so the summary lives on the stack; entries `lanes..` are unused.
#[derive(Clone, Copy, Debug)]
pub struct LaneBatchSummary {
    /// Number of sources packed into the traversal (`1..=64`).
    pub lanes: usize,
    /// `ecc[k]` = eccentricity of `sources[k]` within its component.
    pub ecc: [u32; MAX_LANES],
    /// `farthest[k]` = smallest-id vertex at distance `ecc[k]` from
    /// `sources[k]` — the same min-id tie-break as
    /// [`BfsSummary::farthest`](crate::BfsSummary).
    pub farthest: [VertexId; MAX_LANES],
    /// `visited[k]` = vertices reached by lane `k` (incl. the source).
    pub visited: [u32; MAX_LANES],
}

/// Eccentricities of up to 64 sources in one traversal.
///
/// # Panics
/// Panics when `sources` is empty, longer than 64, contains an
/// out-of-range id, or `scratch` is not sized for `g`.
pub fn bp64_eccentricities(
    g: &CsrGraph,
    sources: &[VertexId],
    scratch: &mut BfsScratch,
) -> LaneBatchSummary {
    run(g, sources, scratch, None, None).expect("no cancel token")
}

/// [`bp64_eccentricities`] polling `cancel` at every level barrier —
/// the same granularity as the single-source hybrid kernels. Returns
/// `None` when cancelled; the scratch arena is left reusable.
pub fn bp64_eccentricities_cancellable(
    g: &CsrGraph,
    sources: &[VertexId],
    scratch: &mut BfsScratch,
    cancel: &CancelToken,
) -> Option<LaneBatchSummary> {
    run(g, sources, scratch, None, Some(cancel))
}

/// Full distance matrix variant: `dist` is resized to
/// `sources.len() * n` and filled lane-major — row `k`
/// (`dist[k*n..(k+1)*n]`) is exactly what
/// [`bfs_distances_serial`](crate::distances::bfs_distances_serial)
/// writes for `sources[k]`, [`UNREACHABLE`] included. Reusing one
/// `dist` buffer across batches keeps the loop allocation-free.
pub fn bp64_distances(
    g: &CsrGraph,
    sources: &[VertexId],
    scratch: &mut BfsScratch,
    dist: &mut Vec<u32>,
) -> LaneBatchSummary {
    run(g, sources, scratch, Some(dist), None).expect("no cancel token")
}

/// [`bp64_distances`] with level-barrier cancellation. On `None` the
/// contents of `dist` are unspecified.
pub fn bp64_distances_cancellable(
    g: &CsrGraph,
    sources: &[VertexId],
    scratch: &mut BfsScratch,
    dist: &mut Vec<u32>,
    cancel: &CancelToken,
) -> Option<LaneBatchSummary> {
    run(g, sources, scratch, Some(dist), Some(cancel))
}

fn run(
    g: &CsrGraph,
    sources: &[VertexId],
    scratch: &mut BfsScratch,
    dist: Option<&mut Vec<u32>>,
    cancel: Option<&CancelToken>,
) -> Option<LaneBatchSummary> {
    let n = g.num_vertices();
    let lanes = sources.len();
    assert!(
        (1..=MAX_LANES).contains(&lanes),
        "need 1..=64 sources, got {lanes}"
    );
    assert_eq!(scratch.len(), n, "scratch not sized for this graph");
    assert!(
        sources.iter().all(|&s| (s as usize) < n),
        "source out of range"
    );

    let parts = scratch.parts();
    let (lane_visited, lane_cur, lane_next) = (parts.lane_visited, parts.lane_cur, parts.lane_next);
    let (cur, next, next_bm) = (parts.cur, parts.next, parts.next_bm);
    // Lazy growth to the arena's vertex count; `lane_cur`/`lane_next`
    // are all-zero between traversals (restored below even on the
    // cancel path), so only the visited words need the O(n) reset.
    for lane in [&mut *lane_visited, &mut *lane_cur, &mut *lane_next] {
        if lane.len() != n {
            lane.clear();
            lane.resize(n, 0);
        }
    }
    lane_visited.fill(0);

    let mut summary = LaneBatchSummary {
        lanes,
        ecc: [0; MAX_LANES],
        farthest: [0; MAX_LANES],
        visited: [0; MAX_LANES],
    };
    let mut dist = dist;
    if let Some(d) = dist.as_mut() {
        d.clear();
        d.resize(lanes * n, UNREACHABLE);
    }

    cur.clear();
    next.clear();
    for (k, &s) in sources.iter().enumerate() {
        let bit = 1u64 << k;
        summary.farthest[k] = s;
        summary.visited[k] = 1;
        if let Some(d) = dist.as_deref_mut() {
            d[k * n + s as usize] = 0;
        }
        lane_visited[s as usize] |= bit;
        if lane_cur[s as usize] == 0 {
            cur.push(s);
        }
        lane_cur[s as usize] |= bit;
    }

    let mut level = 0u32;
    loop {
        level += 1;
        if cancel.is_some_and(|t| t.is_cancelled()) {
            // Restore the all-zero invariant so the arena is reusable.
            for &v in cur.iter() {
                lane_cur[v as usize] = 0;
            }
            cur.clear();
            return None;
        }

        // Expand: one neighbor-list scan per frontier vertex advances
        // every lane present in its word. Consuming a vertex zeroes its
        // `lane_cur` word, keeping the between-levels invariant.
        for &v in cur.iter() {
            let fv = lane_cur[v as usize];
            for &w in g.neighbors(v) {
                let new = fv & !lane_visited[w as usize];
                if new != 0 {
                    if lane_next[w as usize] == 0 {
                        next.push(w);
                    }
                    lane_next[w as usize] |= new;
                }
            }
            lane_cur[v as usize] = 0;
        }
        if next.is_empty() {
            break;
        }

        // Re-sort the frontier into ascending id order through the
        // dense bitmap: word-granular, allocation-free, and it makes
        // the min-id farthest tie-break fall out of iteration order.
        next_bm.fill_from_sparse(next);
        cur.clear();
        next_bm.append_sparse_into(cur);
        next.clear();

        // Visit: fold the new lane bits into the visited words, record
        // per-lane level/counters, and swap the word roles in place.
        for &w in cur.iter() {
            let nw = lane_next[w as usize];
            lane_visited[w as usize] |= nw;
            lane_cur[w as usize] = nw;
            lane_next[w as usize] = 0;
            let mut bits = nw;
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if summary.ecc[k] != level {
                    // First (= smallest-id, thanks to the sort) vertex
                    // lane k reaches at this level.
                    summary.ecc[k] = level;
                    summary.farthest[k] = w;
                }
                summary.visited[k] += 1;
                if let Some(d) = dist.as_deref_mut() {
                    d[k * n + w as usize] = level;
                }
            }
        }
    }

    Some(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distances::bfs_distances_serial;
    use fdiam_graph::generators::{barabasi_albert, cycle, grid2d, path, star};
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
    use fdiam_graph::CsrGraph;

    fn check_against_serial(g: &CsrGraph, sources: &[VertexId]) {
        let mut scratch = BfsScratch::new(g.num_vertices());
        let mut dist = Vec::new();
        let s = bp64_distances(g, sources, &mut scratch, &mut dist);
        assert_eq!(s.lanes, sources.len());
        let n = g.num_vertices();
        let mut serial = Vec::new();
        for (k, &src) in sources.iter().enumerate() {
            let e = bfs_distances_serial(g, src, &mut serial);
            assert_eq!(s.ecc[k], e, "ecc lane {k} (source {src})");
            assert_eq!(&dist[k * n..(k + 1) * n], &serial[..], "dist row {k}");
            let visited = serial.iter().filter(|&&d| d != UNREACHABLE).count();
            assert_eq!(s.visited[k] as usize, visited, "visited lane {k}");
            let farthest = serial
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d == e)
                .map(|(v, _)| v as VertexId)
                .min()
                .unwrap();
            assert_eq!(s.farthest[k], farthest, "farthest lane {k}");
        }
        // The ecc-only variant agrees with the distances variant.
        let e = bp64_eccentricities(g, sources, &mut scratch);
        assert_eq!(e.ecc[..e.lanes], s.ecc[..s.lanes]);
        assert_eq!(e.farthest[..e.lanes], s.farthest[..s.lanes]);
        assert_eq!(e.visited[..e.lanes], s.visited[..s.lanes]);
    }

    #[test]
    fn matches_serial_on_shapes() {
        for g in [
            path(17),
            cycle(12),
            star(30),
            grid2d(7, 9),
            disjoint_union(&path(6), &cycle(5)),
            with_isolated_vertices(&star(5), 4),
        ] {
            let n = g.num_vertices() as VertexId;
            let all: Vec<VertexId> = (0..n).collect();
            for chunk in all.chunks(MAX_LANES) {
                check_against_serial(&g, chunk);
            }
        }
    }

    #[test]
    fn full_64_lane_batches_and_ragged_tail() {
        let g = barabasi_albert(150, 3, 7); // 150 % 64 = 22: ragged tail
        let all: Vec<VertexId> = (0..150).collect();
        let mut sizes = Vec::new();
        for chunk in all.chunks(MAX_LANES) {
            sizes.push(chunk.len());
            check_against_serial(&g, chunk);
        }
        assert_eq!(sizes, vec![64, 64, 22]);
    }

    #[test]
    fn single_vertex_and_duplicate_sources() {
        check_against_serial(&path(1), &[0]);
        // Duplicate sources are distinct lanes with identical results.
        check_against_serial(&grid2d(4, 4), &[5, 5, 0, 5]);
    }

    #[test]
    fn scratch_reuse_across_batches_and_graph_switch() {
        let g1 = grid2d(6, 6);
        let g2 = barabasi_albert(80, 4, 1);
        let mut scratch = BfsScratch::new(g1.num_vertices());
        bp64_eccentricities(&g1, &[0, 35], &mut scratch);
        // A second traversal reuses the (now stale) lane words.
        check_reuse(&g1, &mut scratch);
        scratch.ensure(g2.num_vertices());
        check_reuse(&g2, &mut scratch);
    }

    fn check_reuse(g: &CsrGraph, scratch: &mut BfsScratch) {
        let s = bp64_eccentricities(g, &[0], scratch);
        let mut dist = Vec::new();
        assert_eq!(s.ecc[0], bfs_distances_serial(g, 0, &mut dist));
    }

    #[test]
    fn cancellable_with_live_token_matches_plain() {
        let g = grid2d(8, 8);
        let token = CancelToken::new();
        let mut scratch = BfsScratch::new(g.num_vertices());
        let a = bp64_eccentricities(&g, &[0, 63], &mut scratch);
        let b = bp64_eccentricities_cancellable(&g, &[0, 63], &mut scratch, &token).unwrap();
        assert_eq!(a.ecc[..2], b.ecc[..2]);
        assert_eq!(a.farthest[..2], b.farthest[..2]);
    }

    #[test]
    fn expired_token_cancels_and_leaves_scratch_reusable() {
        let g = grid2d(10, 10);
        let mut scratch = BfsScratch::new(g.num_vertices());
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        assert!(bp64_eccentricities_cancellable(&g, &[0, 1, 2], &mut scratch, &token).is_none());
        let mut dist = Vec::new();
        let token = CancelToken::new();
        let s = bp64_distances_cancellable(&g, &[0], &mut scratch, &mut dist, &token).unwrap();
        assert_eq!(s.ecc[0], 18);
    }

    #[test]
    #[should_panic(expected = "1..=64 sources")]
    fn rejects_oversized_batches() {
        let g = path(70);
        let mut scratch = BfsScratch::new(70);
        let sources: Vec<VertexId> = (0..65).collect();
        bp64_eccentricities(&g, &sources, &mut scratch);
    }

    #[test]
    #[should_panic(expected = "1..=64 sources")]
    fn rejects_empty_batches() {
        let g = path(3);
        let mut scratch = BfsScratch::new(3);
        bp64_eccentricities(&g, &[], &mut scratch);
    }
}
