//! Result type of a diameter computation.

/// Outcome of a diameter computation.
///
/// For a disconnected graph the diameter is infinite; like the paper's
/// implementation, we flag that and still report the largest
/// eccentricity over all connected components (§1: "our implementation
/// outputs infinity as well as the diameter of the largest connected
/// component").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiameterResult {
    /// Largest eccentricity found in any connected component — the
    /// paper's "CC diameter" column of Table 1. Equals the true
    /// diameter when the graph is connected.
    pub largest_cc_diameter: u32,
    /// Whether the graph is connected (graphs with ≤ 1 vertex count as
    /// connected).
    pub connected: bool,
}

impl DiameterResult {
    /// The finite diameter, or `None` when the graph is disconnected
    /// (diameter ∞).
    pub fn diameter(&self) -> Option<u32> {
        self.connected.then_some(self.largest_cc_diameter)
    }

    /// True when the diameter is infinite (disconnected input).
    pub fn is_infinite(&self) -> bool {
        !self.connected
    }
}

impl std::fmt::Display for DiameterResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.connected {
            write!(f, "{}", self.largest_cc_diameter)
        } else {
            write!(f, "∞ (largest CC diameter: {})", self.largest_cc_diameter)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_result() {
        let r = DiameterResult {
            largest_cc_diameter: 7,
            connected: true,
        };
        assert_eq!(r.diameter(), Some(7));
        assert!(!r.is_infinite());
        assert_eq!(r.to_string(), "7");
    }

    #[test]
    fn disconnected_result() {
        let r = DiameterResult {
            largest_cc_diameter: 3,
            connected: false,
        };
        assert_eq!(r.diameter(), None);
        assert!(r.is_infinite());
        assert!(r.to_string().contains('∞'));
        assert!(r.to_string().contains('3'));
    }
}
