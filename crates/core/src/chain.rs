//! Chain Processing (Algorithm 4) — the paper's second novelty.
//!
//! Every shortest path leaving a degree-1 vertex `x` passes through its
//! single neighbor, so `ecc(x)` strictly dominates the eccentricities
//! along the chain of degree-2 vertices hanging off it. Following the
//! chain of length `s` to its end vertex `w` (the first vertex with
//! degree ≠ 2), §4.3 shows it is safe to remove *all* vertices within
//! `s` steps of `w` from consideration — keeping only `x` active —
//! without computing a single eccentricity. This targets exactly the
//! high-eccentricity periphery that is out of reach of Winnow (which
//! covers the core) and thus complements it.
//!
//! Implementation detail from the paper: the removal reuses Eliminate
//! with the pseudo-bounds `MAX − len .. MAX` where `MAX = INT_MAX − 1`
//! ([`crate::state::PSEUDO_MAX`] here), so chain-removed vertices can
//! never collide with real diameter bounds and never seed an Eliminate
//! extension.

use crate::eliminate::eliminate;
use crate::state::{EccState, Stage, PSEUDO_MAX};
use fdiam_bfs::BfsScratch;
use fdiam_graph::{CsrGraph, VertexId};

/// Runs Chain Processing over the whole graph. Returns the number of
/// degree-1 chains processed.
pub fn chain_processing(g: &CsrGraph, state: &EccState, scratch: &mut BfsScratch) -> usize {
    let mut chains = 0usize;
    for v in g.vertices() {
        if g.degree(v) != 1 {
            continue;
        }
        chains += 1;
        let (end, len) = walk_chain(g, v);
        eliminate(
            g,
            state,
            scratch,
            end,
            PSEUDO_MAX - len,
            PSEUDO_MAX,
            Stage::Chain,
        );
        // The chain tip stays active — its eccentricity dominates the
        // whole removed region (Algorithm 4 line 9).
        state.reactivate(v);
    }
    chains
}

/// Follows the chain of degree-2 vertices from the degree-1 vertex `v`
/// to the first vertex of degree ≠ 2; returns that end vertex and the
/// chain length in edges.
fn walk_chain(g: &CsrGraph, v: VertexId) -> (VertexId, u32) {
    debug_assert_eq!(g.degree(v), 1);
    let mut prev = v;
    let mut cur = g.neighbors(v)[0];
    let mut len = 1u32;
    while g.degree(cur) == 2 {
        let nb = g.neighbors(cur);
        let next = if nb[0] == prev { nb[1] } else { nb[0] };
        prev = cur;
        cur = next;
        len += 1;
    }
    (cur, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ACTIVE;
    use fdiam_graph::generators::{caterpillar, lollipop, path, star};
    use fdiam_graph::EdgeList;

    fn active_set(state: &EccState) -> Vec<u32> {
        (0..state.len() as u32)
            .filter(|&v| state.is_active(v))
            .collect()
    }

    #[test]
    fn walk_simple_chain() {
        // 0 - 1 - 2 - 3(hub) - 4, 3 - 5
        let g = EdgeList::from_undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)])
            .to_undirected_csr();
        assert_eq!(walk_chain(&g, 0), (3, 3));
        assert_eq!(walk_chain(&g, 4), (3, 1));
    }

    #[test]
    fn walk_chain_on_two_vertex_component() {
        let g = path(2);
        assert_eq!(walk_chain(&g, 0), (1, 1));
        assert_eq!(walk_chain(&g, 1), (0, 1));
    }

    #[test]
    fn walk_full_path_reaches_other_tip() {
        let g = path(5);
        assert_eq!(walk_chain(&g, 0), (4, 4));
    }

    #[test]
    fn star_leaves_keep_one_leaf_equivalent() {
        // star: every leaf is a chain of length 1 ending at the hub.
        let g = star(5);
        let state = EccState::new(5);
        let mut scratch = BfsScratch::new(5);
        let chains = chain_processing(&g, &state, &mut scratch);
        assert_eq!(chains, 4);
        // hub removed; last-processed leaf reactivated
        assert!(!state.is_active(0));
        let act = active_set(&state);
        assert_eq!(act, vec![4], "only the last chain tip stays active");
        assert_eq!(state.stage(0), Stage::Chain);
    }

    #[test]
    fn figure4_example() {
        // Paper Figure 4: chain e(=0)-1-2 ends at hub c(=2)... build the
        // analogous shape: tip 0, chain 0-1-2, hub 3 with branches 4,5; and
        // a second chain tip 6 attached to hub 7 adjacent to 3.
        //   0 - 1 - 2 - 3(deg 4) - 4
        //                |  \
        //                5   7 - 6
        let g =
            EdgeList::from_undirected(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5), (3, 7), (7, 6)])
                .to_undirected_csr();
        let state = EccState::new(8);
        let mut scratch = BfsScratch::new(8);
        chain_processing(&g, &state, &mut scratch);
        // Tips processed in id order 0, 4, 5, 6. Chain from 0 (len 3, end 3)
        // removes everything within 3 of the hub — the whole component —
        // then reactivates 0. Chains from 4 and 5 (len 1, end 3) each knock
        // out the previous tip (dist(3, ·) = 1) and reactivate themselves.
        // Chain from 6 runs through degree-2 vertex 7 (len 2, end 3), whose
        // radius-2 elimination removes tip 5 again. Vertex 0 sits at
        // distance 3 from the hub, outside every later radius, so it
        // survives: the final active set is exactly the two deepest tips.
        assert_eq!(active_set(&state), vec![0, 6]);
        assert_eq!(state.stage(3), Stage::Chain);
        assert!(!state.is_active(1));
        assert!(!state.is_active(2));
        assert!(!state.is_active(7));
    }

    #[test]
    fn pure_path_keeps_exactly_one_tip_active() {
        let g = path(6);
        let state = EccState::new(6);
        let mut scratch = BfsScratch::new(6);
        let chains = chain_processing(&g, &state, &mut scratch);
        assert_eq!(chains, 2);
        // processing tip 0 removes everything within 5 of vertex 5 (all),
        // reactivates 0; processing tip 5 removes all within 5 of 0
        // (including 0's reactivation is later... order: tip 5 processed
        // second: eliminate around 0 removes 5? no — eliminate around end
        // vertex of *5's* chain, which is 0; radius 5 covers vertex 5;
        // then 5 reactivated. Final: only 5 active.
        assert_eq!(active_set(&state), vec![5]);
    }

    #[test]
    fn caterpillar_removes_spine_keeps_extremal_legs() {
        let g = caterpillar(5, 1); // spine 0..4, legs 5..9 (leg 5+s on spine s)
        let state = EccState::new(10);
        let mut scratch = BfsScratch::new(10);
        chain_processing(&g, &state, &mut scratch);
        // The whole spine is covered by chain eliminations.
        for s in 0..5u32 {
            assert!(!state.is_active(s), "spine {s} should be removed");
        }
        // Later chains may knock out earlier tips, but every removal is
        // dominated by a still-active tip, so the two maximum-eccentricity
        // legs (on the spine ends) must survive.
        let act = active_set(&state);
        assert!(act.iter().all(|&v| v >= 5), "only legs may stay active");
        assert!(act.contains(&5), "end leg 5 has max eccentricity");
        assert!(act.contains(&9), "end leg 9 has max eccentricity");
    }

    #[test]
    fn no_degree1_vertices_is_noop() {
        let g = fdiam_graph::generators::cycle(6);
        let state = EccState::new(6);
        let mut scratch = BfsScratch::new(6);
        assert_eq!(chain_processing(&g, &state, &mut scratch), 0);
        assert_eq!(active_set(&state).len(), 6);
    }

    #[test]
    fn lollipop_chain_removes_clique_neighborhood() {
        let g = lollipop(4, 3); // clique 0..3, tail 4,5,6 (tip 6)
        let state = EccState::new(7);
        let mut scratch = BfsScratch::new(7);
        chain_processing(&g, &state, &mut scratch);
        // chain from 6: len 3, ends at clique vertex 0 → radius 3 covers
        // the whole lollipop; tip 6 reactivated
        assert_eq!(active_set(&state), vec![6]);
        assert_eq!(state.value(0), PSEUDO_MAX - 3);
    }

    #[test]
    fn chain_values_use_pseudo_bounds() {
        let g = path(3);
        let state = EccState::new(3);
        let mut scratch = BfsScratch::new(3);
        chain_processing(&g, &state, &mut scratch);
        for v in 0..3u32 {
            let val = state.value(v);
            assert!(val == ACTIVE || val > PSEUDO_MAX - 10);
        }
    }
}
