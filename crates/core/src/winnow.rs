//! The Winnow operation (Algorithm 3) — the paper's key novelty.
//!
//! By Theorem 3, every eccentricity is at least half the diameter, and
//! by Theorem 2 the maximum eccentricity is attained by at least two
//! vertices that are `diam` apart. Hence all vertices within
//! `⌊bound/2⌋` of an arbitrary vertex `u` can reach each other within
//! `bound` steps, so any pair realizing a distance `> bound` has at
//! least one endpoint *outside* that ball — winnowing the whole ball is
//! safe even though it may contain vertices with eccentricity *higher*
//! than the current bound. Winnowing must only ever be done around one
//! single vertex (§4.2), which is why [`WinnowRegion`] owns the source.
//!
//! The region grows monotonically: [`WinnowRegion`] keeps the exact
//! distance-from-`u` of every vertex reached so far, so when the bound
//! rises enough for `⌊bound/2⌋` to increase, the saved frontier (all
//! vertices at exactly the old radius) seeds a partial BFS for just the
//! extra levels — the incremental extension the paper calls "trivial as
//! it is centered around one starting vertex" (§4.5). The distance
//! array doubles as the visited set, preventing the extension from
//! re-expanding inward.

use crate::state::{EccState, Stage, WINNOWED};
use fdiam_graph::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

const UNSEEN: u32 = u32::MAX;

/// The (single) winnowed ball around the start vertex.
pub struct WinnowRegion {
    source: VertexId,
    radius: u32,
    /// All vertices at exactly `radius` from `source` (empty once the
    /// source's whole component is inside the ball).
    frontier: Vec<VertexId>,
    /// Exact distance from `source` for every vertex reached so far;
    /// [`UNSEEN`] elsewhere. Doubles as the BFS visited set.
    dist: Vec<AtomicU32>,
}

impl WinnowRegion {
    /// Empty region centered on `source` (radius 0).
    pub fn new(source: VertexId, n: usize) -> Self {
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSEEN)).collect();
        dist[source as usize].store(0, Ordering::Relaxed);
        Self {
            source,
            radius: 0,
            frontier: vec![source],
            dist,
        }
    }

    /// The winnow start vertex `u`.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Current winnow radius (`⌊bound/2⌋` after the last extension).
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Vertices at exactly `radius` from the source.
    pub fn frontier(&self) -> &[VertexId] {
        &self.frontier
    }

    /// Grows the region to `new_radius`, marking every newly reached
    /// vertex as winnowed — but only if still active: winnowing carries
    /// no bound information, so it must not destroy the Eliminate
    /// frontier values that seed §4.5 extensions, nor exact
    /// eccentricities.
    ///
    /// Returns `true` iff a partial BFS actually ran, which is what the
    /// paper counts as a BFS traversal in Table 3.
    pub fn extend_to(
        &mut self,
        g: &CsrGraph,
        state: &EccState,
        new_radius: u32,
        parallel: bool,
    ) -> bool {
        if new_radius <= self.radius || self.frontier.is_empty() {
            return false;
        }
        // Small frontiers are stepped serially even in parallel mode —
        // fork-join overhead exceeds the work (cf. `BfsConfig::serial_cutoff`).
        const SERIAL_CUTOFF: usize = 1024;
        let mut frontier = std::mem::take(&mut self.frontier);
        for level in (self.radius + 1)..=new_radius {
            let next = if parallel && frontier.len() >= SERIAL_CUTOFF {
                self.step_parallel(g, &frontier, level)
            } else {
                self.step_serial(g, &frontier, level)
            };
            next.iter()
                .for_each(|&v| _ = state.record_if_active(v, WINNOWED, Stage::Winnow));
            frontier = next;
            if frontier.is_empty() {
                break; // whole component inside the ball
            }
        }
        self.radius = new_radius;
        self.frontier = frontier;
        true
    }

    /// Re-runs Winnow from scratch out to `new_radius` (the
    /// `full_rewinnow` cross-check mode). Equivalent end state to
    /// [`Self::extend_to`]; costlier.
    pub fn rewinnow_to(
        &mut self,
        g: &CsrGraph,
        state: &EccState,
        new_radius: u32,
        parallel: bool,
    ) -> bool {
        if new_radius <= self.radius {
            return false;
        }
        for d in self.dist.iter() {
            d.store(UNSEEN, Ordering::Relaxed);
        }
        self.dist[self.source as usize].store(0, Ordering::Relaxed);
        self.radius = 0;
        self.frontier = vec![self.source];
        self.extend_to(g, state, new_radius, parallel)
    }

    fn step_serial(&self, g: &CsrGraph, frontier: &[VertexId], level: u32) -> Vec<VertexId> {
        let mut next = Vec::new();
        for &v in frontier {
            for &n in g.neighbors(v) {
                let d = &self.dist[n as usize];
                if d.load(Ordering::Relaxed) == UNSEEN {
                    d.store(level, Ordering::Relaxed);
                    next.push(n);
                }
            }
        }
        next
    }

    fn step_parallel(&self, g: &CsrGraph, frontier: &[VertexId], level: u32) -> Vec<VertexId> {
        frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                for &n in g.neighbors(v) {
                    if self.dist[n as usize]
                        .compare_exchange(UNSEEN, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        acc.push(n);
                    }
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ACTIVE;
    use fdiam_graph::generators::{grid2d, path, star};

    fn winnowed_set(state: &EccState) -> Vec<u32> {
        (0..state.len() as u32)
            .filter(|&v| state.value(v) == WINNOWED)
            .collect()
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn marks_ball_around_source() {
        let g = path(9);
        let state = EccState::new(9);
        let mut w = WinnowRegion::new(4, 9);
        assert!(w.extend_to(&g, &state, 2, false));
        assert_eq!(winnowed_set(&state), vec![2, 3, 5, 6]);
        assert_eq!(state.value(4), ACTIVE, "source not marked by winnow");
        assert_eq!(state.value(0), ACTIVE);
        assert_eq!(sorted(w.frontier().to_vec()), vec![2, 6]);
    }

    #[test]
    fn radius_zero_is_noop() {
        let g = star(5);
        let state = EccState::new(5);
        let mut w = WinnowRegion::new(0, 5);
        assert!(!w.extend_to(&g, &state, 0, false));
        assert!(winnowed_set(&state).is_empty());
    }

    #[test]
    fn incremental_extension_matches_one_shot() {
        let g = grid2d(9, 9);
        let n = g.num_vertices();

        let s1 = EccState::new(n);
        let mut w1 = WinnowRegion::new(40, n);
        w1.extend_to(&g, &s1, 2, false);
        w1.extend_to(&g, &s1, 4, false);

        let s2 = EccState::new(n);
        let mut w2 = WinnowRegion::new(40, n);
        w2.extend_to(&g, &s2, 4, false);

        assert_eq!(winnowed_set(&s1), winnowed_set(&s2));
        assert_eq!(
            sorted(w1.frontier().to_vec()),
            sorted(w2.frontier().to_vec()),
            "extension frontier must match one-shot frontier"
        );
    }

    #[test]
    fn rewinnow_matches_extension() {
        let g = grid2d(7, 7);
        let n = g.num_vertices();
        let s1 = EccState::new(n);
        let mut w1 = WinnowRegion::new(24, n);
        w1.extend_to(&g, &s1, 1, false);
        w1.extend_to(&g, &s1, 3, false);

        let s2 = EccState::new(n);
        let mut w2 = WinnowRegion::new(24, n);
        w2.extend_to(&g, &s2, 1, false);
        w2.rewinnow_to(&g, &s2, 3, false);

        assert_eq!(winnowed_set(&s1), winnowed_set(&s2));
        assert_eq!(
            sorted(w1.frontier().to_vec()),
            sorted(w2.frontier().to_vec())
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let g = grid2d(8, 8);
        let n = g.num_vertices();
        let s1 = EccState::new(n);
        let mut w1 = WinnowRegion::new(27, n);
        w1.extend_to(&g, &s1, 3, false);
        let s2 = EccState::new(n);
        let mut w2 = WinnowRegion::new(27, n);
        w2.extend_to(&g, &s2, 3, true);
        assert_eq!(winnowed_set(&s1), winnowed_set(&s2));
        assert_eq!(
            sorted(w1.frontier().to_vec()),
            sorted(w2.frontier().to_vec())
        );
    }

    #[test]
    fn does_not_overwrite_inactive_vertices() {
        let g = path(5);
        let state = EccState::new(5);
        state.record(1, 4, Stage::Computed); // pretend v1's ecc is known
        let mut w = WinnowRegion::new(2, 5);
        w.extend_to(&g, &state, 2, false);
        assert_eq!(state.value(1), 4, "computed ecc preserved");
        assert_eq!(state.stage(1), Stage::Computed);
        assert_eq!(state.value(3), WINNOWED);
    }

    #[test]
    fn exhausted_component_stops_future_extensions() {
        let g = path(3);
        let state = EccState::new(3);
        let mut w = WinnowRegion::new(1, 3);
        assert!(w.extend_to(&g, &state, 5, false));
        assert!(w.frontier().is_empty());
        assert!(!w.extend_to(&g, &state, 9, false));
    }

    #[test]
    fn shrinking_is_rejected() {
        let g = path(5);
        let state = EccState::new(5);
        let mut w = WinnowRegion::new(2, 5);
        w.extend_to(&g, &state, 2, false);
        assert!(!w.extend_to(&g, &state, 1, false));
        assert_eq!(w.radius(), 2);
    }

    #[test]
    fn winnow_confined_to_source_component() {
        let g = fdiam_graph::transform::disjoint_union(&star(5), &path(4));
        let state = EccState::new(9);
        let mut w = WinnowRegion::new(0, 9);
        w.extend_to(&g, &state, 3, false);
        assert!(winnowed_set(&state).iter().all(|&v| v < 5));
    }
}
