//! The Eliminate operation (Algorithm 5) and its incremental extension
//! (§4.5).
//!
//! After computing `ecc(v) < bound`, Theorem 1 implies every vertex
//! within `s = bound − ecc(v)` steps of `v` has eccentricity ≤ `bound`
//! and can never raise the diameter. Eliminate records the upper bound
//! `ecc(v) + k` in every vertex at distance `k ≤ s` from `v` with a
//! serial partial BFS — serial because "there is typically not enough
//! work to warrant parallelization" (§4.4).
//!
//! The recorded bounds are load-bearing: when the diameter bound later
//! rises from `old` to `new`, the vertices whose recorded bound equals
//! `old` are exactly the frontiers of *all* prior Eliminate calls, and
//! one multi-source partial BFS of `new − old` levels from them extends
//! every eliminated region at once — "efficient and independent of the
//! number of prior evaluated vertices" (§4.5).

use crate::state::{EccState, Stage};
use fdiam_bfs::multisource::partial_bfs_scratch;
use fdiam_bfs::BfsScratch;
use fdiam_graph::{CsrGraph, VertexId};

/// Algorithm 5: eliminates all vertices within `bound − start` steps of
/// `source`, recording the upper bound `start + level` in each. The
/// source itself is recorded with `start` (for a plain Eliminate call
/// that is its just-computed exact eccentricity; for Chain Processing
/// it is the pseudo-bound of the chain's end vertex). The partial BFS
/// runs on the driver's scratch arena — serial because "there is
/// typically not enough work to warrant parallelization" (§4.4) — so
/// the call is allocation-free in steady state.
///
/// Returns the number of vertices reached (excluding the source).
pub fn eliminate(
    g: &CsrGraph,
    state: &EccState,
    scratch: &mut BfsScratch,
    source: VertexId,
    start: u32,
    bound: u32,
    stage: Stage,
) -> usize {
    state.record(source, start, stage);
    if start >= bound {
        return 0;
    }
    let levels = bound - start;
    let r = partial_bfs_scratch(g, &[source], scratch, levels, |level, v| {
        state.record(v, start + level, stage);
    });
    r.visited
}

/// §4.5 extension: seeds every vertex whose recorded bound equals
/// `old_bound` and runs one multi-source partial BFS of
/// `new_bound − old_bound` levels, recording `old_bound + level` in the
/// vertices reached. `seeds` is a caller-owned reusable buffer for the
/// seed scan (it must not alias the scratch arena's own worklists).
///
/// Returns the number of vertices reached.
pub fn extend_eliminated(
    g: &CsrGraph,
    state: &EccState,
    scratch: &mut BfsScratch,
    seeds: &mut Vec<VertexId>,
    old_bound: u32,
    new_bound: u32,
) -> usize {
    debug_assert!(new_bound > old_bound);
    state.vertices_with_value_into(old_bound, seeds);
    if seeds.is_empty() {
        return 0;
    }
    let r = partial_bfs_scratch(g, seeds, scratch, new_bound - old_bound, |level, v| {
        state.record(v, old_bound + level, Stage::Eliminate);
    });
    r.visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ACTIVE;
    use fdiam_graph::generators::{path, star};

    fn extend(g: &CsrGraph, state: &EccState, s: &mut BfsScratch, old: u32, new: u32) -> usize {
        let mut seeds = Vec::new();
        extend_eliminated(g, state, s, &mut seeds, old, new)
    }

    #[test]
    fn eliminates_ring_around_source() {
        // Figure 5 scenario: bound 5, ecc(source) 4 → direct neighbors only.
        let g = star(6);
        let state = EccState::new(6);
        let mut scratch = BfsScratch::new(6);
        let removed = eliminate(&g, &state, &mut scratch, 0, 4, 5, Stage::Eliminate);
        assert_eq!(removed, 5);
        assert_eq!(state.value(0), 4);
        for v in 1..6 {
            assert_eq!(state.value(v), 5, "neighbor {v} gets bound value");
            assert_eq!(state.stage(v), Stage::Eliminate);
        }
    }

    #[test]
    fn records_increasing_bounds_by_level() {
        let g = path(6);
        let state = EccState::new(6);
        let mut scratch = BfsScratch::new(6);
        eliminate(&g, &state, &mut scratch, 0, 2, 5, Stage::Eliminate);
        assert_eq!(state.value(0), 2);
        assert_eq!(state.value(1), 3);
        assert_eq!(state.value(2), 4);
        assert_eq!(state.value(3), 5);
        assert_eq!(state.value(4), ACTIVE, "beyond bound − start stays active");
    }

    #[test]
    fn noop_when_ecc_equals_bound() {
        let g = path(4);
        let state = EccState::new(4);
        let mut scratch = BfsScratch::new(4);
        let removed = eliminate(&g, &state, &mut scratch, 1, 3, 3, Stage::Eliminate);
        assert_eq!(removed, 0);
        assert_eq!(state.value(1), 3, "source still recorded");
        assert!(state.is_active(0));
    }

    #[test]
    fn extension_continues_from_frontier() {
        let g = path(8);
        let state = EccState::new(8);
        let mut scratch = BfsScratch::new(8);
        // first eliminate reaches vertices 1 (value 4) and 2 (value 5)
        eliminate(&g, &state, &mut scratch, 0, 3, 5, Stage::Eliminate);
        assert_eq!(state.value(2), 5);
        assert!(state.is_active(3));
        // bound rises 5 → 7: seeds are the value-5 vertices ({2})
        let reached = extend(&g, &state, &mut scratch, 5, 7);
        assert!(reached >= 2);
        assert_eq!(state.value(3), 6);
        assert_eq!(state.value(4), 7);
        assert!(state.is_active(5), "past the new bound stays active");
    }

    #[test]
    fn extension_with_no_seeds_is_noop() {
        let g = path(4);
        let state = EccState::new(4);
        let mut scratch = BfsScratch::new(4);
        assert_eq!(extend(&g, &state, &mut scratch, 9, 11), 0);
        assert!(state.is_active(0));
    }

    #[test]
    fn extension_walks_back_over_eliminated_region_without_harm() {
        let g = path(6);
        let state = EccState::new(6);
        let mut scratch = BfsScratch::new(6);
        eliminate(&g, &state, &mut scratch, 0, 4, 5, Stage::Eliminate); // v1 ← 5
        extend(&g, &state, &mut scratch, 5, 6);
        // the extension BFS from v1 reaches v0 (backwards) and v2
        assert_eq!(state.value(2), 6);
        // v0's value may be overwritten with 6 — still a valid upper bound,
        // still inactive, attribution unchanged
        assert!(!state.is_active(0));
        assert_eq!(state.stage(0), Stage::Eliminate);
    }

    #[test]
    fn attribution_goes_to_first_remover() {
        let g = path(3);
        let state = EccState::new(3);
        let mut scratch = BfsScratch::new(3);
        eliminate(&g, &state, &mut scratch, 0, 1, 2, Stage::Chain);
        assert_eq!(state.stage(1), Stage::Chain);
        eliminate(&g, &state, &mut scratch, 2, 1, 2, Stage::Eliminate);
        assert_eq!(state.stage(1), Stage::Chain, "first remover wins");
    }
}
