//! Configuration of the F-Diam runner, including the ablation switches
//! evaluated in the paper's §6.5 (Table 5 / Figure 9).
//!
//! The runner (and this config) is undirected-only, like the paper's
//! algorithm. Directed inputs are handled by the directed ExactSumSweep
//! in `fdiam-analytics` (`directed_sum_sweep`), which the CLI and the
//! HTTP service select automatically under `--directed` /
//! `"directed": true`.

use fdiam_bfs::BfsConfig;
use fdiam_obs::RunId;

/// Tunable behaviour of [`crate::diameter_with`].
#[derive(Clone, Debug)]
pub struct FdiamConfig {
    /// Run BFS traversals (eccentricity, Winnow) in parallel. The
    /// paper's "F-Diam (ser)" vs "F-Diam (par)".
    pub parallel: bool,
    /// Direction-optimized BFS tuning (threshold etc.).
    pub bfs: BfsConfig,
    /// Enable Winnow (§4.2). Disabling reproduces the paper's
    /// "no Winnow" ablation — by far the most damaging one (§6.5).
    pub use_winnow: bool,
    /// Enable Eliminate (§4.4) including incremental extension (§4.5).
    pub use_eliminate: bool,
    /// Enable Chain Processing (§4.3).
    pub use_chain: bool,
    /// Start from the maximum-degree vertex `u` (§3). Disabling starts
    /// from vertex 0 — the paper's "no 'u'" ablation.
    pub use_max_degree_start: bool,
    /// Re-run Winnow from scratch instead of extending it from the
    /// saved frontier when the bound grows. Slower; exists to
    /// cross-check the incremental extension (tests assert identical
    /// diameters).
    pub full_rewinnow: bool,
    /// Visit remaining vertices in a seeded random order instead of id
    /// order. The paper mentions random order (§4.5); id order keeps
    /// runs deterministic, which the test suite relies on.
    pub visit_order_seed: Option<u64>,
    /// Correlation id stamped on every event of the run (`run_start`,
    /// `run_end`) and returned in [`crate::FdiamOutcome::run`]. `None`
    /// (the default) mints a fresh id per run; callers that already
    /// hold a trace id — e.g. a server admitting a request — pass it
    /// here so logs, traces, and responses correlate.
    pub run_id: Option<RunId>,
    /// Opt-in bit-parallel main loop: compute the eccentricities of up
    /// to this many (≤ 64) remaining vertices per *shared* traversal
    /// via [`fdiam_bfs::bp64_eccentricities`], instead of one BFS per
    /// vertex. Like [`crate::run_concurrent`], batch-mates can no
    /// longer benefit from each other's Eliminate — but here the batch
    /// shares its edge scans, so the redundancy is paid in lane bits,
    /// not traversals. `None` (the default) keeps the published
    /// one-BFS-at-a-time loop.
    pub lane_batch: Option<usize>,
}

impl Default for FdiamConfig {
    fn default() -> Self {
        Self {
            parallel: true,
            bfs: BfsConfig::default(),
            use_winnow: true,
            use_eliminate: true,
            use_chain: true,
            use_max_degree_start: true,
            full_rewinnow: false,
            visit_order_seed: None,
            run_id: None,
            lane_batch: None,
        }
    }
}

impl FdiamConfig {
    /// The paper's parallel configuration (default).
    pub fn parallel() -> Self {
        Self::default()
    }

    /// The paper's serial configuration ("F-Diam (ser)").
    pub fn serial() -> Self {
        Self {
            parallel: false,
            ..Self::default()
        }
    }

    /// Ablation: Winnow disabled (Table 5 column "no Winnow").
    pub fn without_winnow(mut self) -> Self {
        self.use_winnow = false;
        self
    }

    /// Ablation: Eliminate disabled (Table 5 column "no Elim.").
    pub fn without_eliminate(mut self) -> Self {
        self.use_eliminate = false;
        self
    }

    /// Ablation: start vertex 0 instead of the max-degree vertex
    /// (Table 5 column "no 'u'").
    pub fn without_max_degree_start(mut self) -> Self {
        self.use_max_degree_start = false;
        self
    }

    /// Disable Chain Processing (not ablated in the paper, but useful
    /// for attribution experiments).
    pub fn without_chain(mut self) -> Self {
        self.use_chain = false;
        self
    }

    /// Use the paper's fixed 10 % direction-switch rule (§4.6) instead
    /// of the default α/β heuristic — reproduction fidelity over speed.
    pub fn with_paper_bfs(mut self) -> Self {
        self.bfs = BfsConfig::paper_fidelity();
        self
    }

    /// Attach a caller-supplied correlation id to the run.
    pub fn with_run_id(mut self, run: RunId) -> Self {
        self.run_id = Some(run);
        self
    }

    /// Opt into the bit-parallel main loop with up to `batch` (≤ 64)
    /// sources per shared traversal.
    pub fn with_lane_batch(mut self, batch: usize) -> Self {
        self.lane_batch = Some(batch);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let c = FdiamConfig::default();
        assert!(c.parallel && c.use_winnow && c.use_eliminate && c.use_chain);
        assert!(c.use_max_degree_start);
        assert!(!c.full_rewinnow);
    }

    #[test]
    fn ablation_builders() {
        assert!(!FdiamConfig::serial().parallel);
        assert!(!FdiamConfig::parallel().without_winnow().use_winnow);
        assert!(!FdiamConfig::parallel().without_eliminate().use_eliminate);
        assert!(
            !FdiamConfig::parallel()
                .without_max_degree_start()
                .use_max_degree_start
        );
        assert!(!FdiamConfig::parallel().without_chain().use_chain);
    }

    #[test]
    fn lane_batch_is_off_by_default() {
        assert!(FdiamConfig::default().lane_batch.is_none());
        assert_eq!(
            FdiamConfig::serial().with_lane_batch(64).lane_batch,
            Some(64)
        );
    }

    #[test]
    fn run_id_builder_attaches_id() {
        assert!(FdiamConfig::default().run_id.is_none());
        let id = RunId::fresh();
        assert_eq!(FdiamConfig::default().with_run_id(id).run_id, Some(id));
    }

    #[test]
    fn paper_bfs_switches_the_heuristic() {
        use fdiam_bfs::SwitchHeuristic;
        let c = FdiamConfig::parallel().with_paper_bfs();
        assert!(matches!(
            c.bfs.heuristic,
            SwitchHeuristic::FixedFraction { .. }
        ));
        assert!(matches!(
            FdiamConfig::default().bfs.heuristic,
            SwitchHeuristic::Adaptive { .. }
        ));
    }
}
