//! # fdiam-core
//!
//! **F-Diam**: fast exact diameter computation of sparse graphs —
//! a Rust reproduction of Bradley, Akathoott & Burtscher, *"Fast Exact
//! Diameter Computation of Sparse Graphs"*, ICPP 2025.
//!
//! The traditional diameter algorithm solves all-pairs shortest paths
//! in `O(nm)`; F-Diam instead performs a small number of BFS
//! traversals, removing almost all vertices from consideration with
//! three techniques:
//!
//! * **Winnow** (§4.2, [`winnow`]) — after a 2-sweep lower bound
//!   `bound`, all vertices within `⌊bound/2⌋` of the max-degree vertex
//!   are discarded; Theorems 2 and 3 guarantee a vertex of maximum
//!   eccentricity survives outside the ball. This removes > 70 % (often
//!   > 99 %) of the vertices on the paper's inputs.
//! * **Chain Processing** (§4.3, [`chain`]) — degree-1 chains dominate
//!   their surroundings; the region around each chain's end is removed
//!   without computing any eccentricity.
//! * **Eliminate** (§4.4–4.5, [`eliminate`]) — Theorem 1 bounds the
//!   eccentricity of everything near a computed vertex; recorded bounds
//!   double as seeds for incremental extension when the diameter bound
//!   rises.
//!
//! # Quickstart
//!
//! ```
//! use fdiam_core::{diameter, diameter_with, FdiamConfig};
//! use fdiam_graph::generators::grid2d;
//!
//! let g = grid2d(20, 30);
//! let result = diameter(&g);
//! assert_eq!(result.diameter(), Some(48)); // (20-1) + (30-1)
//!
//! // Full control + statistics:
//! let outcome = diameter_with(&g, &FdiamConfig::serial());
//! assert_eq!(outcome.result.largest_cc_diameter, 48);
//! assert!(outcome.stats.bfs_traversals() < g.num_vertices());
//! ```

pub mod algorithm;
pub mod chain;
pub mod config;
pub mod eliminate;
pub mod observe;
pub mod result;
pub mod state;
pub mod stats;
pub mod winnow;

pub use algorithm::{
    run, run_cancellable, run_cancellable_with_scratch, run_concurrent, run_concurrent_cancellable,
    run_concurrent_with_observer, run_concurrent_with_timeout,
    run_concurrent_with_timeout_observed, run_with_observer, Cancelled, FdiamOutcome,
};
pub use config::FdiamConfig;
pub use observe::StatsCollector;
pub use result::DiameterResult;
pub use stats::{FdiamStats, RemovalBreakdown, StageTimings};

use fdiam_graph::CsrGraph;

/// Computes the exact diameter with the default (parallel) F-Diam
/// configuration.
///
/// For a disconnected graph the diameter is infinite
/// ([`DiameterResult::diameter`] returns `None`) and
/// [`DiameterResult::largest_cc_diameter`] carries the largest
/// eccentricity over all connected components, matching the paper's
/// output convention.
pub fn diameter(g: &CsrGraph) -> DiameterResult {
    run(g, &FdiamConfig::default()).result
}

/// Computes the exact diameter with an explicit configuration,
/// returning the per-stage statistics used by the benchmark harness
/// (Tables 3–5, Figure 8).
pub fn diameter_with(g: &CsrGraph, config: &FdiamConfig) -> FdiamOutcome {
    run(g, config)
}

/// [`diameter_with`] plus an [`fdiam_obs::Observer`] receiving the
/// run's structured event stream (progress, traces, metrics — see the
/// `fdiam-obs` crate).
pub fn diameter_with_observer(
    g: &CsrGraph,
    config: &FdiamConfig,
    observer: &dyn fdiam_obs::Observer,
) -> FdiamOutcome {
    run_with_observer(g, config, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_bfs::{bfs_eccentricity_serial, VisitMarks};
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
    use fdiam_graph::CsrGraph;

    /// Oracle: largest eccentricity over all vertices, by BFS from each.
    fn oracle_cc_diameter(g: &CsrGraph) -> u32 {
        let mut marks = VisitMarks::new(g.num_vertices());
        g.vertices()
            .map(|v| bfs_eccentricity_serial(g, v, &mut marks).eccentricity)
            .max()
            .unwrap_or(0)
    }

    fn all_configs() -> Vec<FdiamConfig> {
        vec![
            FdiamConfig::parallel(),
            FdiamConfig::serial(),
            FdiamConfig::parallel().without_winnow(),
            FdiamConfig::parallel().without_eliminate(),
            FdiamConfig::parallel().without_max_degree_start(),
            FdiamConfig::serial().without_chain(),
            FdiamConfig {
                full_rewinnow: true,
                ..FdiamConfig::serial()
            },
            FdiamConfig {
                visit_order_seed: Some(42),
                ..FdiamConfig::parallel()
            },
        ]
    }

    fn check(g: &CsrGraph) {
        let expect = oracle_cc_diameter(g);
        for (i, cfg) in all_configs().iter().enumerate() {
            let out = diameter_with(g, cfg);
            assert_eq!(
                out.result.largest_cc_diameter,
                expect,
                "config #{i} wrong on graph with n={} m={}",
                g.num_vertices(),
                g.num_undirected_edges()
            );
            assert_eq!(
                out.stats.removed.total(),
                g.num_vertices(),
                "config #{i}: every vertex must be accounted for"
            );
        }
    }

    #[test]
    fn known_shapes() {
        check(&path(1));
        check(&path(2));
        check(&path(17));
        check(&cycle(3));
        check(&cycle(10));
        check(&cycle(11));
        check(&star(2));
        check(&star(9));
        check(&complete(6));
        check(&grid2d(4, 9));
        check(&balanced_tree(2, 4));
        check(&balanced_tree(3, 3));
        check(&caterpillar(6, 2));
        check(&lollipop(5, 7));
        check(&barbell(4, 3));
        check(&grid2d_torus(4, 5));
    }

    #[test]
    fn exact_diameters_of_closed_forms() {
        assert_eq!(diameter(&path(25)).diameter(), Some(24));
        assert_eq!(diameter(&cycle(24)).diameter(), Some(12));
        assert_eq!(diameter(&cycle(25)).diameter(), Some(12));
        assert_eq!(diameter(&star(40)).diameter(), Some(2));
        assert_eq!(diameter(&complete(12)).diameter(), Some(1));
        assert_eq!(diameter(&grid2d(7, 11)).diameter(), Some(16));
        assert_eq!(diameter(&balanced_tree(2, 5)).diameter(), Some(10));
        assert_eq!(diameter(&lollipop(6, 4)).diameter(), Some(5));
        assert_eq!(diameter(&barbell(5, 2)).diameter(), Some(5));
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..5 {
            check(&erdos_renyi_gnm(80, 120, seed));
            check(&barabasi_albert(90, 2, seed));
            check(&watts_strogatz(64, 4, 0.2, seed));
            check(&random_geometric(70, 0.2, seed));
            check(&road_like(100, 0.15, seed));
            check(&rmat(7, 3, RmatProbabilities::LONESTAR, seed));
            check(&kronecker_graph500(7, 6, seed));
        }
    }

    #[test]
    fn degenerate_graphs() {
        let r = diameter(&CsrGraph::empty(0));
        assert_eq!(r.diameter(), Some(0));

        let r = diameter(&CsrGraph::empty(1));
        assert_eq!(r.diameter(), Some(0));

        let r = diameter(&CsrGraph::empty(5));
        assert!(r.is_infinite());
        assert_eq!(r.largest_cc_diameter, 0);
    }

    #[test]
    fn disconnected_reports_infinite_and_largest_cc() {
        let g = disjoint_union(&path(9), &cycle(6));
        let r = diameter(&g);
        assert!(r.is_infinite());
        assert_eq!(r.diameter(), None);
        assert_eq!(r.largest_cc_diameter, 8);
        check(&g);

        // largest diameter in the *smaller-id* component too
        let g2 = disjoint_union(&cycle(6), &path(9));
        let r2 = diameter(&g2);
        assert!(r2.is_infinite());
        assert_eq!(r2.largest_cc_diameter, 8);
        check(&g2);
    }

    #[test]
    fn isolated_vertices_flag_disconnection() {
        let g = with_isolated_vertices(&complete(4), 3);
        let r = diameter(&g);
        assert!(r.is_infinite());
        assert_eq!(r.largest_cc_diameter, 1);
        check(&g);
    }

    #[test]
    fn many_components() {
        let mut g = path(5);
        for k in [3usize, 7, 2] {
            g = disjoint_union(&g, &path(k));
        }
        let r = diameter(&g);
        assert!(r.is_infinite());
        assert_eq!(r.largest_cc_diameter, 6);
        check(&g);
    }

    #[test]
    fn connected_flag_correct() {
        assert!(diameter(&grid2d(5, 5)).connected);
        assert!(!diameter(&disjoint_union(&path(2), &path(2))).connected);
        assert!(diameter(&path(1)).connected);
    }

    /// True when `rand_chacha` has been substituted by the offline stub
    /// (a splitmix64 generator) rather than real ChaCha8. The stub
    /// exists only for network-less compile checks; its different
    /// stream changes which random graphs `barabasi_albert` emits, and
    /// the stub-generated 3000-vertex instance happens to winnow far
    /// less effectively. Detect the substitution at runtime by
    /// predicting the stub's first output with an inline splitmix64 and
    /// comparing against what the linked `ChaCha8Rng` actually produces.
    fn chacha_is_splitmix_stub() -> bool {
        use rand::{RngCore, SeedableRng};
        let seed = 0x5EED_u64;
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let splitmix_first = z ^ (z >> 31);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        rng.next_u64() == splitmix_first
    }

    #[test]
    fn stats_traversals_far_below_n_with_winnow() {
        if chacha_is_splitmix_stub() {
            eprintln!(
                "skipping: rand_chacha is the offline splitmix64 stub, \
                 which generates a different barabasi_albert instance"
            );
            return;
        }
        let g = barabasi_albert(3000, 4, 7);
        let out = diameter_with(&g, &FdiamConfig::parallel());
        assert!(
            out.stats.bfs_traversals() * 10 < g.num_vertices(),
            "winnow should eliminate the vast majority: {} traversals on n={}",
            out.stats.bfs_traversals(),
            g.num_vertices()
        );
    }

    #[test]
    fn no_winnow_needs_more_traversals() {
        let g = barabasi_albert(800, 3, 3);
        let with = diameter_with(&g, &FdiamConfig::parallel());
        let without = diameter_with(&g, &FdiamConfig::parallel().without_winnow());
        assert_eq!(
            with.result.largest_cc_diameter,
            without.result.largest_cc_diameter
        );
        assert!(
            without.stats.bfs_traversals() >= with.stats.bfs_traversals(),
            "disabling winnow must not reduce traversals"
        );
    }

    #[test]
    fn winnow_dominates_removal_on_small_world() {
        let g = barabasi_albert(5000, 5, 11);
        let out = diameter_with(&g, &FdiamConfig::parallel());
        let r = &out.stats.removed;
        let pct = r.percentages(g.num_vertices());
        // Paper Table 4 reports >70 % on the full-size inputs; on this
        // scaled-down analogue the ⌊bound/2⌋ ball is proportionally
        // smaller, so assert the structural property instead: Winnow is
        // by far the biggest remover and covers the majority.
        assert!(
            pct[0] > 50.0,
            "winnow should remove the majority; got {:.2}%",
            pct[0]
        );
        assert!(r.winnow > r.eliminate && r.winnow > r.chain && r.winnow > r.computed);
    }

    #[test]
    fn degree0_percentage_on_kron() {
        let g = kronecker_graph500(10, 8, 3);
        let out = diameter_with(&g, &FdiamConfig::parallel());
        assert_eq!(out.stats.removed.degree0, g.num_isolated_vertices());
        assert!(
            out.stats.removed.degree0 > 0,
            "kron analogue has isolated vertices"
        );
    }

    #[test]
    fn chain_removal_on_road_like_topology() {
        let g = road_like(400, 0.0, 5); // pure tree: plenty of degree-1
        let out = diameter_with(&g, &FdiamConfig::parallel());
        assert!(out.stats.chains_processed > 0);
        check(&g);
    }

    #[test]
    fn full_rewinnow_cross_check() {
        for seed in 0..3 {
            let g = road_like(250, 0.1, seed);
            let a = diameter_with(&g, &FdiamConfig::serial());
            let b = diameter_with(
                &g,
                &FdiamConfig {
                    full_rewinnow: true,
                    ..FdiamConfig::serial()
                },
            );
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn diametral_pair_realizes_diameter() {
        use fdiam_bfs::distances::bfs_distances_serial;
        for g in [
            path(21),
            grid2d(5, 9),
            barabasi_albert(300, 3, 4),
            road_like(250, 0.1, 6),
            fdiam_graph::transform::disjoint_union(&cycle(9), &path(14)),
        ] {
            for cfg in [FdiamConfig::parallel(), FdiamConfig::serial()] {
                let out = diameter_with(&g, &cfg);
                let (a, b) = out.diametral_pair.expect("non-empty graph");
                let mut dist = Vec::new();
                bfs_distances_serial(&g, a, &mut dist);
                assert_eq!(
                    dist[b as usize], out.result.largest_cc_diameter,
                    "pair ({a}, {b}) does not realize the diameter"
                );
            }
        }
    }

    #[test]
    fn diametral_pair_none_only_for_empty() {
        let out = diameter_with(&CsrGraph::empty(0), &FdiamConfig::serial());
        assert!(out.diametral_pair.is_none());
        let out = diameter_with(&CsrGraph::empty(3), &FdiamConfig::serial());
        let (a, b) = out.diametral_pair.unwrap();
        assert_eq!(a, b, "isolated graph: degenerate pair");
    }

    #[test]
    fn torus_worst_case_still_exact() {
        // all vertices share the same eccentricity — the paper's worst
        // case (§4.6): Chain/Eliminate do not apply and Winnow removes
        // fewer than half the vertices.
        let g = grid2d_torus(6, 8);
        let out = diameter_with(&g, &FdiamConfig::parallel());
        assert_eq!(out.result.diameter(), Some(3 + 4));
        let out_ser = diameter_with(&g, &FdiamConfig::serial());
        assert_eq!(out_ser.result.diameter(), Some(7));
    }
}
