//! Execution statistics: everything needed to regenerate the paper's
//! Table 3 (BFS traversal counts), Table 4 (per-stage removal
//! percentages), and Figure 8 (per-stage runtime fractions).

use std::time::Duration;

/// How many vertices each stage removed from consideration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemovalBreakdown {
    pub winnow: usize,
    pub eliminate: usize,
    pub chain: usize,
    pub degree0: usize,
    /// Vertices whose eccentricity was computed exactly by a BFS.
    pub computed: usize,
}

impl RemovalBreakdown {
    pub fn total(&self) -> usize {
        self.winnow + self.eliminate + self.chain + self.degree0 + self.computed
    }

    /// Percentage of `n` removed by each stage, in Table 4 column order
    /// (winnow, eliminate, chain, degree-0).
    pub fn percentages(&self, n: usize) -> [f64; 4] {
        let pct = |x: usize| {
            if n == 0 {
                0.0
            } else {
                100.0 * x as f64 / n as f64
            }
        };
        [
            pct(self.winnow),
            pct(self.eliminate),
            pct(self.chain),
            pct(self.degree0),
        ]
    }
}

/// Wall-clock spent per stage (Figure 8 series).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// The eccentricity BFS calls — dominate runtime on every input
    /// in the paper's Figure 8.
    pub ecc_bfs: Duration,
    pub winnow: Duration,
    pub chain: Duration,
    pub eliminate: Duration,
    /// Total runtime of the diameter computation.
    pub total: Duration,
}

impl StageTimings {
    /// Everything not attributed to a named stage (setup, scans, sweeps
    /// bookkeeping) — Figure 8's "other".
    pub fn other(&self) -> Duration {
        self.total
            .saturating_sub(self.ecc_bfs)
            .saturating_sub(self.winnow)
            .saturating_sub(self.chain)
            .saturating_sub(self.eliminate)
    }

    /// Fractions of total per stage: `[ecc_bfs, winnow, chain,
    /// eliminate, other]`, summing to 1 (all zeros for a zero total).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total.as_secs_f64();
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.ecc_bfs.as_secs_f64() / t,
            self.winnow.as_secs_f64() / t,
            self.chain.as_secs_f64() / t,
            self.eliminate.as_secs_f64() / t,
            self.other().as_secs_f64() / t,
        ]
    }
}

/// Full statistics of one F-Diam run.
#[derive(Clone, Debug, Default)]
pub struct FdiamStats {
    /// Eccentricity computations performed (one BFS each).
    pub ecc_computations: usize,
    /// Winnow invocations (initial + incremental extensions).
    pub winnow_calls: usize,
    /// Eliminate invocations, counting each bound-rise extension once
    /// (chain-triggered eliminations are *not* counted here).
    pub eliminate_calls: usize,
    /// Degree-1 chains processed.
    pub chains_processed: usize,
    pub removed: RemovalBreakdown,
    pub timings: StageTimings,
}

impl FdiamStats {
    /// The paper's Table 3 metric: "a BFS traversal \[is\] either the
    /// computation of the eccentricity of a vertex or the use of the
    /// Winnow function" — Eliminate is not counted (§6.3).
    pub fn bfs_traversals(&self) -> usize {
        self.ecc_computations + self.winnow_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_percentages() {
        let b = RemovalBreakdown {
            winnow: 70,
            eliminate: 20,
            chain: 5,
            degree0: 3,
            computed: 2,
        };
        assert_eq!(b.total(), 100);
        let p = b.percentages(100);
        assert_eq!(p, [70.0, 20.0, 5.0, 3.0]);
    }

    #[test]
    fn percentages_of_empty_graph() {
        assert_eq!(RemovalBreakdown::default().percentages(0), [0.0; 4]);
    }

    #[test]
    fn timings_other_and_fractions() {
        let t = StageTimings {
            ecc_bfs: Duration::from_millis(60),
            winnow: Duration::from_millis(20),
            chain: Duration::from_millis(5),
            eliminate: Duration::from_millis(5),
            total: Duration::from_millis(100),
        };
        assert_eq!(t.other(), Duration::from_millis(10));
        let f = t.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((f[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_total_fractions() {
        assert_eq!(StageTimings::default().fractions(), [0.0; 5]);
    }

    #[test]
    fn other_saturates_when_stages_exceed_total() {
        // Stage sums can exceed the recorded total on coarse clocks (or
        // when concurrent spans overlap); "other" must clamp at zero
        // rather than wrap.
        let t = StageTimings {
            ecc_bfs: Duration::from_millis(80),
            winnow: Duration::from_millis(40),
            chain: Duration::ZERO,
            eliminate: Duration::ZERO,
            total: Duration::from_millis(100),
        };
        assert_eq!(t.other(), Duration::ZERO);
        let f = t.fractions();
        assert_eq!(f[4], 0.0);
        assert!(f.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn fractions_with_zero_stage_times() {
        let t = StageTimings {
            total: Duration::from_millis(10),
            ..StageTimings::default()
        };
        let f = t.fractions();
        assert_eq!(f[0..4], [0.0; 4]);
        assert!((f[4] - 1.0).abs() < 1e-9, "everything is 'other'");
    }

    #[test]
    fn traversal_count_convention() {
        let s = FdiamStats {
            ecc_computations: 5,
            winnow_calls: 2,
            eliminate_calls: 99,
            ..Default::default()
        };
        assert_eq!(s.bfs_traversals(), 7);
    }
}
