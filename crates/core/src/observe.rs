//! The driver's internal statistics collector.
//!
//! [`FdiamStats`] used to be filled by `Instant::now()` bookkeeping
//! scattered through the driver. The driver now emits structured
//! [`Event`]s instead, and this always-attached observer folds the
//! event stream back into the same statistics — so caller-visible
//! output is unchanged while any number of additional observers
//! (progress, traces, metrics) can listen to the identical stream.

use crate::stats::FdiamStats;
use fdiam_obs::{Event, Observer, Phase};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Accumulates [`FdiamStats`] fields from the driver's event stream.
///
/// Fields are atomics because BFS lifecycle events arrive from rayon
/// worker threads in the concurrent main loop. Per-level BFS detail is
/// declined ([`Observer::wants_bfs_detail`] is `false`): the statistics
/// need only whole-traversal events, so an otherwise-unobserved run
/// stays on the uninstrumented expansion paths.
#[derive(Debug, Default)]
pub struct StatsCollector {
    ecc_bfs_nanos: AtomicU64,
    winnow_nanos: AtomicU64,
    chain_nanos: AtomicU64,
    eliminate_nanos: AtomicU64,
    ecc_computations: AtomicUsize,
    winnow_calls: AtomicUsize,
    eliminate_calls: AtomicUsize,
    chains_processed: AtomicUsize,
}

impl StatsCollector {
    /// Writes the accumulated counters and stage durations into
    /// `stats` (removal breakdown and total time are owned by the
    /// driver's `finish`).
    pub fn fill(&self, stats: &mut FdiamStats) {
        stats.ecc_computations = self.ecc_computations.load(Ordering::Relaxed);
        stats.winnow_calls = self.winnow_calls.load(Ordering::Relaxed);
        stats.eliminate_calls = self.eliminate_calls.load(Ordering::Relaxed);
        stats.chains_processed = self.chains_processed.load(Ordering::Relaxed);
        stats.timings.ecc_bfs = Duration::from_nanos(self.ecc_bfs_nanos.load(Ordering::Relaxed));
        stats.timings.winnow = Duration::from_nanos(self.winnow_nanos.load(Ordering::Relaxed));
        stats.timings.chain = Duration::from_nanos(self.chain_nanos.load(Ordering::Relaxed));
        stats.timings.eliminate =
            Duration::from_nanos(self.eliminate_nanos.load(Ordering::Relaxed));
    }
}

impl Observer for StatsCollector {
    fn event(&self, e: &Event<'_>) {
        match *e {
            Event::PhaseEnd { phase, nanos, .. } => {
                let bucket = match phase {
                    Phase::EccBfs => &self.ecc_bfs_nanos,
                    Phase::Winnow => &self.winnow_nanos,
                    Phase::Chain => &self.chain_nanos,
                    Phase::Eliminate => &self.eliminate_nanos,
                    // The 2-sweep span only wraps EccBfs leaf spans,
                    // which are already counted above.
                    Phase::TwoSweep => return,
                };
                bucket.fetch_add(nanos, Ordering::Relaxed);
            }
            Event::BfsEnd { .. } => {
                self.ecc_computations.fetch_add(1, Ordering::Relaxed);
            }
            Event::WinnowGrown { .. } => {
                self.winnow_calls.fetch_add(1, Ordering::Relaxed);
            }
            Event::EliminateRun { .. } => {
                self.eliminate_calls.fetch_add(1, Ordering::Relaxed);
            }
            Event::ChainsProcessed { count } => {
                self.chains_processed.fetch_add(count, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn wants_bfs_detail(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_events_into_stats() {
        use fdiam_obs::SpanId;
        let c = StatsCollector::default();
        c.event(&Event::PhaseEnd {
            phase: Phase::EccBfs,
            nanos: 100,
            span: SpanId::NONE,
        });
        c.event(&Event::PhaseEnd {
            phase: Phase::EccBfs,
            nanos: 50,
            span: SpanId::NONE,
        });
        c.event(&Event::PhaseEnd {
            phase: Phase::Winnow,
            nanos: 30,
            span: SpanId::NONE,
        });
        c.event(&Event::PhaseEnd {
            phase: Phase::TwoSweep,
            nanos: 1_000_000, // envelope span: must not be double-counted
            span: SpanId::NONE,
        });
        c.event(&Event::BfsEnd {
            source: 0,
            eccentricity: 3,
            visited: 10,
            span: SpanId::NONE,
        });
        c.event(&Event::WinnowGrown { radius: 1 });
        c.event(&Event::EliminateRun {
            removed: 4,
            extension: false,
        });
        c.event(&Event::ChainsProcessed { count: 2 });

        let mut stats = FdiamStats::default();
        c.fill(&mut stats);
        assert_eq!(stats.timings.ecc_bfs, Duration::from_nanos(150));
        assert_eq!(stats.timings.winnow, Duration::from_nanos(30));
        assert_eq!(stats.timings.chain, Duration::ZERO);
        assert_eq!(stats.ecc_computations, 1);
        assert_eq!(stats.winnow_calls, 1);
        assert_eq!(stats.eliminate_calls, 1);
        assert_eq!(stats.chains_processed, 2);
        assert_eq!(stats.bfs_traversals(), 2);
    }

    #[test]
    fn declines_bfs_detail() {
        let c = StatsCollector::default();
        assert!(c.enabled());
        assert!(!c.wants_bfs_detail());
    }
}
