//! The F-Diam driver (Algorithm 1).
//!
//! Orchestration, in the paper's order:
//!
//! 1. Remove degree-0 vertices (eccentricity 0, Table 4's last column).
//! 2. 2-sweep initial bound (§4.1): BFS from the max-degree vertex `u`,
//!    then BFS from a farthest vertex `w`; `ecc(w)` is the initial
//!    lower bound of the diameter.
//! 3. Winnow a ball of radius `⌊bound/2⌋` around `u` (§4.2).
//! 4. Chain Processing (§4.3).
//! 5. Loop over the remaining active vertices: compute the
//!    eccentricity by BFS; on a new bound, extend the winnowed region
//!    and all eliminated regions (§4.5); otherwise Eliminate around the
//!    vertex (§4.4).
//!
//! The final bound is the exact largest eccentricity over all connected
//! components — the true diameter when the graph is connected.
//!
//! [`run_concurrent`] replays the design alternative the paper
//! evaluated and rejected (§4.6): computing several eccentricities
//! concurrently instead of parallelizing each BFS. It exists to
//! reproduce that negative result (see the `multi_bfs` bench).

use crate::chain::chain_processing;
use crate::config::FdiamConfig;
use crate::eliminate::{eliminate, extend_eliminated};
use crate::result::DiameterResult;
use crate::state::{EccState, Stage};
use crate::stats::FdiamStats;
use crate::winnow::WinnowRegion;
use fdiam_bfs::{bfs_eccentricity_hybrid, bfs_eccentricity_serial_hybrid, BfsResult, VisitMarks};
use fdiam_graph::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// A diameter result together with the run's statistics.
#[derive(Clone, Debug)]
pub struct FdiamOutcome {
    pub result: DiameterResult,
    pub stats: FdiamStats,
    /// A pair of vertices realizing the reported diameter: the source
    /// of the BFS that established the final bound and a vertex from
    /// that BFS's last frontier. `None` only for the empty graph.
    pub diametral_pair: Option<(VertexId, VertexId)>,
}

/// Runs F-Diam with the given configuration.
pub fn run(g: &CsrGraph, config: &FdiamConfig) -> FdiamOutcome {
    let t_total = Instant::now();
    let Some(mut driver) = Driver::prelude(g, config) else {
        return empty_outcome(t_total);
    };
    driver.main_loop();
    driver.finish(t_total)
}

/// Runs F-Diam computing up to `batch` eccentricities concurrently in
/// the main loop (each BFS sequential with private visited storage).
/// The paper tried this and found "too much redundant work, as
/// concurrent Eliminate operations would overlap in removing vertices
/// from consideration" (§4.6) — the same effect shows here as wasted
/// BFS on vertices that a batch-mate's Eliminate would have removed.
pub fn run_concurrent(g: &CsrGraph, config: &FdiamConfig, batch: usize) -> FdiamOutcome {
    assert!(batch >= 1);
    let t_total = Instant::now();
    let Some(mut driver) = Driver::prelude(g, config) else {
        return empty_outcome(t_total);
    };
    driver.main_loop_concurrent(batch);
    driver.finish(t_total)
}

/// Shared driver state across the stages of Algorithm 1.
struct Driver<'g> {
    g: &'g CsrGraph,
    config: &'g FdiamConfig,
    state: EccState,
    marks: VisitMarks,
    winnow: WinnowRegion,
    bound: u32,
    connected: bool,
    stats: FdiamStats,
    order: Vec<VertexId>,
    diametral_pair: (VertexId, VertexId),
}

impl<'g> Driver<'g> {
    /// Stages 0–3: degree-0 removal, 2-sweep, Winnow, Chain Processing.
    /// Returns `None` for the empty graph.
    fn prelude(g: &'g CsrGraph, config: &'g FdiamConfig) -> Option<Self> {
        let n = g.num_vertices();
        if n == 0 {
            return None;
        }
        let mut stats = FdiamStats::default();
        let state = EccState::new(n);
        let mut marks = VisitMarks::new(n);

        // Stage 0: degree-0 vertices need no computation (ecc = 0).
        for v in g.vertices() {
            if g.degree(v) == 0 {
                state.record(v, 0, Stage::Degree0);
            }
        }

        // Start vertex: max-degree `u`, or vertex 0 under the "no 'u'"
        // ablation (§6.5).
        let u = if config.use_max_degree_start {
            g.max_degree_vertex().expect("n > 0")
        } else {
            0
        };

        // Stage 1: 2-sweep initial bound (§4.1).
        let mut bound = 0u32;
        let mut connected = n == 1;
        let mut diametral_pair = (u, u);
        if state.is_active(u) {
            let t = Instant::now();
            let r1 = ecc_bfs(g, u, &mut marks, config);
            stats.timings.ecc_bfs += t.elapsed();
            stats.ecc_computations += 1;
            state.record(u, r1.eccentricity, Stage::Computed);
            connected = r1.visited == n;
            bound = r1.eccentricity;
            let w = r1.last_frontier[0];
            diametral_pair = (u, w);
            if state.is_active(w) {
                let t = Instant::now();
                let r2 = ecc_bfs(g, w, &mut marks, config);
                stats.timings.ecc_bfs += t.elapsed();
                stats.ecc_computations += 1;
                state.record(w, r2.eccentricity, Stage::Computed);
                if r2.eccentricity > bound {
                    bound = r2.eccentricity;
                    diametral_pair = (w, r2.last_frontier[0]);
                }
            }
        }

        // Stage 2: Winnow a ball of radius ⌊bound/2⌋ around u (§4.2).
        let mut winnow = WinnowRegion::new(u, n);
        if config.use_winnow {
            let t = Instant::now();
            if grow_winnow(g, config, &mut winnow, &state, bound / 2) {
                stats.winnow_calls += 1;
            }
            stats.timings.winnow += t.elapsed();
        }

        // Stage 3: Chain Processing (§4.3).
        if config.use_chain {
            let t = Instant::now();
            stats.chains_processed = chain_processing(g, &state, &mut marks);
            stats.timings.chain += t.elapsed();
        }

        // Visit order of the main loop.
        let order: Vec<VertexId> = match config.visit_order_seed {
            None => (0..n as VertexId).collect(),
            Some(seed) => {
                let mut v: Vec<VertexId> = (0..n as VertexId).collect();
                v.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
                v
            }
        };

        Some(Self {
            g,
            config,
            state,
            marks,
            winnow,
            bound,
            connected,
            stats,
            order,
            diametral_pair,
        })
    }

    /// Stage 4, as published: one eccentricity BFS at a time.
    fn main_loop(&mut self) {
        let order = std::mem::take(&mut self.order);
        for &v in &order {
            if !self.state.is_active(v) {
                continue;
            }
            let t = Instant::now();
            let r = ecc_bfs(self.g, v, &mut self.marks, self.config);
            self.stats.timings.ecc_bfs += t.elapsed();
            self.stats.ecc_computations += 1;
            self.state.record(v, r.eccentricity, Stage::Computed);
            if r.eccentricity > self.bound {
                self.diametral_pair = (v, r.last_frontier[0]);
            }
            self.apply_bounds(v, r.eccentricity);
        }
    }

    /// Stage 4, the rejected alternative: compute up to `batch`
    /// eccentricities concurrently, then apply Winnow/Eliminate updates
    /// sequentially. Batch-mates that a fresh Eliminate would have
    /// removed have already burned a full BFS — the redundant work the
    /// paper observed.
    fn main_loop_concurrent(&mut self, batch: usize) {
        use rayon::prelude::*;
        let order = std::mem::take(&mut self.order);
        let mut cursor = 0usize;
        while cursor < order.len() {
            // Collect the next batch of active vertices.
            let mut todo: Vec<VertexId> = Vec::with_capacity(batch);
            while cursor < order.len() && todo.len() < batch {
                let v = order[cursor];
                cursor += 1;
                if self.state.is_active(v) {
                    todo.push(v);
                }
            }
            if todo.is_empty() {
                continue;
            }
            let t = Instant::now();
            let results: Vec<(VertexId, u32, VertexId)> = todo
                .par_iter()
                .map(|&v| {
                    let (e, far) = local_bfs_eccentricity(self.g, v);
                    (v, e, far)
                })
                .collect();
            self.stats.timings.ecc_bfs += t.elapsed();
            self.stats.ecc_computations += results.len();
            for (v, e, far) in results {
                self.state.record(v, e, Stage::Computed);
                if e > self.bound {
                    self.diametral_pair = (v, far);
                }
                self.apply_bounds(v, e);
            }
        }
    }

    /// Bound bookkeeping after `ecc(v) = e` (Algorithm 1 lines 13–21).
    fn apply_bounds(&mut self, v: VertexId, e: u32) {
        if e > self.bound {
            let old = self.bound;
            self.bound = e;
            if self.config.use_winnow {
                let t = Instant::now();
                if grow_winnow(self.g, self.config, &mut self.winnow, &self.state, e / 2) {
                    self.stats.winnow_calls += 1;
                }
                self.stats.timings.winnow += t.elapsed();
            }
            if self.config.use_eliminate {
                let t = Instant::now();
                extend_eliminated(self.g, &self.state, &mut self.marks, old, self.bound);
                self.stats.eliminate_calls += 1;
                self.stats.timings.eliminate += t.elapsed();
            }
        } else if e < self.bound && self.config.use_eliminate {
            let t = Instant::now();
            eliminate(
                self.g,
                &self.state,
                &mut self.marks,
                v,
                e,
                self.bound,
                Stage::Eliminate,
            );
            self.stats.eliminate_calls += 1;
            self.stats.timings.eliminate += t.elapsed();
        }
        // e == bound: the ecc write already removed v.
    }
}

fn grow_winnow(
    g: &CsrGraph,
    config: &FdiamConfig,
    winnow: &mut WinnowRegion,
    state: &EccState,
    radius: u32,
) -> bool {
    if config.full_rewinnow {
        winnow.rewinnow_to(g, state, radius, config.parallel)
    } else {
        winnow.extend_to(g, state, radius, config.parallel)
    }
}

fn ecc_bfs(g: &CsrGraph, v: VertexId, marks: &mut VisitMarks, config: &FdiamConfig) -> BfsResult {
    if config.parallel {
        bfs_eccentricity_hybrid(g, v, marks, &config.bfs)
    } else {
        // The paper's serial code is also direction-optimized (§7) —
        // the top-down/bottom-up switch is orthogonal to parallelism.
        bfs_eccentricity_serial_hybrid(g, v, marks, &config.bfs)
    }
}

/// Self-contained sequential eccentricity BFS with private visited
/// storage — used by the concurrent main loop, where tasks cannot share
/// the epoch-based [`VisitMarks`]. Returns the eccentricity and one
/// farthest vertex.
fn local_bfs_eccentricity(g: &CsrGraph, source: VertexId) -> (u32, VertexId) {
    let mut visited = vec![false; g.num_vertices()];
    visited[source as usize] = true;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut level = 0u32;
    loop {
        next.clear();
        for &v in &frontier {
            for &n in g.neighbors(v) {
                if !visited[n as usize] {
                    visited[n as usize] = true;
                    next.push(n);
                }
            }
        }
        if next.is_empty() {
            return (level, frontier[0]);
        }
        level += 1;
        std::mem::swap(&mut frontier, &mut next);
    }
}

fn empty_outcome(t_total: Instant) -> FdiamOutcome {
    let mut stats = FdiamStats::default();
    stats.timings.total = t_total.elapsed();
    FdiamOutcome {
        result: DiameterResult {
            largest_cc_diameter: 0,
            connected: true,
        },
        stats,
        diametral_pair: None,
    }
}

impl Driver<'_> {
    fn finish(mut self, t_total: Instant) -> FdiamOutcome {
        let counts = self.state.stage_counts();
        debug_assert_eq!(
            counts[Stage::None as usize],
            0,
            "every vertex must be removed or computed by termination"
        );
        self.stats.removed.winnow = counts[Stage::Winnow as usize];
        self.stats.removed.eliminate = counts[Stage::Eliminate as usize];
        self.stats.removed.chain = counts[Stage::Chain as usize];
        self.stats.removed.degree0 = counts[Stage::Degree0 as usize];
        self.stats.removed.computed = counts[Stage::Computed as usize];
        self.stats.timings.total = t_total.elapsed();

        FdiamOutcome {
            result: DiameterResult {
                largest_cc_diameter: self.bound,
                connected: self.connected,
            },
            stats: self.stats,
            diametral_pair: Some(self.diametral_pair),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_bfs::bfs_eccentricity_serial;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::disjoint_union;

    fn oracle(g: &CsrGraph) -> u32 {
        let mut marks = VisitMarks::new(g.num_vertices());
        g.vertices()
            .map(|v| bfs_eccentricity_serial(g, v, &mut marks).eccentricity)
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn concurrent_matches_sequential() {
        for g in [
            path(30),
            grid2d(6, 7),
            barabasi_albert(150, 3, 2),
            road_like(120, 0.1, 3),
            disjoint_union(&cycle(9), &star(7)),
        ] {
            let expect = oracle(&g);
            for batch in [1, 2, 4, 16] {
                let out = run_concurrent(&g, &FdiamConfig::serial(), batch);
                assert_eq!(
                    out.result.largest_cc_diameter, expect,
                    "batch {batch} on n={}",
                    g.num_vertices()
                );
                assert_eq!(out.stats.removed.total(), g.num_vertices());
            }
        }
    }

    #[test]
    fn concurrent_does_redundant_work() {
        // On an input where Eliminate prunes aggressively, large batches
        // must compute at least as many (typically more) eccentricities:
        // batch-mates can no longer benefit from each other's Eliminate.
        let g = road_like(900, 0.15, 5);
        let solo = run(&g, &FdiamConfig::serial());
        let batched = run_concurrent(&g, &FdiamConfig::serial(), 32);
        assert_eq!(
            solo.result.largest_cc_diameter,
            batched.result.largest_cc_diameter
        );
        assert!(
            batched.stats.ecc_computations >= solo.stats.ecc_computations,
            "batched {} < solo {}",
            batched.stats.ecc_computations,
            solo.stats.ecc_computations
        );
    }

    #[test]
    fn batch_one_equals_run() {
        let g = barabasi_albert(200, 4, 9);
        let a = run(&g, &FdiamConfig::serial());
        let b = run_concurrent(&g, &FdiamConfig::serial(), 1);
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats.ecc_computations, b.stats.ecc_computations);
        assert_eq!(a.stats.removed, b.stats.removed);
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        run_concurrent(&path(3), &FdiamConfig::serial(), 0);
    }
}
